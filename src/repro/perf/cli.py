"""Command-line entry points of the perf harness.

Three front doors over :mod:`repro.perf.harness`:

* ``bench_main`` — ``repro bench``: measure, optionally gate, optionally
  persist.  The general-purpose door.
* ``baseline_main`` — ``benchmarks/perf/perf_baseline.py``: refresh the
  committed baseline and append a history line (run on the reference
  machine when a PR legitimately moves a ratio).
* ``delta_main`` — ``benchmarks/perf/perf_delta.py``: the CI gate.
  Measures, compares against the committed baseline, appends history,
  renders the trajectory chart, and exits non-zero on regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from .harness import append_history, compare, history_chart, load_history, run_suite

__all__ = ["bench_main", "baseline_main", "delta_main"]

#: Repo-relative locations of the committed perf artifacts.
DEFAULT_BASELINE = "benchmarks/perf/BENCH_sim.json"
DEFAULT_HISTORY = "benchmarks/perf/BENCH_history.jsonl"


def _add_measure_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale (seconds, not minutes)")
    parser.add_argument("--jobs", type=int, default=4, metavar="N",
                        help="worker processes for the parallel sweep (default 4)")


def _write_report(report: dict[str, Any], out: Optional[str]) -> None:
    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")


def _gate(report: dict[str, Any], baseline_path: str, tolerance: float) -> int:
    baseline = json.loads(Path(baseline_path).read_text())
    failures = compare(report, baseline, tolerance)
    if failures:
        print("PERF REGRESSION:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"no regression vs {baseline_path} (tolerance {tolerance:.0%})")
    return 0


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    """``repro bench`` — run the suite; gate/persist on request."""
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the performance benchmark suite (see docs/performance.md).",
    )
    _add_measure_args(parser)
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the report JSON to PATH")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="baseline BENCH_sim.json to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional ratio regression (default 0.25)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    report = run_suite(quick=args.quick, n_jobs=args.jobs)
    _write_report(report, args.out)
    if args.compare:
        return _gate(report, args.compare, args.tolerance)
    return 0


def baseline_main(argv: Optional[Sequence[str]] = None) -> int:
    """Refresh the committed baseline and append a history line."""
    parser = argparse.ArgumentParser(
        description="Record a new committed perf baseline (BENCH_sim.json).",
    )
    _add_measure_args(parser)
    parser.add_argument("--out", default=DEFAULT_BASELINE, metavar="PATH",
                        help=f"baseline path (default {DEFAULT_BASELINE})")
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="PATH",
                        help=f"history JSONL path (default {DEFAULT_HISTORY})")
    parser.add_argument("--label", default=None,
                        help="history label (e.g. a PR number or git SHA)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    report = run_suite(quick=args.quick, n_jobs=args.jobs)
    _write_report(report, args.out)
    append_history(args.history, report, label=args.label)
    print(f"appended history to {args.history}")
    return 0


def delta_main(argv: Optional[Sequence[str]] = None) -> int:
    """Measure, gate against the committed baseline, log the trajectory."""
    parser = argparse.ArgumentParser(
        description="Gate the working tree against the committed perf baseline.",
    )
    _add_measure_args(parser)
    parser.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="PATH",
                        help=f"baseline to gate against (default {DEFAULT_BASELINE})")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional ratio regression (default 0.25)")
    parser.add_argument("--history", default=DEFAULT_HISTORY, metavar="PATH",
                        help=f"history JSONL to append to (default {DEFAULT_HISTORY})")
    parser.add_argument("--no-history", action="store_true",
                        help="skip the history append (e.g. scratch runs)")
    parser.add_argument("--label", default=None,
                        help="history label (e.g. a PR number or git SHA)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="also write the raw report JSON to PATH")
    parser.add_argument("--summary", default=None, metavar="PATH",
                        help="append a markdown trajectory chart to PATH "
                             "(e.g. $GITHUB_STEP_SUMMARY)")
    args = parser.parse_args(list(argv) if argv is not None else None)

    report = run_suite(quick=args.quick, n_jobs=args.jobs)
    _write_report(report, args.out)
    if not args.no_history:
        append_history(args.history, report, label=args.label)
    status = _gate(report, args.baseline, args.tolerance)

    chart = history_chart(load_history(args.history), mode=report["mode"])
    print(chart)
    if args.summary:
        with Path(args.summary).open("a") as stream:
            stream.write("### Perf trajectory\n\n```\n" + chart + "\n```\n")
    return status
