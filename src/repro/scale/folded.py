"""Counter-folded pull-queue entries for the population-aggregated engine.

A :class:`FoldedEntry` is a drop-in :class:`~repro.schedulers.base.PendingEntry`
whose pending requests are *summarised* instead of stored: per service
class it carries the waiting count and the arrival-time moments
``(Σt, Σt², min t, max t)`` — exactly the state needed to reconstruct the
delay statistics of the whole group at service time ``now``:

    Σ delay  = n·now − Σt
    Σ delay² = n·now² − 2·now·Σt + Σt²
    min delay = now − max t,   max delay = now − min t

``num_requests``, ``total_priority`` and ``first_arrival`` are maintained
identically to the reference entry, so every registered pull scheduler
(Eq. 1 importance, stretch, RxW, FCFS, ...) scores a folded entry exactly
as it would the unfolded one.  ``requests`` stays empty by construction —
the population engine never touches it.

Warm-up requests fold into a separate per-class count (``unmeasured``):
they advance queue state and the conservation ledger but contribute no
moments, mirroring the reference collector's warm-up window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..schedulers.base import PendingEntry
from ..workload.items import Item

__all__ = ["FoldedEntry"]


@dataclass(slots=True)
class FoldedEntry(PendingEntry):
    """Pending entry carrying per-class counts and moments, not requests.

    All list attributes are rank-indexed (index 0 = most important
    class).  ``counts`` holds measured (post-warm-up) requests only;
    ``unmeasured`` holds warm-up requests, which have no moments.
    """

    counts: list[int] = field(default_factory=list)
    sum_t: list[float] = field(default_factory=list)
    sum_t2: list[float] = field(default_factory=list)
    min_t: list[float] = field(default_factory=list)
    max_t: list[float] = field(default_factory=list)
    unmeasured: list[int] = field(default_factory=list)

    @classmethod
    def create(cls, item: Item, num_classes: int, first_arrival: float) -> "FoldedEntry":
        """An empty folded entry for ``item`` (fold arrivals in afterwards)."""
        return cls(
            item_id=item.item_id,
            length=item.length,
            probability=item.probability,
            first_arrival=first_arrival,
            counts=[0] * num_classes,
            sum_t=[0.0] * num_classes,
            sum_t2=[0.0] * num_classes,
            min_t=[math.inf] * num_classes,
            max_t=[-math.inf] * num_classes,
            unmeasured=[0] * num_classes,
        )

    def fold(self, rank: int, t: float, priority: float, measured: bool) -> None:
        """Fold one class-``rank`` arrival at time ``t`` into the group."""
        self.num_requests += 1
        self.total_priority += priority
        if t < self.first_arrival:
            self.first_arrival = t
        if measured:
            self.counts[rank] += 1
            self.sum_t[rank] += t
            self.sum_t2[rank] += t * t
            if t < self.min_t[rank]:
                self.min_t[rank] = t
            if t > self.max_t[rank]:
                self.max_t[rank] = t
        else:
            self.unmeasured[rank] += 1

    def absorb(self, other: "FoldedEntry") -> None:
        """Merge another folded group (same item) into this one.

        Used when a corrupted pull transmission re-queues its group while
        newer arrivals already opened a fresh entry, and when a corrupted
        push slot returns its sealed group to the open waiters.
        """
        self.num_requests += other.num_requests
        self.total_priority += other.total_priority
        if other.first_arrival < self.first_arrival:
            self.first_arrival = other.first_arrival
        counts, sum_t, sum_t2 = self.counts, self.sum_t, self.sum_t2
        min_t, max_t, unmeasured = self.min_t, self.max_t, self.unmeasured
        for rank in range(len(counts)):
            counts[rank] += other.counts[rank]
            sum_t[rank] += other.sum_t[rank]
            sum_t2[rank] += other.sum_t2[rank]
            if other.min_t[rank] < min_t[rank]:
                min_t[rank] = other.min_t[rank]
            if other.max_t[rank] > max_t[rank]:
                max_t[rank] = other.max_t[rank]
            unmeasured[rank] += other.unmeasured[rank]

    @property
    def lead_rank(self) -> int:
        """Most important class with a waiting request (pool charging rank).

        Matches the reference server's ``min(class_rank over requests)``.
        """
        for rank in range(len(self.counts)):
            if self.counts[rank] or self.unmeasured[rank]:
                return rank
        raise ValueError(f"folded entry for item {self.item_id} is empty")

    @property
    def total_unmeasured(self) -> int:
        """Warm-up requests folded into the group (conservation only)."""
        return sum(self.unmeasured)
