"""Population-aggregated hybrid server: the ``engine="population"`` hot path.

:class:`PopulationHybridServer` mirrors the fast engine's callback state
machine (:class:`~repro.sim.fastpath.FastHybridServer`) cycle for cycle,
but folds requests into :class:`~repro.scale.folded.FoldedEntry` counters
instead of carrying request objects: a pending entry stores per-class
waiting counts and arrival-time moments, push waiters fold into per-item
groups, and satisfied/blocked/shed outcomes are recorded through the
metrics collector's folded intake.  Per-event cost is therefore
independent of the population size ``N``; only the arrival drain is
O(total arrivals).

Exactness boundary (see ``docs/scale.md``):

* Arrivals come from :class:`~repro.workload.population.PopulationArrivals`
  — distributionally identical to the per-client generators.
* Folded delay statistics merge exact ``(n, Σt, Σt², min, max)`` moments:
  the same count/mean/variance/min/max in exact arithmetic, different
  float summation order — *statistically exact, not bit-identical*.
* Downlink faults, bounded queues and overload control are supported.
  Admission checks that the reference applies to the *first request* of a
  new entry apply here to the folded group's lead class; under the default
  ``drop-newest`` shedding the decisions coincide exactly, under scored
  policies a re-queued group is scored with its full count (the reference
  scores the first request alone).
* Client-recovery faults (uplink loss, per-class deadlines) need
  per-request identity to retry/renege and are rejected up front.
"""

from __future__ import annotations

import math
from heapq import heappush
from typing import Any, Optional

import numpy as np

from ..core.config import HybridConfig
from ..des import URGENT, RandomStreams
from ..des.fastengine import FastEnvironment
from ..schedulers.base import PullQueue, PullScheduler, PushScheduler
from ..sim.bandwidth_pool import BandwidthPool
from ..sim.faults import FaultInjector, select_shed_victim
from ..sim.metrics import MetricsCollector
from ..sim.overload import OverloadController
from ..sim.server import PullMode
from ..workload.arrivals import Request
from ..workload.items import ItemCatalog
from ..workload.population import PopulationArrivals
from .folded import FoldedEntry

__all__ = ["PopulationHybridServer"]

#: Bandwidth demands pre-drawn per block (same scheme as the fast engine).
_DEMAND_BLOCK = 512


class PopulationHybridServer:
    """Counter-folded hybrid server for :class:`FastEnvironment`.

    Drop-in for :class:`~repro.sim.fastpath.FastHybridServer` behind
    :class:`~repro.sim.system.HybridSystem` (same constructor surface,
    same diagnostics for the conservation watchdog), with pending state
    carried as :class:`FoldedEntry` per-class counters.
    """

    # Engine-parity contract (reprolint RL016): must match the reference
    # and fast-path engines exactly; population-only surfaces
    # (attach_arrivals/finalize) stay outside the shared contract.
    __parity_group__ = "hybrid-engine"
    __parity_surface__ = (
        "submit",
        "renege",
        "reconfigure_cutoff",
        "reconfigure_alpha",
        "reconfigure_bandwidth",
        "pending_push_requests",
        "pending_pull_requests",
        "in_flight_pull_requests",
    )

    def __init__(
        self,
        env: FastEnvironment,
        catalog: ItemCatalog,
        config: HybridConfig,
        push_scheduler: PushScheduler,
        pull_scheduler: PullScheduler,
        pool: BandwidthPool,
        metrics: MetricsCollector,
        streams: RandomStreams,
        pull_mode: PullMode = "serial",
        faults: Optional[FaultInjector] = None,
        tracer: Optional[object] = None,
        profiler: Optional[object] = None,
    ) -> None:
        if pull_mode not in ("serial", "concurrent"):
            raise ValueError(f"unknown pull mode {pull_mode!r}")
        if pull_mode == "concurrent" and config.cutoff == 0:
            raise ValueError(
                "concurrent pull mode needs a non-empty push set to pace the "
                "service loop; use serial mode for pure-pull systems"
            )
        if tracer is not None:
            raise ValueError(
                "the population engine does not support tracing; run with "
                "engine='reference'"
            )
        if profiler is not None:
            raise ValueError(
                "the population engine does not support phase profiling; run "
                "with engine='reference'"
            )
        if config.faults.client_recovery:
            raise ValueError(
                "the population engine folds requests into counters and cannot "
                "track per-request retries or deadlines; client-recovery faults "
                "(uplink_loss > 0 or class_deadlines) need engine='reference' "
                "or engine='fast'"
            )
        if metrics.qos_recorder is not None:
            raise ValueError(
                "the population engine cannot record per-request QoS samples; "
                "run with record_qos=False or another engine"
            )
        self.env = env
        self.catalog = catalog
        self.config = config
        self.push_scheduler = push_scheduler
        self.pull_scheduler = pull_scheduler
        self.pool = pool
        self.metrics = metrics
        self.streams = streams
        self.pull_mode: PullMode = pull_mode
        self.faults = faults
        self.tracer = None
        self.profiler = None
        self._fault_cfg = config.faults
        self.cutoff = config.cutoff
        self._class_priority = [float(q) for q in metrics.class_priorities]
        self._num_classes = len(self._class_priority)
        self.overload: OverloadController | None = None
        if config.overload.active:
            self.overload = OverloadController(
                config.overload,
                capacity=config.faults.queue_capacity,
                num_classes=self._num_classes,
            )
        self.pull_queue = PullQueue(catalog)
        if pull_scheduler.incremental:
            self.pull_queue.attach_scorer(pull_scheduler)
        #: Folded push waiters per item, still accepting arrivals.
        self._push_open: dict[int, FoldedEntry] = {}
        #: Group sealed at push start (decodable waiters) while its slot
        #: is on air; at most one exists because pushes are serial.
        self._push_sealed: FoldedEntry | None = None
        self.observers: list[object] = []
        self._in_flight_requests = 0
        self.pull_tx_started = 0
        self.pull_tx_completed = 0
        self.pull_tx_corrupted = 0
        self.active_pull_transmissions = 0

        self._demand_rng = streams.stream("bandwidth")
        self._demand_mean = float(config.bandwidth_demand_mean)
        self._demand_buf: np.ndarray | None = None
        self._demand_idx = 0

        # Buffered aggregated arrivals (struct-of-arrays blocks).
        self._arr_src: PopulationArrivals | None = None
        self._arr_times: list[float] = []
        self._arr_items: list[int] = []
        self._arr_ranks: list[int] = []
        self._arr_idx = 0
        self._arr_next = math.inf
        self._draining = False

        self._sleeping = True
        env.schedule_call(0.0, self._on_wake, priority=URGENT)

    # -- buffered arrivals ----------------------------------------------------
    def attach_arrivals(self, arrivals: PopulationArrivals) -> None:
        """Feed aggregated arrivals by draining blocks in-line.

        Same drain-on-touch scheme as the fast engine, but over the
        struct-of-arrays blocks of :meth:`PopulationArrivals.next_block`
        — no ``Request`` objects exist at any point.  Call
        :meth:`finalize` after the run.
        """
        self._arr_src = arrivals
        times, items, ranks = arrivals.next_block()
        self._arr_times, self._arr_items, self._arr_ranks = times, items, ranks
        self._arr_idx = 0
        self._arr_next = times[0]

    def _drain_arrivals(self, now: float) -> None:
        """Fold every buffered arrival with timestamp ``<= now``."""
        if self._draining:
            return
        nxt = self._arr_next
        if nxt > now:
            return
        if self.observers:
            raise RuntimeError(
                "the population engine folds arrivals and cannot notify "
                "per-request observers"
            )
        self._draining = True
        try:
            times = self._arr_times
            items = self._arr_items
            ranks = self._arr_ranks
            i = self._arr_idx
            src = self._arr_src
            metrics = self.metrics
            warmup = metrics.warmup
            queue = self.pull_queue
            cutoff = self.cutoff
            priorities = self._class_priority
            num_classes = self._num_classes
            by_rank_measured = [0] * num_classes
            by_rank_total = [0] * num_classes
            block_len = len(times)
            simple = self.overload is None and self._fault_cfg.queue_capacity is None
            if simple:
                # Tight loop, mirroring the fast engine's inlined drain
                # (keep in sync with fastpath.py / base.py / monitor.py):
                # queue dicts, heap, scorer and the queue-length
                # integrator are hoisted into locals; arrival counters
                # accumulate per rank and write back once.  Folding is
                # inlined too — one method call per arrival would be the
                # dominant cost at 1e6 clients.
                entries = queue._entries
                catalog = queue._catalog
                versions = queue._versions
                heap = queue._heap
                score = queue._score
                push_open = self._push_open
                added = 0
                tw = metrics.queue_length
                area = tw._area
                last_t = tw._last_time
                level = tw._level
                peak = tw._max
                while nxt <= now:
                    item_id = items[i]
                    rank = ranks[i]
                    i += 1
                    if i == block_len:
                        times, items, ranks = src.next_block()
                        block_len = len(times)
                        i = 0
                    by_rank_total[rank] += 1
                    measured = nxt >= warmup
                    if measured:
                        by_rank_measured[rank] += 1
                    if item_id < cutoff:
                        group = push_open.get(item_id)
                        if group is None:
                            group = FoldedEntry.create(
                                catalog[item_id], num_classes, nxt
                            )
                            push_open[item_id] = group
                        group.num_requests += 1
                        group.total_priority += priorities[rank]
                        if measured:
                            group.counts[rank] += 1
                            group.sum_t[rank] += nxt
                            group.sum_t2[rank] += nxt * nxt
                            if nxt < group.min_t[rank]:
                                group.min_t[rank] = nxt
                            if nxt > group.max_t[rank]:
                                group.max_t[rank] = nxt
                        else:
                            group.unmeasured[rank] += 1
                    else:
                        entry = entries.get(item_id)
                        if entry is None:
                            entry = FoldedEntry.create(
                                catalog[item_id], num_classes, nxt
                            )
                            entries[item_id] = entry
                        entry.num_requests += 1
                        entry.total_priority += priorities[rank]
                        if measured:
                            entry.counts[rank] += 1
                            entry.sum_t[rank] += nxt
                            entry.sum_t2[rank] += nxt * nxt
                            if nxt < entry.min_t[rank]:
                                entry.min_t[rank] = nxt
                            if nxt > entry.max_t[rank]:
                                entry.max_t[rank] = nxt
                        else:
                            entry.unmeasured[rank] += 1
                        added += 1
                        if score is not None:
                            version = versions.get(item_id, 0) + 1
                            versions[item_id] = version
                            heappush(heap, (-score(entry, 0.0), item_id, version))
                        if nxt < last_t:
                            raise ValueError(f"time ran backwards: {nxt} < {last_t}")
                        area += level * (nxt - last_t)
                        last_t = nxt
                        level = float(len(entries))
                        if level > peak:
                            peak = level
                    nxt = times[i]
                tw._area = area
                tw._last_time = last_t
                tw._level = level
                tw._max = peak
                queue._total_requests += added
            else:
                while nxt <= now:
                    item_id = items[i]
                    rank = ranks[i]
                    i += 1
                    if i == block_len:
                        times, items, ranks = src.next_block()
                        block_len = len(times)
                        i = 0
                    by_rank_total[rank] += 1
                    measured = nxt >= warmup
                    if measured:
                        by_rank_measured[rank] += 1
                    if item_id < cutoff:
                        self._fold_push(item_id, rank, nxt, measured)
                    else:
                        self._admit_pull_folded(item_id, rank, nxt, measured, wake=False)
                    nxt = times[i]
            self._arr_times, self._arr_items, self._arr_ranks = times, items, ranks
            self._arr_idx = i
            self._arr_next = nxt
            for rank in range(num_classes):
                total = by_rank_total[rank]
                if total:
                    metrics.record_arrivals_folded(rank, by_rank_measured[rank], total)
        finally:
            self._draining = False

    def finalize(self, horizon: float) -> None:
        """Fold buffered arrivals up to ``horizon`` after the run stops."""
        if self._arr_next <= horizon:
            self._drain_arrivals(horizon)

    # -- client-facing interface ---------------------------------------------
    def submit(self, request: Request) -> None:
        """Fold one externally submitted request (testing/uplink surface)."""
        measured = request.time >= self.metrics.warmup
        rank = request.class_rank
        self.metrics.record_arrivals_folded(rank, int(measured), 1)
        if request.item_id < self.cutoff:
            self._fold_push(request.item_id, rank, request.time, measured)
        else:
            self._admit_pull_folded(
                request.item_id, rank, request.time, measured, wake=True
            )

    def renege(self, request: Request) -> bool:
        """Per-request withdrawal is impossible on folded state."""
        raise RuntimeError(
            "the population engine folds requests into counters; per-request "
            "renege needs engine='reference' or engine='fast'"
        )

    # -- folded admission ------------------------------------------------------
    def _fold_push(self, item_id: int, rank: int, t: float, measured: bool) -> None:
        group = self._push_open.get(item_id)
        if group is None:
            group = FoldedEntry.create(self.catalog[item_id], self._num_classes, t)
            self._push_open[item_id] = group
        group.fold(rank, t, self._class_priority[rank], measured)

    def _admit_pull_folded(
        self, item_id: int, rank: int, t: float, measured: bool, wake: bool
    ) -> None:
        """Fold one pull arrival through overload/capacity admission.

        Same pipeline as the reference server's ``_admit_pull``: the
        admission checks run only when the arrival would open a *new*
        entry; folding into an existing entry is always free.
        """
        queue = self.pull_queue
        entry = queue._entries.get(item_id)
        if entry is None:
            if self.overload is not None and not self.overload.admits(
                rank, len(queue)
            ):
                self.metrics.record_overload_rejected_folded(rank, int(measured), 1)
                return
            capacity = self._fault_cfg.queue_capacity
            if capacity is not None and len(queue) >= capacity:
                candidate = FoldedEntry.create(
                    self.catalog[item_id], self._num_classes, t
                )
                candidate.fold(rank, t, self._class_priority[rank], measured)
                victim = select_shed_victim(
                    self._fault_cfg.shedding_policy,
                    queue,
                    candidate,
                    self.pull_scheduler,
                    t,
                )
                if victim is None:
                    self.metrics.record_shed_folded(rank, int(measured), 1)
                    return
                self._record_shed_group(queue.pop(victim))
                self._insert_folded(candidate)
                self.metrics.record_queue_length(t, len(queue))
                if wake and self._sleeping:
                    self.env.schedule_call(0.0, self._on_wake)
                return
            entry = FoldedEntry.create(self.catalog[item_id], self._num_classes, t)
            queue._entries[item_id] = entry
        entry.fold(rank, t, self._class_priority[rank], measured)
        queue._total_requests += 1
        if queue._score is not None:
            version = queue._versions.get(item_id, 0) + 1
            queue._versions[item_id] = version
            heappush(queue._heap, (-queue._score(entry, 0.0), item_id, version))
        self.metrics.record_queue_length(t, len(queue))
        if wake and self._sleeping:
            self.env.schedule_call(0.0, self._on_wake)

    def _insert_folded(self, entry: FoldedEntry) -> None:
        """Insert a whole folded group as the queue entry for its item."""
        queue = self.pull_queue
        queue._entries[entry.item_id] = entry
        queue._total_requests += entry.num_requests
        if queue._scheduler is not None:
            queue._reindex(entry)

    def _readmit_folded(self, group: FoldedEntry) -> None:
        """Re-queue a corrupted transmission's folded group (server ARQ)."""
        now = self.env.now
        queue = self.pull_queue
        existing = queue._entries.get(group.item_id)
        if existing is not None:
            existing.absorb(group)
            queue._total_requests += group.num_requests
            if queue._scheduler is not None:
                queue._reindex(existing)
        else:
            if self.overload is not None and not self.overload.admits(
                group.lead_rank, len(queue)
            ):
                self._record_overload_group(group)
                return
            capacity = self._fault_cfg.queue_capacity
            if capacity is not None and len(queue) >= capacity:
                victim = select_shed_victim(
                    self._fault_cfg.shedding_policy,
                    queue,
                    group,
                    self.pull_scheduler,
                    now,
                )
                if victim is None:
                    self._record_shed_group(group)
                    return
                self._record_shed_group(queue.pop(victim))
            self._insert_folded(group)
        self.metrics.record_queue_length(now, len(queue))
        if self._sleeping:
            self.env.schedule_call(0.0, self._on_wake)

    def _record_shed_group(self, group: FoldedEntry) -> None:
        metrics = self.metrics
        for rank in range(self._num_classes):
            n = group.counts[rank]
            u = group.unmeasured[rank]
            if n or u:
                metrics.record_shed_folded(rank, n, n + u)

    def _record_overload_group(self, group: FoldedEntry) -> None:
        metrics = self.metrics
        for rank in range(self._num_classes):
            n = group.counts[rank]
            u = group.unmeasured[rank]
            if n or u:
                metrics.record_overload_rejected_folded(rank, n, n + u)

    def _record_blocked_group(self, group: FoldedEntry) -> None:
        metrics = self.metrics
        for rank in range(self._num_classes):
            n = group.counts[rank]
            u = group.unmeasured[rank]
            if n or u:
                metrics.record_blocked_folded(rank, n, n + u)

    # -- server cycle --------------------------------------------------------
    def _on_wake(self, _arg: object = None) -> None:
        if not self._sleeping:
            return
        self._sleeping = False
        self._advance()

    def _advance(self) -> None:
        """Run cycles until a timed transmission blocks or the queue drains."""
        while True:
            item_id = self.push_scheduler.next_item() if self.cutoff else None
            if item_id is not None:
                env = self.env
                now = env.now
                if self._arr_next <= now:
                    # Settle arrivals up to the broadcast start *before*
                    # sealing: only clients already waiting when the slot
                    # begins can decode it (they need its first byte), so
                    # the open group is split exactly at ``now`` — the
                    # folded equivalent of the reference's
                    # ``r.time <= started`` filter at decode time.
                    self._drain_arrivals(now)
                self._push_sealed = self._push_open.pop(item_id, None)
                env.schedule_call(
                    self.catalog[item_id].length,
                    self._on_push_done,
                    (item_id, now),
                )
                return
            if not self._pull_step(pushed=False):
                return

    def _on_push_done(self, payload: Any) -> None:
        """One push slot's air time elapsed: decode (or corrupt), continue."""
        item_id, _started = payload
        env = self.env
        if self._arr_next <= env.now:
            # Air-time arrivals fold into the fresh open group and wait
            # for the item's next cycle occurrence.
            self._drain_arrivals(env.now)
        sealed = self._push_sealed
        self._push_sealed = None
        if self.faults is not None and self.faults.downlink_lost():
            # Corrupted slot: air time spent, nobody decodes; the sealed
            # group returns to the open waiters for the next occurrence.
            self.metrics.record_corrupted_push()
            if sealed is not None:
                open_group = self._push_open.get(item_id)
                if open_group is None:
                    self._push_open[item_id] = sealed
                else:
                    open_group.absorb(sealed)
        else:
            self.metrics.record_push_broadcast()
            if sealed is not None:
                self.metrics.record_satisfied_folded(
                    env.now,
                    True,
                    sealed.counts,
                    sealed.sum_t,
                    sealed.sum_t2,
                    sealed.min_t,
                    sealed.max_t,
                    sealed.total_unmeasured,
                )
        if self._pull_step(pushed=True):
            self._advance()

    def _pull_step(self, pushed: bool) -> bool:
        """Serve or drop one pull entry; ``True`` → caller continues the cycle."""
        env = self.env
        now = env.now
        if self._arr_next <= now:
            self._drain_arrivals(now)
        entry = self.pull_scheduler.select(self.pull_queue, now)
        if entry is None:
            if pushed:
                return True
            self._sleeping = True
            if self._arr_next < math.inf:
                env.schedule_call(self._arr_next - now, self._on_wake)
            return False
        # PullQueue.pop + TimeWeighted.set, inlined (keep in sync with
        # base.py / monitor.py) — same per-service fast path as fastpath.py.
        queue = self.pull_queue
        item_id = entry.item_id
        del queue._entries[item_id]
        queue._total_requests -= entry.num_requests
        if queue._scheduler is not None and item_id in queue._versions:
            queue._versions[item_id] += 1
        tw = self.metrics.queue_length
        if now < tw._last_time:
            raise ValueError(f"time ran backwards: {now} < {tw._last_time}")
        tw._area += tw._level * (now - tw._last_time)
        tw._last_time = now
        level = float(len(queue._entries))
        tw._level = level
        if level > tw._max:
            tw._max = level

        demand = self._next_demand()
        rank = entry.lead_rank
        if not self.pool.try_acquire(rank, demand):
            # Admission failed: the item and its whole folded group are lost.
            self.metrics.record_pull_drop()
            self._record_blocked_group(entry)
            return True
        self._in_flight_requests += entry.num_requests
        self.pull_tx_started += 1
        self.active_pull_transmissions += 1
        if self.pull_mode == "serial":
            env.schedule_call(
                entry.length, self._on_pull_done_serial, (entry, rank, demand)
            )
            return False
        env.schedule_call(entry.length, self._on_pull_done, (entry, rank, demand))
        return True

    def _on_pull_done_serial(self, payload: Any) -> None:
        self._complete_pull(*payload)
        self._advance()

    def _on_pull_done(self, payload: Any) -> None:
        self._complete_pull(*payload)

    def _complete_pull(self, entry: FoldedEntry, rank: int, demand: float) -> None:
        """A pull transmission left the air: satisfy, or corrupt and re-queue."""
        self._in_flight_requests -= entry.num_requests
        env = self.env
        if self._arr_next <= env.now:
            self._drain_arrivals(env.now)
        if self.faults is not None and self.faults.downlink_lost():
            # Server-side ARQ: air time and bandwidth spent; the folded
            # group re-enters the queue (no deadlines in this engine).
            self.pull_tx_corrupted += 1
            self.active_pull_transmissions -= 1
            self.pool.release(rank, demand)
            self.metrics.record_corrupted_pull()
            self._readmit_folded(entry)
            return
        now = env.now
        self.metrics.record_satisfied_folded(
            now,
            False,
            entry.counts,
            entry.sum_t,
            entry.sum_t2,
            entry.min_t,
            entry.max_t,
            entry.total_unmeasured,
        )
        self.pull_scheduler.observe_service(entry, now)
        self.pool.release(rank, demand)
        self.metrics.record_pull_service()
        self.pull_tx_completed += 1
        self.active_pull_transmissions -= 1

    def _next_demand(self) -> float:
        """Next Poisson bandwidth demand from the block-drawn buffer."""
        buf = self._demand_buf
        i = self._demand_idx
        if buf is None or i >= _DEMAND_BLOCK:
            buf = self._demand_rng.poisson(self._demand_mean, _DEMAND_BLOCK)
            self._demand_buf = buf
            i = 0
        self._demand_idx = i + 1
        return float(buf[i])

    # -- reconfiguration -----------------------------------------------------
    def reconfigure_cutoff(self, new_cutoff: int, push_scheduler: PushScheduler) -> None:
        """Switch to a new cut-off point at runtime (§3 re-optimisation)."""
        if not 0 <= new_cutoff <= len(self.catalog):
            raise ValueError(f"cutoff {new_cutoff} outside [0, {len(self.catalog)}]")
        if new_cutoff == 0 and self.pull_mode == "concurrent":
            raise ValueError("concurrent pull mode needs a non-empty push set")
        if push_scheduler.cutoff != new_cutoff:
            raise ValueError(
                f"push scheduler built for cutoff {push_scheduler.cutoff}, "
                f"expected {new_cutoff}"
            )
        if self._push_sealed is not None:
            raise RuntimeError(
                "cannot move the push/pull split while a push slot is on air"
            )
        if self._arr_next <= self.env.now:
            self._drain_arrivals(self.env.now)
        self.cutoff = new_cutoff
        self.push_scheduler = push_scheduler
        for item_id in [e.item_id for e in self.pull_queue if e.item_id < new_cutoff]:
            entry = self.pull_queue.pop(item_id)
            open_group = self._push_open.get(item_id)
            if open_group is None:
                self._push_open[item_id] = entry
            else:
                open_group.absorb(entry)
        for item_id in [i for i in self._push_open if i >= new_cutoff]:
            self._readmit_folded(self._push_open.pop(item_id))
        self.metrics.record_queue_length(self.env.now, len(self.pull_queue))

    def reconfigure_alpha(self, new_alpha: float) -> None:
        """Retune the Eq. 1 importance weight α at runtime (control plane).

        Buffered folded arrivals settle under the *old* α first
        (mirroring :meth:`reconfigure_cutoff`), then the scheduler is
        retuned and the queue's heap index rebuilt so no stale score
        survives.
        """
        setter = getattr(self.pull_scheduler, "set_alpha", None)
        if setter is None:
            raise ValueError(
                f"pull scheduler {self.pull_scheduler.name!r} has no alpha knob"
            )
        if self._arr_next <= self.env.now:
            self._drain_arrivals(self.env.now)
        setter(new_alpha)
        if self.pull_queue.indexed_for(self.pull_scheduler):
            self.pull_queue.attach_scorer(self.pull_scheduler)

    def reconfigure_bandwidth(self, capacities: list[float]) -> None:
        """Install new per-class bandwidth reservations (control plane).

        In-flight transmissions keep their held bandwidth (see
        :meth:`~repro.sim.bandwidth_pool.BandwidthPool.reconfigure`), so
        the change never breaks conservation or non-preemption.
        """
        self.pool.reconfigure(capacities)

    # -- diagnostics -----------------------------------------------------------
    @property
    def pending_push_requests(self) -> int:
        """Requests currently parked waiting for a push broadcast.

        Includes the sealed group of an on-air slot — its waiters are
        still parked until the slot decodes.
        """
        parked = sum(g.num_requests for g in self._push_open.values())
        if self._push_sealed is not None:
            parked += self._push_sealed.num_requests
        return parked

    @property
    def pending_pull_requests(self) -> int:
        """Requests currently queued in the pull system."""
        return self.pull_queue.total_requests

    @property
    def in_flight_pull_requests(self) -> int:
        """Requests riding on pull transmissions currently on air."""
        return self._in_flight_requests
