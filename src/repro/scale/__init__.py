"""``repro.scale`` — the million-client population-aggregated scale path.

Per-client DES processes cap the simulator at a few thousand clients;
this package removes the cap by representing the population as exact
aggregated per-(item, class) Poisson streams
(:class:`~repro.workload.population.PopulationArrivals`) and folding
pending requests into per-class counters and arrival-time moments
(:class:`FoldedEntry`) instead of request lists.  The resulting
:class:`PopulationHybridServer` (``engine="population"`` on
:class:`~repro.sim.system.HybridSystem`) has per-event cost independent
of the population size ``N`` — only the aggregate arrival rate grows
with ``N`` — so a 10M-client scenario completes in minutes.

Statistically identical, not bit-identical: superposition of Poisson is
Poisson, and folded delay statistics merge exact ``(n, Σt, Σt², min, max)``
moments, so every reported metric has the same distribution as the
per-client engines; equivalence is validated by CI overlap in
``tests/sim/test_population_equivalence.py`` and against the fluid model
in the ``n-ladder`` experiment.
"""

from .folded import FoldedEntry
from .server import PopulationHybridServer

__all__ = ["FoldedEntry", "PopulationHybridServer"]
