"""Nonstationary workloads: demand that drifts over time.

§3's periodic cut-off re-optimisation only matters when demand moves.
:class:`PhasedArrivalProcess` plays a sequence of phases, each with its
own Zipf skew (and optionally its own item permutation and arrival
rate), so the popular set — and hence the right cut-off — changes at
phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

from .arrivals import Request
from .clients import ClientPopulation
from .items import ItemCatalog
from .zipf import zipf_probabilities

__all__ = ["WorkloadPhase", "PhasedArrivalProcess"]


@dataclass(frozen=True)
class WorkloadPhase:
    """One stationary stretch of the drifting workload.

    Attributes
    ----------
    duration:
        Phase length in broadcast units.
    theta:
        Zipf skew during this phase.
    rate:
        Aggregate arrival rate (``None`` = keep the process default).
    rotate:
        Circular shift applied to the popularity ranking — ``rotate=k``
        makes item ``k`` the hottest, modelling interest moving through
        the catalog.
    """

    duration: float
    theta: float
    rate: Optional[float] = None
    rotate: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")


class PhasedArrivalProcess:
    """Poisson arrivals whose item law changes per phase (cyclic).

    Parameters
    ----------
    catalog:
        Item catalog (lengths only are used; popularities are per-phase).
    population:
        Client population for class/priority assignment.
    phases:
        Phase sequence, repeated cyclically forever.
    default_rate:
        Arrival rate used by phases that don't override it.
    rng:
        Randomness source.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        population: ClientPopulation,
        phases: Sequence[WorkloadPhase],
        default_rate: float,
        rng: np.random.Generator,
    ) -> None:
        if not phases:
            raise ValueError("at least one phase is required")
        if default_rate <= 0:
            raise ValueError(f"default_rate must be > 0, got {default_rate}")
        self.catalog = catalog
        self.population = population
        self.phases = list(phases)
        self.default_rate = float(default_rate)
        self.rng = rng
        self._num_clients = len(population)
        self._client_class_rank = np.array(
            [c.service_class.rank for c in population], dtype=int
        )
        self._client_priority = np.array([c.priority for c in population], dtype=float)

    def phase_probabilities(self, phase: WorkloadPhase) -> np.ndarray:
        """The item law in effect during ``phase``."""
        probs = zipf_probabilities(len(self.catalog), phase.theta)
        return np.roll(probs, phase.rotate % len(self.catalog))

    def phase_at(self, t: float) -> WorkloadPhase:
        """The phase active at absolute time ``t`` (phases cycle)."""
        total = sum(p.duration for p in self.phases)
        offset = t % total
        for phase in self.phases:
            if offset < phase.duration:
                return phase
            offset -= phase.duration
        return self.phases[-1]  # pragma: no cover - float edge

    def __iter__(self) -> Iterator[Request]:
        """Infinite time-ordered request stream across phases."""
        t = 0.0
        phase_index = 0
        phase_end = self.phases[0].duration
        cdf = np.cumsum(self.phase_probabilities(self.phases[0]))
        rate = self.phases[0].rate or self.default_rate
        while True:
            t += float(self.rng.exponential(1.0 / rate))
            while t >= phase_end:
                phase_index = (phase_index + 1) % len(self.phases)
                phase = self.phases[phase_index]
                phase_end += phase.duration
                cdf = np.cumsum(self.phase_probabilities(phase))
                rate = phase.rate or self.default_rate
            item_id = min(
                int(np.searchsorted(cdf, self.rng.random(), side="right")),
                len(self.catalog) - 1,
            )
            client_id = int(self.rng.integers(0, self._num_clients))
            yield Request(
                time=t,
                item_id=item_id,
                client_id=client_id,
                class_rank=int(self._client_class_rank[client_id]),
                priority=float(self._client_priority[client_id]),
            )
