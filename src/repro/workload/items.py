"""Item catalog: variable-length data items with Zipf access popularity.

The paper's evaluation (Section 5.1) uses ``D = 100`` items whose lengths
vary from 1 to 5 *with an average of 2* — note that a uniform draw over
{1..5} would average 3, so the length law must be skewed toward short
items.  We default to a truncated-geometric length law calibrated to hit
the requested mean exactly, and also provide uniform and constant laws for
ablations.

Transmitting item ``i`` occupies the broadcast channel for ``L_i`` time
("broadcast units"), which is the time unit all the paper's delay plots
use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Literal, Sequence

import numpy as np
from scipy import optimize

from .zipf import zipf_probabilities

__all__ = [
    "DEFAULT_CATALOG_SEED",
    "Item",
    "ItemCatalog",
    "truncated_geometric_pmf",
    "calibrate_geometric",
]

LengthLaw = Literal["truncated_geometric", "uniform", "constant"]

#: Seed of the default catalog length draw.  This is *not* a simulation
#: stream: the catalog is a fixture shared by every run (the paper's
#: fixed 100-item database), so its seed is part of the public API —
#: golden traces pin the lengths it produces.  Simulation streams must
#: instead come from a spawned SeedSequence (see ``repro.sim.runner``).
DEFAULT_CATALOG_SEED = 0


@dataclass(frozen=True, slots=True)
class Item:
    """One data item in the server database.

    Attributes
    ----------
    item_id:
        0-based index; item 0 is the most popular (Zipf rank 1).
    length:
        Transmission time in broadcast units (``L_i`` in the paper).
    probability:
        Access probability ``P_i`` (Zipf).
    """

    item_id: int
    length: float
    probability: float

    def __post_init__(self) -> None:
        if self.item_id < 0:
            raise ValueError(f"item_id must be >= 0, got {self.item_id}")
        if self.length <= 0:
            raise ValueError(f"length must be > 0, got {self.length}")
        if not 0 <= self.probability <= 1:
            raise ValueError(f"probability outside [0,1]: {self.probability}")


def truncated_geometric_pmf(p: float, support: Sequence[int]) -> np.ndarray:
    """PMF of a geometric law restricted (and renormalised) to ``support``.

    ``P(L = support[k]) ∝ (1-p)^k`` — ``p`` near 1 concentrates on the first
    support point, ``p`` near 0 approaches uniform.
    """
    if not 0 < p < 1:
        raise ValueError(f"p must be in (0,1), got {p}")
    k = np.arange(len(support), dtype=float)
    w = (1.0 - p) ** k
    return w / w.sum()


def calibrate_geometric(mean: float, support: Sequence[int]) -> float:
    """Find ``p`` so the truncated geometric over ``support`` has ``mean``.

    Raises
    ------
    ValueError
        If ``mean`` is not strictly inside ``(min(support), mean_uniform]``
        — the truncated geometric with decreasing weights cannot exceed the
        uniform mean.
    """
    support_arr = np.asarray(support, dtype=float)
    lo, hi = float(support_arr.min()), float(support_arr.mean())
    if not lo < mean < hi:
        raise ValueError(
            f"target mean {mean} must lie strictly in ({lo}, {hi}) for support {list(support)}"
        )

    def gap(p: float) -> float:
        return float(truncated_geometric_pmf(p, support) @ support_arr) - mean

    return float(optimize.brentq(gap, 1e-9, 1 - 1e-9))


@dataclass
class ItemCatalog:
    """The server database: ``D`` items with lengths and Zipf popularities.

    Use :meth:`generate` for the paper's configuration, or construct
    directly from explicit ``lengths`` for tests/ablations.

    Attributes
    ----------
    lengths:
        ``L_i`` per item, in Zipf-rank order (index 0 = most popular).
    probabilities:
        ``P_i`` per item (sums to 1).
    """

    lengths: np.ndarray
    probabilities: np.ndarray
    _items: list[Item] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.lengths = np.asarray(self.lengths, dtype=float)
        self.probabilities = np.asarray(self.probabilities, dtype=float)
        if self.lengths.ndim != 1 or self.probabilities.ndim != 1:
            raise ValueError("lengths and probabilities must be 1-D")
        if len(self.lengths) != len(self.probabilities):
            raise ValueError(
                f"length mismatch: {len(self.lengths)} lengths vs "
                f"{len(self.probabilities)} probabilities"
            )
        if len(self.lengths) == 0:
            raise ValueError("catalog cannot be empty")
        if np.any(self.lengths <= 0):
            raise ValueError("all item lengths must be > 0")
        if abs(self.probabilities.sum() - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {self.probabilities.sum()}")
        self._items = [
            Item(i, float(l), float(p))
            for i, (l, p) in enumerate(zip(self.lengths, self.probabilities))
        ]

    # -- construction --------------------------------------------------------
    @classmethod
    def generate(
        cls,
        num_items: int = 100,
        theta: float = 0.60,
        min_length: int = 1,
        max_length: int = 5,
        mean_length: float = 2.0,
        length_law: LengthLaw = "truncated_geometric",
        rng: np.random.Generator | None = None,
    ) -> "ItemCatalog":
        """Generate the paper's catalog: Zipf popularities, skewed lengths.

        Parameters
        ----------
        num_items:
            ``D`` (paper: 100).
        theta:
            Zipf skew.
        min_length, max_length, mean_length:
            Length law support and target mean (paper: 1..5, mean 2).
        length_law:
            ``"truncated_geometric"`` (paper-calibrated default),
            ``"uniform"`` over the support, or ``"constant"`` at
            ``mean_length`` (homogeneous ablation).
        rng:
            Source of randomness for the lengths (default: fresh PCG64
            seeded with :data:`DEFAULT_CATALOG_SEED` — the catalog is a
            shared fixture, not a simulation stream, so a fixed
            API-level seed is the contract here).
        """
        if rng is None:
            rng = np.random.Generator(
                np.random.PCG64(np.random.SeedSequence(DEFAULT_CATALOG_SEED))
            )
        probabilities = zipf_probabilities(num_items, theta)
        support = list(range(min_length, max_length + 1))
        if length_law == "constant":
            lengths = np.full(num_items, float(mean_length))
        elif length_law == "uniform":
            lengths = rng.choice(support, size=num_items).astype(float)
        elif length_law == "truncated_geometric":
            p = calibrate_geometric(mean_length, support)
            pmf = truncated_geometric_pmf(p, support)
            lengths = rng.choice(support, size=num_items, p=pmf).astype(float)
        else:  # pragma: no cover - guarded by Literal type
            raise ValueError(f"unknown length law {length_law!r}")
        return cls(lengths=lengths, probabilities=probabilities)

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, item_id: int) -> Item:
        return self._items[item_id]

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)

    # -- paper quantities --------------------------------------------------------
    def push_set(self, cutoff: int) -> list[Item]:
        """Items 0..cutoff-1 — the broadcast (push) set for cutoff ``K``."""
        self._check_cutoff(cutoff)
        return self._items[:cutoff]

    def pull_set(self, cutoff: int) -> list[Item]:
        """Items cutoff..D-1 — the on-demand (pull) set."""
        self._check_cutoff(cutoff)
        return self._items[cutoff:]

    def push_probability(self, cutoff: int) -> float:
        """Total access probability of the push set, ``Σ_{i≤K} P_i``."""
        self._check_cutoff(cutoff)
        return float(self.probabilities[:cutoff].sum())

    def pull_probability(self, cutoff: int) -> float:
        """Total access probability of the pull set, ``Σ_{i>K} P_i``."""
        return 1.0 - self.push_probability(cutoff)

    def weighted_push_length(self, cutoff: int) -> float:
        """``Σ_{i≤K} P_i·L_i`` — the paper's ``μ₁`` quantity (§5.1)."""
        self._check_cutoff(cutoff)
        return float(self.probabilities[:cutoff] @ self.lengths[:cutoff])

    def weighted_pull_length(self, cutoff: int) -> float:
        """``Σ_{i>K} P_i·L_i`` — the paper's ``μ₂`` quantity (§5.1)."""
        self._check_cutoff(cutoff)
        return float(self.probabilities[cutoff:] @ self.lengths[cutoff:])

    def broadcast_cycle_length(self, cutoff: int) -> float:
        """Total length of one flat broadcast cycle over the push set."""
        self._check_cutoff(cutoff)
        return float(self.lengths[:cutoff].sum())

    def mean_pull_service_time(self, cutoff: int) -> float:
        """Mean transmission time of a pull request's item.

        Lengths weighted by the *conditional* access probabilities of the
        pull set (the item a pull request asks for is Zipf-distributed over
        the pull set).  Returns ``nan`` for an all-push split.
        """
        self._check_cutoff(cutoff)
        mass = self.pull_probability(cutoff)
        if mass <= 0:
            return float("nan")
        return self.weighted_pull_length(cutoff) / mass

    def _check_cutoff(self, cutoff: int) -> None:
        if not 0 <= cutoff <= len(self._items):
            raise ValueError(f"cutoff {cutoff} outside [0, {len(self._items)}]")
