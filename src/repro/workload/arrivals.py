"""Poisson request arrival model.

Aggregate arrivals form a Poisson process with rate ``λ'`` (paper: 5
requests per broadcast unit).  Each arrival independently selects an item
from the Zipf access law and an originating client uniformly from the
population — so the per-item, per-class arrival streams are thinned
Poisson processes, exactly the decomposition the paper's analysis relies
on (``λ_i = λ · p_i · q_j`` discussion in §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from .clients import ClientPopulation
from .items import ItemCatalog

__all__ = ["Request", "ArrivalProcess"]


@dataclass(frozen=True, slots=True)
class Request:
    """One client request for one item.

    Attributes
    ----------
    time:
        Arrival time (broadcast units).
    item_id:
        Requested item (0-based Zipf rank).
    client_id:
        Originating client.
    class_rank:
        Importance rank of the client's service class (0 = most important).
    priority:
        The client's priority weight ``q_j``.
    """

    time: float
    item_id: int
    client_id: int
    class_rank: int
    priority: float


class ArrivalProcess:
    """Generates the request stream, either lazily or as a bulk trace.

    Parameters
    ----------
    catalog:
        Item catalog supplying the Zipf item law.
    population:
        Client population supplying the class mix.
    rate:
        Aggregate Poisson rate ``λ'`` (requests per broadcast unit).
    rng:
        numpy Generator; pass a named stream from
        :class:`repro.des.RandomStreams` for reproducibility.
    priority_weighted:
        If true, a request's originating client is drawn with probability
        proportional to its priority weight ``q_j`` instead of uniformly —
        the demand decomposition §4.2 writes as ``λ_i = λ·p_i·q_j``
        (important clients are also the heavy requesters).  Default off:
        the §5 evaluation draws clients uniformly.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        population: ClientPopulation,
        rate: float,
        rng: np.random.Generator,
        priority_weighted: bool = False,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {rate}")
        self.catalog = catalog
        self.population = population
        self.rate = float(rate)
        self.rng = rng
        self.priority_weighted = bool(priority_weighted)
        self._num_clients = len(population)
        self._client_class_rank = np.array(
            [c.service_class.rank for c in population], dtype=int
        )
        self._client_priority = np.array([c.priority for c in population], dtype=float)
        if priority_weighted:
            self._client_weights = self._client_priority / self._client_priority.sum()
            self._client_cdf = np.cumsum(self._client_weights)
        else:
            self._client_weights = None
            self._client_cdf = None
        # Precomputed CDF: drawing via searchsorted on a uniform variate is
        # far cheaper than rng.choice(p=...) per arrival (profiled hot path).
        self._item_cdf = np.cumsum(catalog.probabilities)

    # -- lazy stream (for the DES) ------------------------------------------
    def __iter__(self) -> Iterator[Request]:
        """Infinite lazy stream of requests in time order."""
        t = 0.0
        while True:
            t += float(self.rng.exponential(1.0 / self.rate))
            yield self._draw(t)

    def _draw_client(self) -> int:
        if self._client_cdf is None:
            return int(self.rng.integers(0, self._num_clients))
        idx = int(np.searchsorted(self._client_cdf, self.rng.random(), side="right"))
        return min(idx, self._num_clients - 1)

    def _draw(self, t: float) -> Request:
        idx = int(np.searchsorted(self._item_cdf, self.rng.random(), side="right"))
        item_id = min(idx, len(self.catalog) - 1)
        client_id = self._draw_client()
        return Request(
            time=t,
            item_id=item_id,
            client_id=client_id,
            class_rank=int(self._client_class_rank[client_id]),
            priority=float(self._client_priority[client_id]),
        )

    # -- bulk generation (vectorised, for analysis & traces) ------------------
    def generate(self, horizon: float) -> list[Request]:
        """All requests in ``[0, horizon)`` as a list, vectorised draw."""
        times = self.sample_times(horizon)
        n = len(times)
        if n == 0:
            return []
        item_ids = self.rng.choice(len(self.catalog), size=n, p=self.catalog.probabilities)
        if self._client_weights is None:
            client_ids = self.rng.integers(0, self._num_clients, size=n)
        else:
            client_ids = self.rng.choice(self._num_clients, size=n, p=self._client_weights)
        return [
            Request(
                time=float(t),
                item_id=int(i),
                client_id=int(c),
                class_rank=int(self._client_class_rank[c]),
                priority=float(self._client_priority[c]),
            )
            for t, i, c in zip(times, item_ids, client_ids)
        ]

    def sample_times(self, horizon: float) -> np.ndarray:
        """Poisson arrival epochs in ``[0, horizon)`` (sorted)."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        # Draw count, then order statistics of uniforms — O(n) and exact.
        n = int(self.rng.poisson(self.rate * horizon))
        times = np.sort(self.rng.uniform(0.0, horizon, size=n))
        return times

    # -- analytical rates -----------------------------------------------------
    def pull_rate(self, cutoff: int) -> float:
        """Arrival rate into the pull system, ``λ = Σ_{i>K} P_i · λ'``."""
        return self.rate * self.catalog.pull_probability(cutoff)

    def per_class_pull_rates(self, cutoff: int) -> np.ndarray:
        """Pull arrival rate per service class (rank order).

        Uniform client draw: proportional to population share.  Priority-
        weighted draw (§4.2's ``λ_i = λ·p_i·q_j``): proportional to the
        class's total priority mass.
        """
        if self._client_weights is None:
            shares = self.population.class_fractions
        else:
            mass = self.population.class_fractions * self.population.priorities
            shares = mass / mass.sum()
        return self.pull_rate(cutoff) * shares
