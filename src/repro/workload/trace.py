"""Columnar request traces: bulk storage, filtering and summary statistics.

A :class:`RequestTrace` is the vectorised (struct-of-arrays) twin of a
``list[Request]``: cheap to slice, save and aggregate with numpy.  Traces
make experiments replayable — generate once, feed to several schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np

from .arrivals import Request

__all__ = ["RequestTrace"]


@dataclass
class RequestTrace:
    """A time-ordered batch of requests as parallel numpy arrays.

    All arrays share one length; ``times`` must be non-decreasing.
    """

    times: np.ndarray
    item_ids: np.ndarray
    client_ids: np.ndarray
    class_ranks: np.ndarray
    priorities: np.ndarray

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=float)
        self.item_ids = np.asarray(self.item_ids, dtype=int)
        self.client_ids = np.asarray(self.client_ids, dtype=int)
        self.class_ranks = np.asarray(self.class_ranks, dtype=int)
        self.priorities = np.asarray(self.priorities, dtype=float)
        n = len(self.times)
        for name in ("item_ids", "client_ids", "class_ranks", "priorities"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} has length {len(getattr(self, name))}, expected {n}")
        if n > 1 and np.any(np.diff(self.times) < 0):
            raise ValueError("times must be non-decreasing")

    # -- construction --------------------------------------------------------
    @classmethod
    def from_requests(cls, requests: Iterable[Request]) -> "RequestTrace":
        """Build a trace from request objects (already time-ordered)."""
        reqs = list(requests)
        return cls(
            times=np.array([r.time for r in reqs], dtype=float),
            item_ids=np.array([r.item_id for r in reqs], dtype=int),
            client_ids=np.array([r.client_id for r in reqs], dtype=int),
            class_ranks=np.array([r.class_rank for r in reqs], dtype=int),
            priorities=np.array([r.priority for r in reqs], dtype=float),
        )

    @classmethod
    def empty(cls) -> "RequestTrace":
        """A zero-length trace."""
        z = np.array([], dtype=float)
        return cls(z, z.astype(int), z.astype(int), z.astype(int), z)

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.times)

    def __getitem__(self, idx) -> "RequestTrace":
        """Slice/boolean-mask the trace, returning a new trace."""
        if isinstance(idx, int):
            idx = slice(idx, idx + 1)
        return RequestTrace(
            self.times[idx],
            self.item_ids[idx],
            self.client_ids[idx],
            self.class_ranks[idx],
            self.priorities[idx],
        )

    def iter_requests(self) -> Iterable[Request]:
        """Yield the trace back as :class:`Request` objects."""
        for t, i, c, r, q in zip(
            self.times, self.item_ids, self.client_ids, self.class_ranks, self.priorities
        ):
            yield Request(float(t), int(i), int(c), int(r), float(q))

    # -- filters ----------------------------------------------------------------
    def for_class(self, rank: int) -> "RequestTrace":
        """Sub-trace of requests from one service class rank."""
        return self[self.class_ranks == rank]

    def for_items(self, item_ids: Iterable[int]) -> "RequestTrace":
        """Sub-trace of requests for a set of items."""
        wanted = np.isin(self.item_ids, np.asarray(list(item_ids), dtype=int))
        return self[wanted]

    def pull_only(self, cutoff: int) -> "RequestTrace":
        """Requests targeting pull items (``item_id >= cutoff``)."""
        return self[self.item_ids >= cutoff]

    def window(self, start: float, end: float) -> "RequestTrace":
        """Requests arriving in ``[start, end)``."""
        return self[(self.times >= start) & (self.times < end)]

    # -- statistics ----------------------------------------------------------------
    def empirical_rate(self) -> float:
        """Observed aggregate arrival rate over the trace span."""
        if len(self) < 2:
            return float("nan")
        span = float(self.times[-1] - self.times[0])
        return (len(self) - 1) / span if span > 0 else float("nan")

    def item_histogram(self, num_items: int) -> np.ndarray:
        """Request counts per item id."""
        return np.bincount(self.item_ids, minlength=num_items)

    def class_histogram(self, num_classes: int) -> np.ndarray:
        """Request counts per class rank."""
        return np.bincount(self.class_ranks, minlength=num_classes)

    # -- persistence ----------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the trace to a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            times=self.times,
            item_ids=self.item_ids,
            client_ids=self.client_ids,
            class_ranks=self.class_ranks,
            priorities=self.priorities,
        )

    @classmethod
    def load(cls, path: str | Path) -> "RequestTrace":
        """Read a trace written by :meth:`save`."""
        with np.load(Path(path)) as data:
            return cls(
                times=data["times"],
                item_ids=data["item_ids"],
                client_ids=data["client_ids"],
                class_ranks=data["class_ranks"],
                priorities=data["priorities"],
            )
