"""Client population partitioned into priority service classes.

Paper Section 5.1 (assumptions 5–6): clients are split into Class-A
(highest priority), Class-B (medium) and Class-C (lowest), with priorities
in ratio 1::2::3 and class populations following a Zipf law such that the
*highest* priority class has the *fewest* clients.

We encode priority as the weight ``q_j`` a client contributes to an item's
total priority ``Q_i = Σ q_j`` — a larger ``q_j`` pulls the item forward in
the importance-factor ordering, so Class-A (most important) carries the
largest weight.  With the paper's 1::2::3 ratio that means
``q_A : q_B : q_C = 3 : 2 : 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from .zipf import zipf_probabilities

__all__ = ["ServiceClass", "Client", "ClientPopulation", "paper_classes"]


@dataclass(frozen=True, slots=True)
class ServiceClass:
    """One priority class of clients.

    Attributes
    ----------
    name:
        Human label ("A", "B", "C", ... in the paper).
    priority:
        The weight ``q_j`` each member contributes to ``Q_i``; larger is
        more important.
    rank:
        0-based importance rank — 0 is the most important class.  Used by
        the non-preemptive priority analysis (Cobham ordering).
    """

    name: str
    priority: float
    rank: int

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise ValueError(f"priority must be > 0, got {self.priority}")
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")


@dataclass(frozen=True, slots=True)
class Client:
    """One client device, bound to a service class."""

    client_id: int
    service_class: ServiceClass

    @property
    def priority(self) -> float:
        """Shortcut for the client's class weight ``q_j``."""
        return self.service_class.priority


def paper_classes(
    names: Sequence[str] = ("A", "B", "C"),
    ratio: Sequence[float] = (3.0, 2.0, 1.0),
) -> list[ServiceClass]:
    """The paper's three service classes with 1::2::3 priority ratio.

    ``ratio`` is given most-important-first (Class-A weight 3).
    """
    if len(names) != len(ratio):
        raise ValueError(f"{len(names)} names vs {len(ratio)} ratio entries")
    if list(ratio) != sorted(ratio, reverse=True):
        raise ValueError("ratio must be non-increasing (most important class first)")
    return [ServiceClass(name=n, priority=float(q), rank=i) for i, (n, q) in enumerate(zip(names, ratio))]


@dataclass
class ClientPopulation:
    """A set of clients partitioned over service classes.

    Attributes
    ----------
    classes:
        Service classes in importance order (rank 0 first).
    class_counts:
        Number of clients per class (aligned with ``classes``).
    """

    classes: list[ServiceClass]
    class_counts: np.ndarray
    #: Per-client objects, materialised on first per-client access.  The
    #: population-aggregated scale path (``repro.scale``) only ever reads
    #: the class-level views, so a 10M-client population stays O(classes)
    #: until somebody actually iterates clients.
    _clients: list[Client] | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self.class_counts = np.asarray(self.class_counts, dtype=int)
        if len(self.classes) != len(self.class_counts):
            raise ValueError(
                f"{len(self.classes)} classes vs {len(self.class_counts)} counts"
            )
        if np.any(self.class_counts < 0) or self.class_counts.sum() == 0:
            raise ValueError("class counts must be non-negative and not all zero")
        ranks = [c.rank for c in self.classes]
        if ranks != list(range(len(self.classes))):
            raise ValueError(f"classes must be in rank order 0..n-1, got ranks {ranks}")

    def _materialize(self) -> list[Client]:
        if self._clients is None:
            clients: list[Client] = []
            cid = 0
            for svc, count in zip(self.classes, self.class_counts):
                for _ in range(int(count)):
                    clients.append(Client(client_id=cid, service_class=svc))
                    cid += 1
            self._clients = clients
        return self._clients

    # -- construction --------------------------------------------------------
    @classmethod
    def generate(
        cls,
        num_clients: int,
        classes: Sequence[ServiceClass] | None = None,
        population_skew: float = 1.0,
    ) -> "ClientPopulation":
        """Paper §5.1 population: class sizes Zipf with *fewest* in Class-A.

        The Zipf law over class sizes is applied in reverse rank order so
        the most important class gets the smallest share (assumption 6).
        Every class receives at least one client.

        Parameters
        ----------
        num_clients:
            Total population size ``C``.
        classes:
            Service classes (default: :func:`paper_classes`).
        population_skew:
            Zipf skew of the class-size law; 0 gives equal class sizes.
        """
        class_list = list(classes) if classes is not None else paper_classes()
        n = len(class_list)
        if num_clients < n:
            raise ValueError(f"need >= {n} clients to populate {n} classes, got {num_clients}")
        shares = zipf_probabilities(n, population_skew)[::-1]  # smallest share first (= Class-A)
        counts = np.maximum(1, np.floor(shares * num_clients).astype(int))
        # Distribute the remainder to the largest-share class; ties go to
        # the least important class so Class-A never gains the spillover.
        spill = len(shares) - 1 - int(np.argmax(shares[::-1]))
        while counts.sum() < num_clients:
            counts[spill] += 1
        while counts.sum() > num_clients:
            candidates = np.where(counts > 1)[0]
            counts[candidates[-1]] -= 1
        return cls(classes=class_list, class_counts=counts)

    # -- container protocol ----------------------------------------------------
    def __len__(self) -> int:
        return int(self.class_counts.sum())

    def __getitem__(self, client_id: int) -> Client:
        return self._materialize()[client_id]

    def __iter__(self) -> Iterator[Client]:
        return iter(self._materialize())

    # -- class-level views --------------------------------------------------------
    @property
    def num_classes(self) -> int:
        """Number of service classes."""
        return len(self.classes)

    @property
    def priorities(self) -> np.ndarray:
        """Per-class priority weights ``q`` in rank order."""
        return np.array([c.priority for c in self.classes], dtype=float)

    @property
    def class_fractions(self) -> np.ndarray:
        """Fraction of the population in each class (rank order).

        Because clients request items at a common rate, this is also the
        probability a random request originates from each class.
        """
        return self.class_counts / self.class_counts.sum()

    def class_by_name(self, name: str) -> ServiceClass:
        """Look up a service class by its label."""
        for svc in self.classes:
            if svc.name == name:
                return svc
        raise KeyError(f"no service class named {name!r}")

    def clients_in_class(self, name: str) -> list[Client]:
        """All clients belonging to the named class."""
        svc = self.class_by_name(name)
        return [c for c in self._materialize() if c.service_class is svc]

    def mean_priority(self) -> float:
        """Population-average priority weight ``E[q]``."""
        return float(self.priorities @ self.class_fractions)
