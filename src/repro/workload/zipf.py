"""Zipf access-probability law used throughout the paper.

The paper (Section 4.1) assumes item access probabilities

    P_i = (1/i)^theta / sum_j (1/j)^theta ,   i = 1..D

with *access skew coefficient* ``theta``: ``theta = 0`` is uniform access,
larger ``theta`` concentrates demand on the low-indexed (popular) items.
The evaluation sweeps ``theta`` in {0.20, 0.60, 1.0, 1.40}.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_probabilities",
    "zipf_cdf",
    "cumulative_mass",
    "effective_catalog_fraction",
    "fit_theta",
    "PAPER_THETAS",
]

#: The skew values the paper's evaluation uses (Section 5.1, assumption 4).
PAPER_THETAS: tuple[float, ...] = (0.20, 0.60, 1.0, 1.40)


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Zipf probability vector ``P_i ∝ (1/i)^theta`` for ``i = 1..n``.

    Parameters
    ----------
    n:
        Number of items (``D`` in the paper).  Must be >= 1.
    theta:
        Access skew coefficient.  ``0`` gives the uniform distribution.
        Must be >= 0 (the paper never uses negative skew).

    Returns
    -------
    numpy.ndarray
        Length-``n`` vector summing to 1, non-increasing in ``i``.
    """
    if n < 1:
        raise ValueError(f"need at least one item, got n={n}")
    if theta < 0:
        raise ValueError(f"theta must be >= 0, got {theta}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-theta)
    return weights / weights.sum()


def zipf_cdf(n: int, theta: float) -> np.ndarray:
    """Cumulative distribution of :func:`zipf_probabilities`."""
    return np.cumsum(zipf_probabilities(n, theta))


def cumulative_mass(probabilities: np.ndarray, k: int) -> float:
    """Total access probability of the first ``k`` items (the push set).

    ``k = 0`` returns 0; ``k = len(probabilities)`` returns 1 (up to
    floating point).
    """
    if not 0 <= k <= len(probabilities):
        raise ValueError(f"k={k} outside [0, {len(probabilities)}]")
    return float(np.sum(probabilities[:k]))


def fit_theta(
    counts: np.ndarray,
    theta_bounds: tuple[float, float] = (0.0, 4.0),
) -> float:
    """Maximum-likelihood Zipf skew from observed per-rank request counts.

    ``counts[i]`` is the number of requests observed for the item of rank
    ``i+1``.  Maximises the multinomial log-likelihood
    ``Σ_i counts[i]·log P_i(θ)`` over ``θ`` — the estimator a deployed
    adaptive controller would run on its demand window.

    Parameters
    ----------
    counts:
        Non-negative observation counts in rank order.
    theta_bounds:
        Search interval for θ.

    Returns
    -------
    float
        The ML estimate, clipped to ``theta_bounds``.
    """
    c = np.asarray(counts, dtype=float)
    if c.ndim != 1 or c.size < 2:
        raise ValueError("need a 1-D count vector with >= 2 ranks")
    if np.any(c < 0) or c.sum() <= 0:
        raise ValueError("counts must be non-negative with a positive total")
    from scipy import optimize as _optimize

    log_ranks = np.log(np.arange(1, c.size + 1, dtype=float))

    def negative_log_likelihood(theta: float) -> float:
        # log P_i = -theta*log(i) - log(sum_j j^-theta), computed stably.
        weights = -theta * log_ranks
        log_norm = float(np.logaddexp.reduce(weights))
        return -float(c @ (weights - log_norm))

    result = _optimize.minimize_scalar(
        negative_log_likelihood, bounds=theta_bounds, method="bounded"
    )
    return float(np.clip(result.x, *theta_bounds))


def effective_catalog_fraction(probabilities: np.ndarray, mass: float = 0.9) -> float:
    """Fraction of the catalog capturing ``mass`` of the access probability.

    A skew diagnostic: under high theta a small prefix of items covers most
    demand, which is exactly why a small push set suffices there.
    """
    if not 0 < mass <= 1:
        raise ValueError(f"mass must be in (0, 1], got {mass}")
    cdf = np.cumsum(probabilities)
    k = int(np.searchsorted(cdf, mass) + 1)
    return min(k, len(probabilities)) / len(probabilities)
