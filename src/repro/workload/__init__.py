"""``repro.workload`` — synthetic workload model from the paper's §5.1.

Zipf item popularities, a variable-length item catalog calibrated to the
paper's length statistics, a client population split into Zipf-sized
priority classes, Poisson request arrivals and replayable request traces.
"""

from .arrivals import ArrivalProcess, Request
from .batched import BatchedArrivals
from .clients import Client, ClientPopulation, ServiceClass, paper_classes
from .items import Item, ItemCatalog, calibrate_geometric, truncated_geometric_pmf
from .nonstationary import PhasedArrivalProcess, WorkloadPhase
from .population import PopulationArrivals
from .trace import RequestTrace
from .zipf import (
    PAPER_THETAS,
    cumulative_mass,
    effective_catalog_fraction,
    fit_theta,
    zipf_cdf,
    zipf_probabilities,
)

__all__ = [
    "ArrivalProcess",
    "BatchedArrivals",
    "Request",
    "Client",
    "ClientPopulation",
    "ServiceClass",
    "paper_classes",
    "Item",
    "ItemCatalog",
    "calibrate_geometric",
    "truncated_geometric_pmf",
    "PhasedArrivalProcess",
    "PopulationArrivals",
    "WorkloadPhase",
    "RequestTrace",
    "PAPER_THETAS",
    "zipf_probabilities",
    "zipf_cdf",
    "cumulative_mass",
    "fit_theta",
    "effective_catalog_fraction",
]
