"""Chunked, numpy-vectorised Poisson request generation.

:class:`BatchedArrivals` produces the same workload *distribution* as the
lazy :class:`~repro.workload.arrivals.ArrivalProcess` — exponential
inter-arrival gaps at aggregate rate ``λ'``, Zipf item draws, uniform or
priority-weighted client draws — but samples whole chunks of variates at
once instead of three scalar numpy calls per arrival.  Per-call numpy
dispatch overhead (~1 µs each) dominates the reference arrival path, so
batching it is one of the fast engine's main levers.

The draws are consumed from the same named stream in a different order
(blocked per-variate instead of interleaved per-arrival), so a batched
run is **statistically identical but not bit-identical** to a reference
run of the same seed; see ``docs/performance.md``.

Chunking bounds memory: only ``chunk_size`` requests exist at a time, so
an unbounded-horizon stream never materialises the whole trace.
:class:`~repro.workload.arrivals.Request` objects (``slots=True``
dataclasses) are built once per chunk from plain-Python scalars
(``ndarray.tolist``) — the struct-of-arrays representation stays internal
and the API boundary still speaks ``Request``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .arrivals import Request
from .clients import ClientPopulation
from .items import ItemCatalog

__all__ = ["BatchedArrivals"]


class BatchedArrivals:
    """Vectorised equivalent of :class:`~repro.workload.arrivals.ArrivalProcess`.

    Parameters
    ----------
    catalog:
        Item catalog supplying the Zipf item law.
    population:
        Client population supplying the class mix.
    rate:
        Aggregate Poisson rate ``λ'`` (requests per broadcast unit).
    rng:
        numpy Generator; pass a named stream from
        :class:`repro.des.RandomStreams` for reproducibility.
    priority_weighted:
        Draw the originating client proportionally to its priority weight
        ``q_j`` instead of uniformly (§4.2's ``λ_i = λ·p_i·q_j``).
    chunk_size:
        Arrivals generated per batch.  Larger chunks amortise numpy
        dispatch further but hold more ``Request`` objects alive; the
        default keeps a chunk comfortably inside L2-cache-sized lists.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        population: ClientPopulation,
        rate: float,
        rng: np.random.Generator,
        priority_weighted: bool = False,
        chunk_size: int = 4096,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {rate}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.catalog = catalog
        self.population = population
        self.rate = float(rate)
        self.rng = rng
        self.priority_weighted = bool(priority_weighted)
        self.chunk_size = int(chunk_size)
        self._num_items = len(catalog)
        self._num_clients = len(population)
        self._client_class_rank = np.array(
            [c.service_class.rank for c in population], dtype=int
        )
        self._client_priority = np.array([c.priority for c in population], dtype=float)
        if priority_weighted:
            weights = self._client_priority / self._client_priority.sum()
            self._client_cdf: np.ndarray | None = np.cumsum(weights)
        else:
            self._client_cdf = None
        self._item_cdf = np.cumsum(catalog.probabilities)
        #: Clock of the last generated arrival; the next chunk continues
        #: from here, so consecutive chunks form one Poisson process.
        self._t = 0.0

    def next_chunk(self) -> list[Request]:
        """Generate the next ``chunk_size`` arrivals, in time order.

        One exponential block, one item-uniform block and one client
        block replace ``3 × chunk_size`` scalar draws.  Times are a
        running cumulative sum, so they continue seamlessly from the
        previous chunk and are non-decreasing by construction.
        """
        n = self.chunk_size
        rng = self.rng
        times = self._t + np.cumsum(rng.exponential(1.0 / self.rate, size=n))
        self._t = float(times[-1])
        item_ids = np.minimum(
            np.searchsorted(self._item_cdf, rng.random(n), side="right"),
            self._num_items - 1,
        )
        if self._client_cdf is None:
            client_ids = rng.integers(0, self._num_clients, size=n)
        else:
            client_ids = np.minimum(
                np.searchsorted(self._client_cdf, rng.random(n), side="right"),
                self._num_clients - 1,
            )
        ranks = self._client_class_rank[client_ids]
        priorities = self._client_priority[client_ids]
        return [
            Request(time=t, item_id=i, client_id=c, class_rank=k, priority=p)
            for t, i, c, k, p in zip(
                times.tolist(),
                item_ids.tolist(),
                client_ids.tolist(),
                ranks.tolist(),
                priorities.tolist(),
            )
        ]

    def __iter__(self) -> Iterator[Request]:
        """Infinite lazy stream of requests in time order (chunk-backed).

        Lets a ``BatchedArrivals`` double as a generic arrivals source
        (e.g. for ``drive_arrivals`` on the reference engine).
        """
        while True:
            yield from self.next_chunk()
