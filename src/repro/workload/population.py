"""Population-aggregated Poisson request generation for the scale path.

A superposition of independent Poisson processes is itself Poisson, so the
per-client request processes of :class:`~repro.workload.clients.ClientPopulation`
collapse *exactly* into one aggregate process at rate ``λ'`` whose requests
are labelled by (item, class) via independent thinning:

    λ_{i,j} = λ' · p_i · f_j

where ``p_i`` is the Zipf item probability and ``f_j`` the probability a
random request originates from class ``j`` (the class's population share,
or its priority-mass share when draws are priority-weighted).  Client
identity beyond the class label never influences the scheduler — entries
fold requests into counts — so dropping it loses nothing distributionally.

:class:`PopulationArrivals` therefore never materialises clients: requests
carry ``client_id = -1`` and a class rank drawn straight from the class
share CDF.  This is *statistically identical* to
:class:`~repro.workload.batched.BatchedArrivals` (which draws a concrete
client uniformly and reads off its class) but O(num_classes) in the
population size ``N`` — the workload for ``N = 10M`` costs the same to set
up as ``N = 300``.  Only the aggregate rate grows with ``N``.

Like :class:`BatchedArrivals`, generation is chunked numpy blocks; the
struct-of-arrays view (:meth:`next_block`) feeds the population engine's
scalar drain loop without building ``Request`` objects at all, while
:meth:`next_chunk` / ``__iter__`` keep the generic ``Request`` API for
tests and the reference driver.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .arrivals import Request
from .clients import ClientPopulation
from .items import ItemCatalog

__all__ = ["PopulationArrivals"]

#: Sentinel client id carried by aggregated requests — no concrete client
#: exists, only a class label.
AGGREGATE_CLIENT = -1


class PopulationArrivals:
    """Aggregated per-(item, class) Poisson arrival streams.

    Parameters
    ----------
    catalog:
        Item catalog supplying the Zipf item law ``p_i``.
    population:
        Client population supplying the class mix ``f_j`` (only class-level
        views are read; clients are never materialised).
    rate:
        Aggregate Poisson rate ``λ'`` (requests per broadcast unit).
    rng:
        numpy Generator; pass a named stream from
        :class:`repro.des.RandomStreams` for reproducibility.
    priority_weighted:
        Weight the class share by priority mass (class ``j`` share
        ``∝ count_j · q_j``) instead of population share — the aggregated
        equivalent of drawing the client proportionally to ``q_j``.
    chunk_size:
        Arrivals generated per numpy block.
    """

    def __init__(
        self,
        catalog: ItemCatalog,
        population: ClientPopulation,
        rate: float,
        rng: np.random.Generator,
        priority_weighted: bool = False,
        chunk_size: int = 8192,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"arrival rate must be > 0, got {rate}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.catalog = catalog
        self.population = population
        self.rate = float(rate)
        self.rng = rng
        self.priority_weighted = bool(priority_weighted)
        self.chunk_size = int(chunk_size)
        self._num_items = len(catalog)
        if priority_weighted:
            mass = population.class_counts * population.priorities
            shares = mass / mass.sum()
        else:
            shares = population.class_fractions
        #: Probability a random request belongs to each class (rank order).
        self.class_shares: np.ndarray = np.asarray(shares, dtype=float)
        self._class_cdf = np.cumsum(self.class_shares)
        self._class_priority = [float(q) for q in population.priorities]
        self._num_classes = len(self._class_priority)
        self._item_cdf = np.cumsum(catalog.probabilities)
        #: Clock of the last generated arrival; the next block continues
        #: from here, so consecutive blocks form one Poisson process.
        self._t = 0.0

    # -- aggregated stream structure -------------------------------------------
    def rate_for(self, item_id: int, rank: int) -> float:
        """Poisson rate of the aggregated (item, class) component stream.

        ``λ_{i,j} = λ' · p_i · f_j`` — independent thinning of the
        aggregate, so the component rates sum back to ``λ'`` exactly.
        """
        return float(
            self.rate
            * self.catalog.probabilities[item_id]
            * self.class_shares[rank]
        )

    # -- generation --------------------------------------------------------------
    def next_block(self) -> tuple[list[float], list[int], list[int]]:
        """Next ``chunk_size`` arrivals as parallel plain-Python lists.

        Returns ``(times, item_ids, class_ranks)`` in time order.  This is
        the struct-of-arrays view the population engine drains directly —
        no ``Request`` objects, no client ids.  Priorities are a pure
        function of rank (``population.priorities[rank]``).
        """
        n = self.chunk_size
        rng = self.rng
        times = self._t + np.cumsum(rng.exponential(1.0 / self.rate, size=n))
        self._t = float(times[-1])
        item_ids = np.minimum(
            np.searchsorted(self._item_cdf, rng.random(n), side="right"),
            self._num_items - 1,
        )
        ranks = np.minimum(
            np.searchsorted(self._class_cdf, rng.random(n), side="right"),
            self._num_classes - 1,
        )
        return times.tolist(), item_ids.tolist(), ranks.tolist()

    def next_chunk(self) -> list[Request]:
        """Next ``chunk_size`` arrivals as ``Request`` objects.

        Same draws as :meth:`next_block`; requests carry the sentinel
        ``client_id = -1`` because no concrete client exists.
        """
        times, item_ids, ranks = self.next_block()
        priority = self._class_priority
        return [
            Request(
                time=t,
                item_id=i,
                client_id=AGGREGATE_CLIENT,
                class_rank=k,
                priority=priority[k],
            )
            for t, i, k in zip(times, item_ids, ranks)
        ]

    def __iter__(self) -> Iterator[Request]:
        """Infinite lazy stream of aggregated requests in time order."""
        while True:
            yield from self.next_chunk()
