"""Ablations of the design choices DESIGN.md calls out.

None of these sweeps appear in the paper — they interrogate our
reproduction's sensitivity to choices the paper leaves implicit:

* **length law** — the paper's "lengths 1..5, mean 2" forces a skewed
  law; does the headline shape survive uniform or constant lengths?
* **Eq. 1 scale sensitivity** — the raw linear blend of stretch and
  priority is scale-dependent; compare against the normalised variant
  and the Eq. 6 expected-value variant.
* **pull service mode** — the §4 analysis implies serial push/pull
  alternation; the §3 bandwidth text suggests concurrent streams.  How
  much do delay and blocking differ?
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..sim.runner import run_replications
from .specs import ExperimentScale, QUICK, paper_config
from .tables import FigureData, render_table

__all__ = ["length_law_ablation", "importance_variant_ablation", "pull_mode_ablation"]


def length_law_ablation(
    cutoffs: Sequence[int] = (10, 40, 70),
    theta: float = 0.60,
    alpha: float = 0.25,
    scale: ExperimentScale = QUICK,
) -> FigureData:
    """Overall delay vs K under the three item-length laws."""
    fig = FigureData(
        title=f"Length-law ablation (theta={theta}, alpha={alpha})",
        x_label="K",
    )
    base = paper_config(theta=theta, alpha=alpha)
    for law in ("truncated_geometric", "uniform", "constant"):
        config = dataclasses.replace(base, length_law=law)
        ys = []
        for k in cutoffs:
            result = run_replications(
                config.with_cutoff(int(k)),
                num_runs=scale.num_seeds,
                horizon=scale.horizon,
                warmup=scale.warmup,
                n_jobs=scale.n_jobs,
            )
            ys.append(result.overall_delay()[0])
        fig.add(law, list(cutoffs), ys)
    return fig


def importance_variant_ablation(
    alpha: float = 0.25,
    theta: float = 0.60,
    cutoff: int = 40,
    scale: ExperimentScale = QUICK,
) -> tuple[str, dict[str, dict[str, float]]]:
    """Eq. 1 raw vs normalised vs Eq. 6 expected importance (per-class delay)."""
    base = paper_config(theta=theta, alpha=alpha, cutoff=cutoff)
    results: dict[str, dict[str, float]] = {}
    rows = []
    for variant in ("importance", "importance-normalized", "importance-expected"):
        config = dataclasses.replace(base, pull_scheduler=variant)
        result = run_replications(
            config,
            num_runs=scale.num_seeds,
            horizon=scale.horizon,
            warmup=scale.warmup,
            n_jobs=scale.n_jobs,
        )
        per_class = {name: result.delay(name)[0] for name in base.class_names()}
        results[variant] = per_class
        rows.append(
            [
                variant,
                *(per_class[n] for n in base.class_names()),
                result.overall_delay()[0],
            ]
        )
    table = render_table(
        ["variant", *(f"delay-{n}" for n in base.class_names()), "overall"], rows
    )
    return table, results


def pull_mode_ablation(
    theta: float = 0.60,
    alpha: float = 0.25,
    cutoff: int = 40,
    scale: ExperimentScale = QUICK,
) -> tuple[str, dict[str, dict[str, float]]]:
    """Serial (analysis-faithful) vs concurrent (bandwidth-accumulating) pull."""
    from ..sim.system import HybridSystem

    base = paper_config(theta=theta, alpha=alpha, cutoff=cutoff)
    results: dict[str, dict[str, float]] = {}
    rows = []
    for mode in ("serial", "concurrent"):
        system = HybridSystem(base, seed=0, warmup=scale.warmup, pull_mode=mode)
        result = system.run(scale.horizon)
        summary = {
            "overall_delay": result.overall_delay,
            "blocking_A": result.per_class_blocking["A"],
            "blocking_C": result.per_class_blocking["C"],
            "pull_services": float(result.pull_services),
            "drops": float(result.pull_drops),
        }
        results[mode] = summary
        rows.append(
            [
                mode,
                summary["overall_delay"],
                summary["blocking_A"],
                summary["blocking_C"],
                int(summary["pull_services"]),
                int(summary["drops"]),
            ]
        )
    table = render_table(
        ["mode", "overall delay", "blocking A", "blocking C", "pull services", "drops"],
        rows,
    )
    return table, results
