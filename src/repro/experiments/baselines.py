"""Experiments E7/E8 — scheduler baselines and substrate validation.

E7 replays one common request trace against every pull policy (common
random numbers), quantifying what the importance factor buys: premium
delay close to pure-priority scheduling while avoiding its fairness
collapse for Class-C.

E8 validates the substrates the headline results stand on:
* push baselines — flat vs broadcast disks vs square-root rule under a
  push-only configuration;
* the §4.1 birth-death chain against a matched M/M/1-style DES run.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from ..analysis.birth_death import HybridBirthDeathChain
from ..des import RandomStreams
from ..schedulers.registry import pull_scheduler_names, push_scheduler_names
from ..sim.system import HybridSystem
from ..workload.arrivals import ArrivalProcess
from ..workload.trace import RequestTrace
from .specs import ExperimentScale, QUICK, paper_config
from .tables import render_table

__all__ = ["pull_policy_comparison", "push_policy_comparison", "birth_death_validation"]


def pull_policy_comparison(
    policies: Sequence[str] | None = None,
    theta: float = 0.60,
    alpha: float = 0.25,
    cutoff: int = 40,
    scale: ExperimentScale = QUICK,
    seed: int = 0,
) -> tuple[str, dict[str, dict[str, float]]]:
    """Per-class delay for every pull policy on one shared trace (E7).

    Returns the rendered table and the raw ``{policy: {class: delay}}``
    mapping.
    """
    if policies is None:
        policies = [p for p in pull_scheduler_names() if p != "importance-normalized"]
    base = paper_config(theta=theta, alpha=alpha, cutoff=cutoff)
    arrivals = ArrivalProcess(
        catalog=base.build_catalog(),
        population=base.build_population(),
        rate=base.arrival_rate,
        rng=RandomStreams(seed=seed).stream("trace"),
    )
    trace = RequestTrace.from_requests(arrivals.generate(horizon=scale.horizon))

    results: dict[str, dict[str, float]] = {}
    rows = []
    for policy in policies:
        config = dataclasses.replace(base, pull_scheduler=policy)
        system = HybridSystem(config, seed=seed, warmup=scale.warmup, trace=trace)
        result = system.run(horizon=scale.horizon)
        per_class = {name: result.per_class_delay[name] for name in base.class_names()}
        per_class["overall"] = result.overall_delay
        results[policy] = per_class
        rows.append(
            [
                policy,
                *(per_class[n] for n in base.class_names()),
                result.overall_delay,
                result.total_prioritized_cost,
            ]
        )
    table = render_table(
        ["policy", *(f"delay-{n}" for n in base.class_names()), "overall", "cost"],
        rows,
    )
    return table, results


def push_policy_comparison(
    cutoff: int = 100,
    theta: float = 1.0,
    scale: ExperimentScale = QUICK,
    seed: int = 0,
) -> tuple[str, dict[str, float]]:
    """Overall delay of each push scheduler on a push-only system (E8a).

    With every item pushed, delay is pure broadcast wait: popularity-aware
    programs (disks, SRR) must beat the flat schedule under skewed access.
    """
    base = dataclasses.replace(paper_config(theta=theta, cutoff=cutoff))
    results: dict[str, float] = {}
    rows = []
    for policy in push_scheduler_names():
        config = dataclasses.replace(base, push_scheduler=policy)
        system = HybridSystem(config, seed=seed, warmup=scale.warmup)
        result = system.run(horizon=scale.horizon)
        results[policy] = result.overall_delay
        rows.append([policy, result.overall_delay, result.push_broadcasts])
    table = render_table(["policy", "overall delay", "broadcast slots"], rows)
    return table, results


def birth_death_validation(
    lam: float = 1.0, mu1: float = 4.0, mu2: float = 3.0
) -> tuple[str, dict[str, float]]:
    """Closed forms of §4.1 vs the numeric chain (E8b).

    Cross-checks idle probability and phase occupancies, and reports the
    mean pull-queue length the paper's Eq. 5 leaves unevaluated.
    """
    chain = HybridBirthDeathChain(lam=lam, mu1=mu1, mu2=mu2)
    sol = chain.solve()
    values = {
        "idle (numeric)": sol.idle_probability,
        "idle (paper closed form)": chain.idle_probability_closed_form(),
        "pull occupancy (numeric)": sol.pull_occupancy,
        "pull occupancy (paper: rho)": chain.rho,
        "push busy occupancy (numeric)": sol.push_busy_occupancy,
        "push busy occupancy (paper: rho/f)": chain.rho / chain.f,
        "E[L_pull] (numeric)": sol.mean_pull_queue_length,
        "E[W_pull] via Little": chain.mean_pull_waiting_time(),
    }
    table = render_table(
        ["quantity", "value"], [[k, v] for k, v in values.items()]
    )
    return table, values
