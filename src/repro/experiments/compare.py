"""Experiment E5 — analytical vs simulation results (Fig. 7).

The paper compares Eq. 19's prediction against simulation at θ = 0.60,
α = 0.75 and reports "a minor 10 % deviation", attributed to the
memoryless modelling assumptions.  We compare the *corrected* analytical
model (rate-consistent, alternation- and batching-aware — see
``repro.analysis.hybrid_delay``) against the DES across the ``K`` grid,
per class.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..analysis.hybrid_delay import analyze_hybrid
from ..analysis.validate import compare_results
from ..sim.runner import run_replications
from .specs import DEFAULT_CUTOFFS, ExperimentScale, QUICK, paper_config
from .tables import FigureData

__all__ = ["analytical_vs_simulation"]


def analytical_vs_simulation(
    theta: float = 0.60,
    alpha: float = 0.75,
    cutoffs: Sequence[int] = DEFAULT_CUTOFFS,
    scale: ExperimentScale = QUICK,
) -> tuple[FigureData, float]:
    """Per-class analytic and simulated delay vs ``K`` (Fig. 7).

    Returns
    -------
    (figure, mean_deviation):
        The figure holds two curves per class (``sim`` and ``ana``);
        ``mean_deviation`` is the average relative gap across all finite
        (class, K) points — the paper's headline "10 %" number.
    """
    fig = FigureData(
        title=f"Analytical vs simulation (theta={theta}, alpha={alpha})",
        x_label="K",
    )
    base = paper_config(theta=theta, alpha=alpha)
    class_names = base.class_names()
    sim_curves: dict[str, list[float]] = {n: [] for n in class_names}
    ana_curves: dict[str, list[float]] = {n: [] for n in class_names}
    deviations: list[float] = []
    for k in cutoffs:
        config = base.with_cutoff(int(k))
        sim = run_replications(
            config,
            num_runs=scale.num_seeds,
            horizon=scale.horizon,
            warmup=scale.warmup,
            n_jobs=scale.n_jobs,
        )
        ana = analyze_hybrid(config, mode="corrected")
        rows = compare_results(ana, sim)
        for row in rows:
            sim_curves[row.class_name].append(row.simulated)
            ana_curves[row.class_name].append(row.analytical)
            if np.isfinite(row.deviation):
                deviations.append(row.deviation)
    for name in class_names:
        fig.add(f"sim-{name}", list(cutoffs), sim_curves[name])
        fig.add(f"ana-{name}", list(cutoffs), ana_curves[name])
    mean_dev = float(np.mean(deviations)) if deviations else float("nan")
    return fig, mean_dev
