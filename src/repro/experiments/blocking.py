"""Experiment E6 — request blocking vs bandwidth partition (abstract/§5).

The paper's abstract claims the number of dropped requests can be
minimised "by assigning appropriate fraction of available bandwidth".
This experiment sweeps the premium class's bandwidth share (splitting
the remainder between B and C in the paper's 3:2 ratio) and reports the
per-class blocking fraction — simulated and analytic (Poisson tail) —
plus the optimiser's chosen partition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.bandwidth import blocking_probabilities, optimize_shares
from ..sim.runner import run_replications
from .specs import ExperimentScale, QUICK, paper_config
from .tables import FigureData

__all__ = ["blocking_vs_share", "optimal_partition"]


def _share_vector(share_a: float) -> list[float]:
    """Give class A ``share_a``; split the rest between B and C 3:2."""
    rest = 1.0 - share_a
    return [share_a, rest * 0.6, rest * 0.4]


def blocking_vs_share(
    shares_a: Sequence[float] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7),
    theta: float = 0.60,
    alpha: float = 0.75,
    scale: ExperimentScale = QUICK,
) -> FigureData:
    """Per-class blocking vs the premium class's bandwidth share."""
    fig = FigureData(
        title=f"Blocking vs Class-A bandwidth share (theta={theta}, alpha={alpha})",
        x_label="share_A",
    )
    base = paper_config(theta=theta, alpha=alpha)
    class_names = base.class_names()
    sim_curves: dict[str, list[float]] = {n: [] for n in class_names}
    ana_curves: dict[str, list[float]] = {n: [] for n in class_names}
    for share_a in shares_a:
        shares = _share_vector(float(share_a))
        config = base.with_bandwidth_shares(shares)
        result = run_replications(
            config,
            num_runs=scale.num_seeds,
            horizon=scale.horizon,
            warmup=scale.warmup,
            n_jobs=scale.n_jobs,
        )
        analytic = blocking_probabilities(
            shares, config.total_bandwidth, config.bandwidth_demand_mean
        )
        for name, a in zip(class_names, analytic):
            sim_curves[name].append(result.blocking(name)[0])
            ana_curves[name].append(float(a))
    for name in class_names:
        fig.add(f"sim-{name}", list(shares_a), sim_curves[name])
        fig.add(f"ana-{name}", list(shares_a), ana_curves[name])
    return fig


def optimal_partition(theta: float = 0.60, resolution: int = 20) -> dict:
    """The optimiser's bandwidth split and its predicted blocking."""
    config = paper_config(theta=theta)
    allocation = optimize_shares(config, resolution=resolution)
    return {
        "shares": [float(s) for s in allocation.shares],
        "blocking": [float(b) for b in allocation.blocking],
        "weighted_blocking": float(allocation.weighted_blocking),
        "uniform_blocking": [
            float(b)
            for b in blocking_probabilities(
                np.full(len(allocation.shares), 1.0 / len(allocation.shares)),
                config.total_bandwidth,
                config.bandwidth_demand_mean,
            )
        ],
    }
