"""Registry mapping experiment ids (paper figures) to runnable harnesses.

Each entry regenerates one table/figure of the paper (or one substrate
validation) and returns printable text.  The CLI (``python -m repro``)
and EXPERIMENTS.md are both driven from here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .baselines import (
    birth_death_validation,
    pull_policy_comparison,
    push_policy_comparison,
)
from .blocking import blocking_vs_share, optimal_partition
from .compare import analytical_vs_simulation
from .cost import cost_vs_cutoff, optimal_cost_vs_alpha
from .ablations import (
    importance_variant_ablation,
    length_law_ablation,
    pull_mode_ablation,
)
from .adaptive_control import adaptive_control
from .ascii_plot import ascii_plot
from .degradation import degradation_under_loss
from .delay import delay_vs_alpha, delay_vs_cutoff
from .flash_crowd import flash_crowd
from .n_ladder import n_ladder_report
from .specs import FULL, QUICK, ExperimentScale

__all__ = ["Experiment", "EXPERIMENTS", "run_experiment", "experiment_ids"]


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment: id, provenance and a runner."""

    experiment_id: str
    paper_reference: str
    description: str
    runner: Callable[[ExperimentScale], str]

    def run(self, scale: ExperimentScale = QUICK) -> str:
        """Execute and return printable output."""
        return self.runner(scale)


def _render_figure(fig) -> str:
    """Table plus ASCII chart — numbers for diffing, shape at a glance."""
    return f"{fig.render()}\n\n{ascii_plot(fig)}"


def _fig3(scale: ExperimentScale) -> str:
    parts = []
    for theta in (0.20, 0.60, 1.40):
        parts.append(_render_figure(delay_vs_cutoff(alpha=0.0, theta=theta, scale=scale)))
    return "\n\n".join(parts)


def _fig4(scale: ExperimentScale) -> str:
    parts = []
    for theta in (0.20, 0.60, 1.40):
        parts.append(_render_figure(delay_vs_cutoff(alpha=1.0, theta=theta, scale=scale)))
    return "\n\n".join(parts)


def _alpha_sweep(scale: ExperimentScale) -> str:
    return _render_figure(delay_vs_alpha(theta=0.60, scale=scale))


def _fig5(scale: ExperimentScale) -> str:
    parts = [
        _render_figure(cost_vs_cutoff(alpha=0.25, theta=0.60, scale=scale)),
        _render_figure(cost_vs_cutoff(alpha=0.75, theta=0.60, scale=scale)),
    ]
    return "\n\n".join(parts)


def _fig6(scale: ExperimentScale) -> str:
    return _render_figure(optimal_cost_vs_alpha(scale=scale))


def _fig7(scale: ExperimentScale) -> str:
    fig, deviation = analytical_vs_simulation(scale=scale)
    return f"{_render_figure(fig)}\n\nmean relative deviation: {deviation:.1%}"


def _blocking(scale: ExperimentScale) -> str:
    fig = blocking_vs_share(scale=scale)
    optimum = optimal_partition()
    lines = [fig.render(), "", "optimised partition:"]
    lines.append(f"  shares            = {[round(s, 3) for s in optimum['shares']]}")
    lines.append(f"  blocking          = {[round(b, 4) for b in optimum['blocking']]}")
    lines.append(f"  uniform blocking  = {[round(b, 4) for b in optimum['uniform_blocking']]}")
    return "\n".join(lines)


def _pull_baselines(scale: ExperimentScale) -> str:
    table, _ = pull_policy_comparison(scale=scale)
    return table


def _push_baselines(scale: ExperimentScale) -> str:
    table, _ = push_policy_comparison(scale=scale)
    return table


def _birth_death(scale: ExperimentScale) -> str:
    table, _ = birth_death_validation()
    return table


def _preemption(scale: ExperimentScale) -> str:
    """E11 — non-preemptive (paper) vs preemptive-resume pull service.

    Simulated head-to-head in the alternating hybrid, against the
    dedicated-queue analysis where preemption *provably* helps class 1 —
    demonstrating why the paper's non-preemptive choice fits this
    architecture.
    """
    import numpy as np

    from ..analysis.preemptive import preemption_gain
    from ..core.config import HybridConfig
    from ..sim.preemptive import PreemptiveHybridServer
    from ..sim.system import HybridSystem
    from .tables import render_table

    config = HybridConfig(alpha=0.0, theta=0.60, cutoff=40)
    horizon = max(scale.horizon, 2_000.0)
    nonpre = HybridSystem(config, seed=5, warmup=scale.warmup).run(horizon)
    sys_pre = HybridSystem(
        config,
        seed=5,
        warmup=scale.warmup,
        server_cls=PreemptiveHybridServer,
        server_kwargs={"preemption_threshold": 0.1},
    )
    pre = sys_pre.run(horizon)
    rows = []
    for name in config.class_names():
        rows.append(
            [
                name,
                nonpre.per_class_pull_delay[name],
                pre.per_class_pull_delay[name],
            ]
        )
    table = render_table(
        ["class", "non-preemptive pull delay", "preemptive pull delay"], rows
    )
    # Dedicated-queue theory: sojourn ratios non-preemptive/preemptive.
    lam = 0.2 * np.asarray(config.build_population().class_fractions)
    gains = preemption_gain(lam, np.full(3, 0.5))
    theory = "  ".join(
        f"{n}:{g:.2f}" for n, g in zip(config.class_names(), gains)
    )
    return (
        f"{table}\n\npreemptions performed: {sys_pre.server.preemptions}\n"
        f"dedicated-queue theory (sojourn ratio non-preemptive/preemptive): {theory}\n"
        "(in the alternating hybrid, each resumed item pays an extra push\n"
        " interleave, which erodes preemption's theoretical premium gain)"
    )


def _degradation(scale: ExperimentScale) -> str:
    return degradation_under_loss(scale)


def _ablations(scale: ExperimentScale) -> str:
    parts = [_render_figure(length_law_ablation(scale=scale))]
    table, _ = importance_variant_ablation(scale=scale)
    parts.append("importance-factor variants:\n" + table)
    table, _ = pull_mode_ablation(scale=scale)
    parts.append("pull service modes:\n" + table)
    return "\n\n".join(parts)


def _adaptive(scale: ExperimentScale) -> str:
    """E9 — §3's periodic re-optimisation under drifting demand."""
    from ..core.config import HybridConfig
    from ..sim.adaptive import build_adaptive_system
    from ..sim.system import HybridSystem
    from ..workload.nonstationary import WorkloadPhase

    horizon = max(scale.horizon, 3_000.0)
    config = HybridConfig(cutoff=40, theta=0.60)
    phases = [
        WorkloadPhase(duration=horizon / 2, theta=0.20),
        WorkloadPhase(duration=horizon / 2, theta=1.40),
    ]
    static = HybridSystem(config, seed=7, warmup=scale.warmup).run(horizon)
    system, controller = build_adaptive_system(
        config,
        seed=7,
        warmup=scale.warmup,
        period=horizon / 10,
        candidates=[10, 25, 40, 55, 70],
        phases=phases,
    )
    adaptive = system.run(horizon)
    lines = ["controller decisions (time, K_old -> K_new, predicted objective):"]
    for d in controller.decisions:
        arrow = "->" if d.changed else "=="
        lines.append(
            f"  t={d.time:9.1f}  {d.old_cutoff:3d} {arrow} {d.new_cutoff:3d}  "
            f"pred {d.predicted_objective:8.2f}  rate~{d.estimated_rate:5.2f}"
        )
    lines.append("")
    lines.append(
        f"static  cutoff K=40 : overall delay {static.overall_delay:8.2f}  "
        f"cost {static.total_prioritized_cost:8.2f}"
    )
    lines.append(
        f"adaptive (final K={system.server.cutoff:3d}): overall delay "
        f"{adaptive.overall_delay:8.2f}  cost {adaptive.total_prioritized_cost:8.2f}"
    )
    return "\n".join(lines)


EXPERIMENTS: dict[str, Experiment] = {
    e.experiment_id: e
    for e in (
        Experiment(
            "fig3",
            "Figure 3",
            "Per-class delay vs cutoff K at alpha=0 (pure priority), several theta",
            _fig3,
        ),
        Experiment(
            "fig4",
            "Figure 4",
            "Per-class delay vs cutoff K at alpha=1 (pure stretch), several theta",
            _fig4,
        ),
        Experiment(
            "alpha-sweep",
            "Figures 3-4 (text)",
            "Per-class delay vs alpha at fixed K",
            _alpha_sweep,
        ),
        Experiment(
            "fig5",
            "Figure 5",
            "Per-class prioritized cost vs cutoff K, alpha in {0.25, 0.75}, theta=0.60",
            _fig5,
        ),
        Experiment(
            "fig6",
            "Figure 6",
            "Total optimal prioritized cost vs alpha for theta in {0.20, 0.60, 1.40}",
            _fig6,
        ),
        Experiment(
            "fig7",
            "Figure 7",
            "Analytical vs simulation per-class delay, theta=0.60, alpha=0.75",
            _fig7,
        ),
        Experiment(
            "blocking",
            "Abstract / Section 5",
            "Per-class blocking vs premium bandwidth share + optimal partition",
            _blocking,
        ),
        Experiment(
            "pull-baselines",
            "Section 3 (ablation)",
            "Importance factor vs FCFS/MRF/stretch/RxW/priority on a shared trace",
            _pull_baselines,
        ),
        Experiment(
            "push-baselines",
            "Section 2 (substrate)",
            "Flat vs broadcast disks vs square-root rule on a push-only system",
            _push_baselines,
        ),
        Experiment(
            "birth-death",
            "Section 4.1 (substrate)",
            "Closed forms of the hybrid birth-death chain vs numeric solution",
            _birth_death,
        ),
        Experiment(
            "adaptive",
            "Section 3 (extension)",
            "Online cutoff re-optimisation tracking a drifting workload vs a static K",
            _adaptive,
        ),
        Experiment(
            "ablations",
            "DESIGN.md (ablations)",
            "Length-law, importance-variant and pull-mode design-choice ablations",
            _ablations,
        ),
        Experiment(
            "preemption",
            "Section 4.2.1 (extension)",
            "Non-preemptive (paper) vs preemptive-resume pull service, sim + theory",
            _preemption,
        ),
        Experiment(
            "degradation",
            "Section 5 (extension)",
            "Per-class delay degradation vs downlink loss under bounded-queue shedding",
            _degradation,
        ),
        Experiment(
            "flash-crowd",
            "Section 5 (extension)",
            "Class-aware overload admission under a flash-crowd arrival surge",
            flash_crowd,
        ),
        Experiment(
            "n-ladder",
            "Section 5 (scale extension)",
            "Population-aggregated DES vs fluid model on an N ladder up to 10^6 clients",
            n_ladder_report,
        ),
        Experiment(
            "adaptive-control",
            "Section 5 (SLO extension)",
            "Closed-loop SLO retuning vs static-optimal and oracle under drift and surge",
            adaptive_control,
        ),
    )
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, registry order."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, scale: ExperimentScale = QUICK) -> str:
    """Run one experiment by id and return its printable output."""
    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {experiment_ids()}"
        ) from None
    return experiment.run(scale)
