"""Terminal line charts for reproduced figures.

The paper's figures are line plots; the tables in
:mod:`repro.experiments.tables` carry the exact numbers, but a quick
visual check of *shape* (U-curves, class separation, crossovers) is much
easier on a chart.  This renders a :class:`~repro.experiments.tables.
FigureData` as a fixed-size ASCII canvas with one marker per series —
no plotting dependencies, works in CI logs.
"""

from __future__ import annotations

import math

from .tables import FigureData

__all__ = ["ascii_plot"]

#: Marker characters assigned to series in order.
MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ*+ox#@%&"


def _finite(values: list[float]) -> list[float]:
    return [v for v in values if v is not None and math.isfinite(v)]


def ascii_plot(fig: FigureData, width: int = 72, height: int = 20) -> str:
    """Render ``fig`` as an ASCII chart.

    Parameters
    ----------
    fig:
        The figure to draw.  All series share the x-axis (enforced by
        :meth:`FigureData.render` semantics).
    width, height:
        Canvas size in characters (axes excluded).  Minimum 16 × 4.

    Returns
    -------
    str
        Multi-line chart: title, y-range annotations, canvas with a
        left axis, x-range annotation and a series legend.
    """
    if width < 16 or height < 4:
        raise ValueError(f"canvas too small: {width}x{height}")
    if not fig.series:
        return f"{fig.title}\n(empty)"

    xs = fig.series[0].x
    all_y = [y for s in fig.series for y in _finite(s.y)]
    all_x = _finite(xs)
    if not all_y or not all_x:
        return f"{fig.title}\n(no finite data)"

    x_lo, x_hi = min(all_x), max(all_x)
    y_lo, y_hi = min(all_y), max(all_y)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    def col(x: float) -> int:
        return round((x - x_lo) / (x_hi - x_lo) * (width - 1))

    def row(y: float) -> int:
        # Row 0 is the top of the canvas.
        return (height - 1) - round((y - y_lo) / (y_hi - y_lo) * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for index, series in enumerate(fig.series):
        marker = MARKERS[index % len(MARKERS)]
        points = [
            (col(x), row(y))
            for x, y in zip(series.x, series.y)
            if y is not None and math.isfinite(y)
        ]
        # Connect consecutive points with linear interpolation in column
        # space so sparse sweeps still read as curves.
        for (c1, r1), (c2, r2) in zip(points, points[1:]):
            steps = max(abs(c2 - c1), 1)
            for step in range(steps + 1):
                c = c1 + round((c2 - c1) * step / steps)
                r = r1 + round((r2 - r1) * step / steps)
                canvas[r][c] = marker
        for c, r in points:  # data points overwrite interpolation
            canvas[r][c] = marker

    lines = [fig.title, f"y: {y_lo:.3g} .. {y_hi:.3g}"]
    for rowchars in canvas:
        prefix = "|"
        lines.append(prefix + "".join(rowchars))
    lines.append("+" + "-" * width)
    lines.append(f" {fig.x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={s.label}" for i, s in enumerate(fig.series)
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
