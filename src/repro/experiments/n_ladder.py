"""Experiment E13 — the N-ladder: million-client scale-path validation.

Runs the population-aggregated DES engine (``engine="population"``) at
geometrically increasing population sizes with the per-client request
rate held at the paper's §5.1 value, and checks every rung against the
fluid/mean-field predictor (:func:`~repro.analysis.fluid.fluid_predict`):

* **Agreement bounds** — per rung, the simulated overall delay and
  blocking must fall within ``CI half-width + model tolerance`` of the
  fluid prediction.  The tolerance absorbs the fluid model's documented
  bias (≈10% on delay in saturation); the CI term absorbs seed noise.

* **Mean-field concentration** — the per-class satisfied-traffic mix is
  a 1/√N-concentrating observable (its estimator averages O(N·horizon)
  arrivals), so its deviation from the fluid mix must shrink as the
  ladder climbs.  This is the monotone-convergence gate of the
  ``scale-smoke`` CI job.

Rungs shard across worker processes via
:func:`~repro.sim.runner.run_replications` and can checkpoint/resume
per rung (``checkpoint_dir``), so an interrupted ladder resumes without
re-simulating completed populations.  Wall-clock per rung is recorded in
the report — the acceptance target is minutes, not hours, at N = 10⁶.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping, Sequence

from ..analysis.fluid import FluidPrediction, fluid_predict
from ..core.config import HybridConfig
from ..sim.runner import ReplicatedResult, run_replications
from .specs import QUICK, ExperimentScale
from .tables import render_table

__all__ = ["RungReport", "LadderReport", "n_ladder", "ladder_config"]

#: Paper §5.1 nominal load: λ′ = 5 requests/unit for N = 300 clients.
PER_CLIENT_RATE = 5.0 / 300.0

#: Default ladder bandwidth — low enough that blocking is a frequent
#: event (≈11% of requests), so rung agreement is tested on a
#: non-trivial operating point instead of an all-zeros column.
LADDER_BANDWIDTH = 9.0


def ladder_config(
    num_clients: int,
    per_client_rate: float = PER_CLIENT_RATE,
    total_bandwidth: float = LADDER_BANDWIDTH,
) -> HybridConfig:
    """The §5.1 system scaled to ``num_clients`` (aggregate rate ∝ N)."""
    return replace(
        HybridConfig(total_bandwidth=total_bandwidth),
        num_clients=int(num_clients),
        arrival_rate=per_client_rate * num_clients,
    )


def _mean_half(values: Sequence[float], level: float = 0.95) -> tuple[float, float]:
    """(mean, normal-approximation CI half-width) of a small sample."""
    n = len(values)
    mean = sum(values) / n
    if n < 2:
        return mean, 0.0
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    return mean, 1.96 * math.sqrt(var / n)


def _satisfied_shares(result: ReplicatedResult, names: Sequence[str]) -> list[float]:
    """Mean per-class share of satisfied traffic across the replications."""
    shares = [0.0] * len(names)
    for run in result.runs:
        counts = [run.delay_tallies[n].count for n in names]
        total = sum(counts) or 1
        for index, c in enumerate(counts):
            shares[index] += c / total
    return [s / len(result.runs) for s in shares]


@dataclass(frozen=True)
class RungReport:
    """Fluid-vs-DES agreement at one population size."""

    num_clients: int
    arrival_rate: float
    num_runs: int
    horizon: float
    warmup: float
    elapsed_seconds: float
    regime: str
    delay_sim: float
    delay_half: float
    delay_fluid: float
    delay_bound: float
    blocking_sim: float
    blocking_half: float
    blocking_fluid: float
    blocking_bound: float
    mix_error: float
    per_class: Mapping[str, Mapping[str, float]]

    @property
    def delay_agrees(self) -> bool:
        """Simulated delay within the rung's agreement bound."""
        return abs(self.delay_sim - self.delay_fluid) <= self.delay_bound

    @property
    def blocking_agrees(self) -> bool:
        """Simulated blocking within the rung's agreement bound."""
        return abs(self.blocking_sim - self.blocking_fluid) <= self.blocking_bound

    def to_dict(self) -> dict:
        """JSON-ready rung record (the CI artifact row)."""
        return {
            "num_clients": self.num_clients,
            "arrival_rate": self.arrival_rate,
            "num_runs": self.num_runs,
            "horizon": self.horizon,
            "warmup": self.warmup,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "regime": self.regime,
            "delay": {
                "sim": self.delay_sim,
                "half_width": self.delay_half,
                "fluid": self.delay_fluid,
                "bound": self.delay_bound,
                "agrees": self.delay_agrees,
            },
            "blocking": {
                "sim": self.blocking_sim,
                "half_width": self.blocking_half,
                "fluid": self.blocking_fluid,
                "bound": self.blocking_bound,
                "agrees": self.blocking_agrees,
            },
            "mix_error": self.mix_error,
            "per_class": {k: dict(v) for k, v in self.per_class.items()},
        }


@dataclass(frozen=True)
class LadderReport:
    """The full ladder: one rung per population size, plus the gates."""

    rungs: tuple[RungReport, ...]
    delay_tol: float
    blocking_tol: float

    @property
    def mix_errors(self) -> list[float]:
        """Per-rung mean-field concentration errors, ladder order."""
        return [r.mix_error for r in self.rungs]

    @property
    def converged(self) -> bool:
        """Mean-field gate: the mix error shrinks up the whole ladder."""
        errors = self.mix_errors
        return all(b < a for a, b in zip(errors, errors[1:]))

    @property
    def all_within_bounds(self) -> bool:
        """Agreement gate: fluid matches DES on every rung."""
        return all(r.delay_agrees and r.blocking_agrees for r in self.rungs)

    def to_dict(self) -> dict:
        """JSON-ready ladder summary (uploaded as the CI artifact)."""
        return {
            "delay_tol": self.delay_tol,
            "blocking_tol": self.blocking_tol,
            "converged": self.converged,
            "all_within_bounds": self.all_within_bounds,
            "mix_errors": self.mix_errors,
            "rungs": [r.to_dict() for r in self.rungs],
        }

    def save_json(self, path: str | Path) -> Path:
        """Write the agreement-bounds artifact and return its path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def render(self) -> str:
        """Human-readable verdict table."""
        rows = []
        for r in self.rungs:
            rows.append(
                [
                    f"{r.num_clients:,}",
                    r.regime,
                    f"{r.delay_sim:.2f}±{r.delay_half:.2f}",
                    f"{r.delay_fluid:.2f}",
                    "ok" if r.delay_agrees else "FAIL",
                    f"{r.blocking_sim:.4f}±{r.blocking_half:.4f}",
                    f"{r.blocking_fluid:.4f}",
                    "ok" if r.blocking_agrees else "FAIL",
                    f"{r.mix_error:.5f}",
                    f"{r.elapsed_seconds:.1f}s",
                ]
            )
        table = render_table(
            [
                "N",
                "regime",
                "delay sim",
                "fluid",
                "ok",
                "blocking sim",
                "fluid",
                "ok",
                "mix err",
                "wall",
            ],
            rows,
        )
        gates = (
            f"agreement bounds: {'PASS' if self.all_within_bounds else 'FAIL'}  "
            f"(delay tol {self.delay_tol:.0%} rel, blocking tol "
            f"{self.blocking_tol:.3f} abs)\n"
            f"mean-field concentration (mix error monotone): "
            f"{'PASS' if self.converged else 'FAIL'}  {self.mix_errors}"
        )
        return f"{table}\n\n{gates}"


def n_ladder(
    populations: Sequence[int] = (1_000, 10_000, 100_000),
    per_client_rate: float = PER_CLIENT_RATE,
    total_bandwidth: float = LADDER_BANDWIDTH,
    num_runs: int = 3,
    horizon: float = 800.0,
    warmup_fraction: float = 0.1,
    base_seed: int = 0,
    n_jobs: int = 1,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    resilience=None,
    delay_tol: float = 0.2,
    blocking_tol: float = 0.06,
) -> LadderReport:
    """Climb the population ladder and grade every rung against the fluid model.

    Parameters
    ----------
    populations:
        Rung sizes, ascending.  Each rung keeps ``per_client_rate`` fixed
        so the aggregate load grows ∝ N (the mean-field scaling).
    num_runs, horizon, warmup_fraction, base_seed, n_jobs:
        Replication plan per rung, forwarded to
        :func:`~repro.sim.runner.run_replications`; rung ``i`` uses
        ``base_seed + i`` so rungs draw independent seed families.
    checkpoint_dir, resume, resilience:
        Crash-safe sharding: each rung checkpoints under its own
        ``n<N>/`` subdirectory and ``resume=True`` skips completed runs.
    delay_tol, blocking_tol:
        Agreement bounds: ``|sim − fluid| ≤ CI half-width +
        delay_tol·|fluid|`` for delay (relative) and ``... +
        blocking_tol`` for blocking (absolute).
    """
    if list(populations) != sorted(set(int(p) for p in populations)):
        raise ValueError(f"populations must be strictly ascending, got {populations}")
    rungs = []
    for index, num_clients in enumerate(populations):
        config = ladder_config(num_clients, per_client_rate, total_bandwidth)
        fluid: FluidPrediction = fluid_predict(config)
        warmup = warmup_fraction * horizon
        rung_dir = None if checkpoint_dir is None else Path(checkpoint_dir) / f"n{num_clients}"
        # A crash can leave earlier rungs checkpointed and later ones
        # untouched; resume only where a manifest actually exists so one
        # flag restarts the whole ladder.
        rung_resume = resume and rung_dir is not None and (
            rung_dir / "checkpoint.json"
        ).exists()
        # Operator-facing rung timing (the <5-minute acceptance target
        # at N=1e6), not simulated time — same audited category as the
        # CLI's experiment timer.
        started = time.perf_counter()  # reprolint: disable=no-wallclock
        result = run_replications(
            config,
            num_runs=num_runs,
            horizon=horizon,
            warmup=warmup,
            base_seed=base_seed + index,
            n_jobs=n_jobs,
            checkpoint_dir=rung_dir,
            resume=rung_resume,
            resilience=resilience,
            engine="population",
        )
        elapsed = time.perf_counter() - started  # reprolint: disable=no-wallclock

        names = config.class_names()
        fractions = config.build_population().class_fractions
        delay_sim, delay_half = result.overall_delay()
        blocking_values = [
            r.blocked_requests / max(r.blocked_requests + r.satisfied_requests, 1)
            for r in result.runs
        ]
        blocking_sim, blocking_half = _mean_half(blocking_values)

        shares_sim = _satisfied_shares(result, names)
        throughput = [fluid.per_class_throughput[n] for n in names]
        total_throughput = sum(throughput) or 1.0
        shares_fluid = [t / total_throughput for t in throughput]
        mix_error = max(abs(s - f) for s, f in zip(shares_sim, shares_fluid))

        per_class = {}
        for name, fraction, share_sim, share_fluid in zip(
            names, fractions, shares_sim, shares_fluid
        ):
            d, dh = result.delay(name)
            b, bh = result.blocking(name)
            per_class[name] = {
                "fraction": float(fraction),
                "delay_sim": d,
                "delay_half": dh,
                "delay_fluid": fluid.delay_of(name),
                "blocking_sim": b,
                "blocking_half": bh,
                "blocking_fluid": fluid.blocking_of(name),
                "share_sim": share_sim,
                "share_fluid": share_fluid,
            }

        rungs.append(
            RungReport(
                num_clients=int(num_clients),
                arrival_rate=config.arrival_rate,
                num_runs=num_runs,
                horizon=horizon,
                warmup=warmup,
                elapsed_seconds=elapsed,
                regime=fluid.regime,
                delay_sim=delay_sim,
                delay_half=delay_half,
                delay_fluid=fluid.overall_delay,
                delay_bound=delay_half + delay_tol * abs(fluid.overall_delay),
                blocking_sim=blocking_sim,
                blocking_half=blocking_half,
                blocking_fluid=fluid.overall_blocking,
                blocking_bound=blocking_half + blocking_tol,
                mix_error=mix_error,
                per_class=per_class,
            )
        )
    return LadderReport(rungs=tuple(rungs), delay_tol=delay_tol, blocking_tol=blocking_tol)


def n_ladder_report(scale: ExperimentScale = QUICK) -> str:
    """Registry runner: quick 3-rung ladder (FULL adds the 10⁶ rung)."""
    populations = (1_000, 10_000, 100_000)
    if scale.horizon >= 4_000:  # FULL-ish scales earn the million-client rung
        populations = populations + (1_000_000,)
    report = n_ladder(
        populations=populations,
        num_runs=max(scale.num_seeds, 3),
        horizon=800.0,
        n_jobs=scale.n_jobs,
    )
    return report.render()
