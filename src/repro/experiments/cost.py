"""Experiments E3/E4 — prioritized cost (Figs. 5–6).

The prioritized cost of class ``j`` is ``q_j · E[T_j]`` (§4.2.2).  Fig. 5
plots each class's cost against the cut-off ``K`` for two α values;
Fig. 6 plots the *total optimal* cost — minimised over ``K`` — against α
for several θ, showing cost falling as α decreases (priority influence
grows).
"""

from __future__ import annotations

from typing import Sequence

from ..sim.runner import run_replications
from .specs import DEFAULT_CUTOFFS, ExperimentScale, QUICK, paper_config
from .tables import FigureData

__all__ = ["cost_vs_cutoff", "optimal_cost_vs_alpha"]


def cost_vs_cutoff(
    alpha: float,
    theta: float = 0.60,
    cutoffs: Sequence[int] = DEFAULT_CUTOFFS,
    scale: ExperimentScale = QUICK,
) -> FigureData:
    """Per-class prioritized cost vs ``K`` (Fig. 5; paper uses θ = 0.60)."""
    fig = FigureData(
        title=f"Prioritized cost vs cutoff (alpha={alpha}, theta={theta})",
        x_label="K",
    )
    base = paper_config(theta=theta, alpha=alpha)
    class_names = base.class_names()
    curves: dict[str, list[float]] = {name: [] for name in class_names}
    totals: list[float] = []
    for k in cutoffs:
        result = run_replications(
            base.with_cutoff(int(k)),
            num_runs=scale.num_seeds,
            horizon=scale.horizon,
            warmup=scale.warmup,
            n_jobs=scale.n_jobs,
        )
        total = 0.0
        for name in class_names:
            cost = result.cost(name)[0]
            curves[name].append(cost)
            total += cost
        totals.append(total)
    for name in class_names:
        fig.add(f"Class-{name}", list(cutoffs), curves[name])
    fig.add("Total", list(cutoffs), totals)
    return fig


def optimal_cost_vs_alpha(
    thetas: Sequence[float] = (0.20, 0.60, 1.40),
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    cutoffs: Sequence[int] = DEFAULT_CUTOFFS,
    scale: ExperimentScale = QUICK,
) -> FigureData:
    """Total optimal prioritized cost vs α for several θ (Fig. 6).

    For every (θ, α) the cost is minimised over the ``K`` grid — the
    paper's "intelligent selection of the cut-off point".
    """
    fig = FigureData(
        title="Total optimal prioritized cost vs alpha",
        x_label="alpha",
    )
    for theta in thetas:
        optima: list[float] = []
        for alpha in alphas:
            base = paper_config(theta=float(theta), alpha=float(alpha))
            best = float("inf")
            for k in cutoffs:
                result = run_replications(
                    base.with_cutoff(int(k)),
                    num_runs=scale.num_seeds,
                    horizon=scale.horizon,
                    warmup=scale.warmup,
                    n_jobs=scale.n_jobs,
                )
                best = min(best, result.total_cost()[0])
            optima.append(best)
        fig.add(f"theta={theta}", list(alphas), optima)
    return fig
