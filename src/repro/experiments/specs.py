"""Shared experiment parameters (the paper's §5.1 assumptions).

Every experiment derives its configurations from :func:`paper_config` so
the §5.1 assumptions live in exactly one place.  ``quick`` variants trim
horizons/replications for test-suite and benchmark use; shapes survive,
error bars widen.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from ..core.config import HybridConfig

__all__ = [
    "paper_config",
    "ExperimentScale",
    "QUICK",
    "FULL",
    "PAPER_ALPHAS",
    "PAPER_THETAS_FIG",
    "DEFAULT_CUTOFFS",
]

#: α grid of Figures 3–4 (§5.2).
PAPER_ALPHAS: tuple[float, ...] = (0.0, 0.25, 0.50, 0.75, 1.0)

#: θ values plotted in the evaluation figures.
PAPER_THETAS_FIG: tuple[float, ...] = (0.20, 0.60, 1.0, 1.40)

#: Cut-off grid used by the delay/cost sweeps.
DEFAULT_CUTOFFS: tuple[int, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90)


def paper_config(theta: float = 0.60, alpha: float = 0.75, cutoff: int = 40) -> HybridConfig:
    """The §5.1 base system with the requested sweep parameters.

    D = 100 items, λ' = 5, lengths 1..5 (mean 2), three classes with
    priority ratio 3:2:1 and Zipf populations.
    """
    return HybridConfig(theta=theta, alpha=alpha, cutoff=cutoff)


@dataclass(frozen=True)
class ExperimentScale:
    """Execution-scale knobs shared by all experiments.

    Attributes
    ----------
    horizon:
        Simulated time per run (broadcast units).
    num_seeds:
        Independent replications per configuration.
    warmup_fraction:
        Leading fraction of the horizon excluded from statistics.
    n_jobs:
        Worker processes for the replications of each sweep point
        (``-1`` = all cores); results are identical for every value.
    """

    horizon: float
    num_seeds: int
    warmup_fraction: float = 0.1
    n_jobs: int = 1

    @property
    def warmup(self) -> float:
        """Absolute warm-up time."""
        return self.warmup_fraction * self.horizon

    def with_jobs(self, n_jobs: int) -> "ExperimentScale":
        """The same scale fanned out over ``n_jobs`` worker processes."""
        return dataclasses.replace(self, n_jobs=n_jobs)


#: Scale used by tests/benchmarks — seconds per experiment.
QUICK = ExperimentScale(horizon=1_000.0, num_seeds=1)

#: Scale used to regenerate EXPERIMENTS.md numbers.
FULL = ExperimentScale(horizon=8_000.0, num_seeds=3)
