"""Plain-text rendering of experiment output (tables and "figures").

The paper's figures are line charts; in a headless reproduction we emit
the underlying series as aligned text tables, one column per curve, so a
diff of two runs is meaningful and EXPERIMENTS.md can embed them
verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Series", "FigureData", "render_table"]


def _fmt(value: float, width: int = 10) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "nan".rjust(width)
    if isinstance(value, float) and math.isinf(value):
        return "inf".rjust(width)
    if isinstance(value, float):
        return f"{value:.3f}".rjust(width)
    return str(value).rjust(width)


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table with a header underline."""
    widths = [max(10, len(h)) for h in headers]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        lines.append("  ".join(_fmt(cell, w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """One curve: a label and aligned x/y vectors."""

    label: str
    x: list[float]
    y: list[float]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(f"series {self.label!r}: {len(self.x)} x vs {len(self.y)} y")


@dataclass
class FigureData:
    """A reproduced figure: common x-axis, one column per series.

    All series must share the x vector (standard for the paper's sweeps).
    """

    title: str
    x_label: str
    series: list[Series] = field(default_factory=list)

    def add(self, label: str, x: Sequence[float], y: Sequence[float]) -> None:
        """Append a curve."""
        self.series.append(Series(label=label, x=list(x), y=list(y)))

    def series_by_label(self, label: str) -> Series:
        """Look up a curve by its label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"no series labelled {label!r}")

    def render(self) -> str:
        """The figure as a text table (x column + one column per curve)."""
        if not self.series:
            return f"{self.title}\n(empty)"
        x = self.series[0].x
        for s in self.series:
            if s.x != x:
                raise ValueError(f"series {s.label!r} has a different x-axis")
        headers = [self.x_label, *(s.label for s in self.series)]
        rows = [
            [x[i], *(s.y[i] for s in self.series)] for i in range(len(x))
        ]
        return f"{self.title}\n{render_table(headers, rows)}"
