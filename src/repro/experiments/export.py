"""Machine-readable export of reproduced figures (JSON/CSV).

The text tables in :mod:`repro.experiments.tables` are for humans; this
module persists the same series for plotting pipelines and regression
diffing:

* :func:`figure_to_dict` / :func:`save_figure_json` — one JSON object
  per figure (title, x label, series);
* :func:`save_figure_csv` — one CSV with the x column and one column per
  series;
* :func:`export_all_figures` — regenerate and save every line-figure of
  the paper into a directory, stamped with a run manifest
  (:mod:`repro.obs.manifest`) recording scale, package versions and the
  produced files;
* :func:`save_timelines_json` — persist the windowed per-class QoS
  timelines (:mod:`repro.obs.timeline`) reconstructed from a trace.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Callable

from .compare import analytical_vs_simulation
from .cost import cost_vs_cutoff, optimal_cost_vs_alpha
from .delay import delay_vs_alpha, delay_vs_cutoff
from .blocking import blocking_vs_share
from .specs import ExperimentScale, QUICK
from .tables import FigureData

__all__ = [
    "figure_to_dict",
    "save_figure_json",
    "save_figure_csv",
    "save_timelines_json",
    "export_all_figures",
    "FIGURE_FACTORIES",
]

#: Factories regenerating each line-figure of the paper by id.
FIGURE_FACTORIES: dict[str, Callable[[ExperimentScale], list[FigureData]]] = {
    "fig3": lambda scale: [
        delay_vs_cutoff(alpha=0.0, theta=theta, scale=scale)
        for theta in (0.20, 0.60, 1.40)
    ],
    "fig4": lambda scale: [
        delay_vs_cutoff(alpha=1.0, theta=theta, scale=scale)
        for theta in (0.20, 0.60, 1.40)
    ],
    "alpha-sweep": lambda scale: [delay_vs_alpha(theta=0.60, scale=scale)],
    "fig5": lambda scale: [
        cost_vs_cutoff(alpha=0.25, theta=0.60, scale=scale),
        cost_vs_cutoff(alpha=0.75, theta=0.60, scale=scale),
    ],
    "fig6": lambda scale: [optimal_cost_vs_alpha(scale=scale)],
    "fig7": lambda scale: [analytical_vs_simulation(scale=scale)[0]],
    "blocking": lambda scale: [blocking_vs_share(scale=scale)],
}


def figure_to_dict(fig: FigureData) -> dict:
    """JSON-ready representation of a figure."""
    return {
        "title": fig.title,
        "x_label": fig.x_label,
        "series": [
            {"label": s.label, "x": list(s.x), "y": list(s.y)} for s in fig.series
        ],
    }


def save_figure_json(fig: FigureData, path: str | Path) -> Path:
    """Write one figure as a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(figure_to_dict(fig), indent=2))
    return path


def save_figure_csv(fig: FigureData, path: str | Path) -> Path:
    """Write one figure as a CSV (x column + one column per series)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not fig.series:
        raise ValueError(f"figure {fig.title!r} has no series")
    x = fig.series[0].x
    for s in fig.series:
        if s.x != x:
            raise ValueError(f"series {s.label!r} has a different x-axis")
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([fig.x_label, *(s.label for s in fig.series)])
        for i, xi in enumerate(x):
            writer.writerow([xi, *(s.y[i] for s in fig.series)])
    return path


def save_timelines_json(timelines, path: str | Path) -> Path:
    """Write :class:`~repro.obs.timeline.TraceTimelines` as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(timelines.to_dict(), indent=2))
    return path


def export_all_figures(
    out_dir: str | Path,
    scale: ExperimentScale = QUICK,
    formats: tuple[str, ...] = ("json", "csv"),
) -> list[Path]:
    """Regenerate every line-figure and save it under ``out_dir``.

    Files are named ``<figure-id>-<index>.<ext>``.  A ``manifest.json``
    recording the scale, package versions and the produced files is
    written alongside them.  Returns all written paths (manifest last).
    """
    from ..obs.manifest import build_manifest, write_manifest

    out = Path(out_dir)
    written: list[Path] = []
    for figure_id, factory in FIGURE_FACTORIES.items():
        for index, fig in enumerate(factory(scale)):
            stem = f"{figure_id}-{index}"
            if "json" in formats:
                written.append(save_figure_json(fig, out / f"{stem}.json"))
            if "csv" in formats:
                written.append(save_figure_csv(fig, out / f"{stem}.csv"))
    manifest = build_manifest(
        horizon=scale.horizon,
        extra={
            "kind": "figure-export",
            "scale": {
                "horizon": scale.horizon,
                "num_seeds": scale.num_seeds,
                "n_jobs": scale.n_jobs,
            },
            "files": [p.name for p in written],
        },
    )
    written.append(write_manifest(manifest, out / "manifest.json"))
    return written
