"""E14 — flash-crowd admission: overload control under a demand surge.

Drives the pull-only system (the regime of the degradation study, E13)
through a three-phase nonstationary workload — steady state, a flash
crowd that multiplies the aggregate request rate, then recovery — with
the class-aware overload controller
(:class:`~repro.sim.overload.OverloadController`) armed on the bounded
pull queue.  The controller caps lower-priority queue occupancy above a
threshold, so during the surge refusals concentrate on Class C while
Class A keeps near-full access to the queue.

The claim under test (the admission-control side of the paper's
differentiated-QoS story): **during the surge, Class A's blocking and
delay degrade strictly less than Class C's.**  Per-phase metrics come
from the event trace — each request is bucketed by the phase its
*generation time* falls in — and are aggregated across independent
replications with Student-t confidence half-widths.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, replace

from ..core import OverloadConfig
from ..core.faults import FaultConfig
from ..sim.runner import _mean_ci, spawn_seeds
from .specs import ExperimentScale, paper_config
from .tables import render_table

__all__ = ["SurgeSpec", "flash_crowd", "DEFAULT_SURGE_MULTIPLIER"]

#: How many times the steady-state arrival rate the flash crowd brings.
#: Chosen so the surge saturates the bounded queue without refusing so
#: much Class-C traffic that its surviving-delay statistic collapses to
#: the lucky few (survivorship censoring at higher multipliers).
DEFAULT_SURGE_MULTIPLIER = 3.0

#: Steady-state aggregate rate — the stable pull-only operating point of
#: the degradation study (ρ ≈ 0.6), so only the surge saturates.
BASE_RATE = 0.45

#: Pull-queue bound shared with E13.
QUEUE_CAPACITY = 20

#: Occupancy fraction above which lower-priority admissions are cut.
OVERLOAD_THRESHOLD = 0.4


@dataclass(frozen=True)
class SurgeSpec:
    """A piecewise-constant arrival-rate profile for a flash crowd.

    Attributes
    ----------
    starts:
        Absolute start time of each phase.  The first phase must start
        at 0 and starts must be strictly increasing — the phases tile
        the horizon in order.
    rates:
        Aggregate arrival rate during each phase.
    labels:
        Human-readable phase names for the report.
    """

    starts: tuple[float, ...] = ()
    rates: tuple[float, ...] = ()
    labels: tuple[str, ...] = ("before", "surge", "after")

    def __post_init__(self) -> None:
        if not self.starts:
            raise ValueError("a surge needs at least one phase")
        if not (len(self.starts) == len(self.rates) == len(self.labels)):
            raise ValueError(
                f"starts, rates and labels must align: got {len(self.starts)} "
                f"starts, {len(self.rates)} rates, {len(self.labels)} labels"
            )
        if self.starts[0] != 0.0:
            raise ValueError(
                f"the first surge phase must start at t=0 (it defines the "
                f"steady state), got start={self.starts[0]}"
            )
        for i in range(1, len(self.starts)):
            if self.starts[i] <= self.starts[i - 1]:
                raise ValueError(
                    f"surge phase start times must be strictly increasing: "
                    f"phase {i} ({self.labels[i]!r}) starts at {self.starts[i]} "
                    f"but phase {i - 1} ({self.labels[i - 1]!r}) starts at "
                    f"{self.starts[i - 1]}; reorder the phases or drop the "
                    f"duplicate"
                )
        for label, rate in zip(self.labels, self.rates):
            if not (math.isfinite(rate) and rate > 0):
                raise ValueError(
                    f"phase {label!r} needs a positive finite arrival rate, "
                    f"got {rate!r}"
                )

    @classmethod
    def flash(
        cls,
        horizon: float,
        base_rate: float = BASE_RATE,
        multiplier: float = DEFAULT_SURGE_MULTIPLIER,
    ) -> "SurgeSpec":
        """Canonical before/surge/after profile over ``horizon``.

        The surge occupies the middle fifth of the horizon at
        ``multiplier ×`` the steady-state rate.
        """
        return cls(
            starts=(0.0, 0.4 * horizon, 0.6 * horizon),
            rates=(base_rate, multiplier * base_rate, base_rate),
        )

    def workload_phases(self, horizon: float, theta: float):
        """Materialise the profile as :class:`WorkloadPhase` objects.

        The phases exactly tile ``[0, horizon]`` (no cycling), all with
        the same item popularity law ``theta`` — a flash crowd changes
        *how much* is asked for, not *what*.
        """
        from ..workload.nonstationary import WorkloadPhase

        if horizon <= self.starts[-1]:
            raise ValueError(
                f"horizon {horizon} ends before the last surge phase starts "
                f"({self.starts[-1]}); extend the horizon or shift the phases"
            )
        ends = [*self.starts[1:], float(horizon)]
        return [
            WorkloadPhase(duration=end - start, theta=theta, rate=rate)
            for start, end, rate in zip(self.starts, ends, self.rates)
        ]

    def phase_index(self, t: float) -> int:
        """Index of the phase that contains time ``t``."""
        return max(0, bisect_right(self.starts, t) - 1)


def _flash_run(config, spec: SurgeSpec, seed: int, horizon: float, warmup: float):
    """One replication; returns per-(phase, class) counts from the trace.

    Result: ``stats[phase_label][class_name] = {"arrivals": int,
    "refused": int, "delays": [float, ...]}`` over requests generated at
    or after ``warmup``, plus the run's
    :class:`~repro.sim.metrics.SimulationResult`.
    """
    from ..des import RandomStreams
    from ..obs import TraceRecorder
    from ..obs.events import (
        RequestArrived,
        RequestBlocked,
        RequestReneged,
        RequestSatisfied,
        RequestShed,
    )
    from ..sim.system import HybridSystem
    from ..workload.nonstationary import PhasedArrivalProcess

    # Build workload pieces exactly as HybridSystem would, then swap in
    # the surging demand law (same wiring as the adaptive experiment).
    streams = RandomStreams(seed=seed)
    arrivals = PhasedArrivalProcess(
        catalog=config.build_catalog(),
        population=config.build_population(),
        phases=spec.workload_phases(horizon, theta=config.theta),
        default_rate=config.arrival_rate,
        rng=streams.stream("arrivals"),
    )
    tracer = TraceRecorder(gamma_snapshots=False)
    system = HybridSystem(
        config, seed=seed, warmup=warmup, arrivals=arrivals, tracer=tracer
    )
    result = system.run(horizon)
    class_names = config.class_names()
    stats: dict = {
        label: {
            name: {"arrivals": 0, "refused": 0, "delays": []}
            for name in class_names
        }
        for label in spec.labels
    }
    where: dict[int, tuple[str, str]] = {}  # req -> (phase label, class name)
    for event in tracer.trace().events:
        if isinstance(event, RequestArrived):
            if event.gen_time < warmup:
                continue
            label = spec.labels[spec.phase_index(event.gen_time)]
            name = class_names[event.class_rank]
            where[event.req] = (label, name)
            stats[label][name]["arrivals"] += 1
        elif isinstance(event, (RequestBlocked, RequestShed, RequestReneged)):
            if event.req in where:
                label, name = where[event.req]
                stats[label][name]["refused"] += 1
        elif isinstance(event, RequestSatisfied):
            if event.req in where:
                label, name = where[event.req]
                stats[label][name]["delays"].append(event.delay)
    return stats, result


def flash_crowd(
    scale: ExperimentScale,
    spec: SurgeSpec | None = None,
    threshold: float = OVERLOAD_THRESHOLD,
    theta: float = 0.20,
) -> str:
    """Run the flash-crowd study and render the per-phase report.

    Uses the degradation study's stable pull-only operating point
    (``K = 0``, ``alpha = 0``, low skew) so the surge — not the steady
    state — is what saturates the bounded pull queue and triggers the
    overload controller.
    """
    horizon = max(scale.horizon, 1_000.0)
    warmup = scale.warmup_fraction * horizon
    if spec is None:
        spec = SurgeSpec.flash(horizon)
    config = replace(paper_config(theta=theta, alpha=0.0, cutoff=0), arrival_rate=BASE_RATE)
    config = config.with_faults(
        FaultConfig(
            queue_capacity=QUEUE_CAPACITY, shedding_policy="drop-lowest-priority"
        )
    ).with_overload(OverloadConfig(threshold=threshold))
    class_names = config.class_names()
    seeds = spawn_seeds(23, scale.num_seeds)
    per_seed = []
    rejections = 0
    for seed in seeds:
        stats, result = _flash_run(config, spec, seed, horizon, warmup)
        per_seed.append(stats)
        rejections += result.overload_rejections

    def across_seeds(label: str, name: str, fn) -> tuple[float, float]:
        return _mean_ci([fn(s[label][name]) for s in per_seed])

    def blocking_of(cell) -> float:
        return cell["refused"] / cell["arrivals"] if cell["arrivals"] else math.nan

    def delay_of(cell) -> float:
        return (
            sum(cell["delays"]) / len(cell["delays"]) if cell["delays"] else math.nan
        )

    lines = [
        f"Flash-crowd admission (pull-only K=0, capacity={QUEUE_CAPACITY}, "
        f"overload threshold={threshold}, surge x{spec.rates[1] / spec.rates[0]:g} "
        f"over [{spec.starts[1]:g}, {spec.starts[2]:g}), "
        f"{scale.num_seeds} replication(s))"
    ]
    surge_label = spec.labels[1]
    blocking: dict[tuple[str, str], tuple[float, float]] = {}
    delay: dict[tuple[str, str], tuple[float, float]] = {}
    for label in spec.labels:
        rows = []
        for name in class_names:
            arrivals = sum(s[label][name]["arrivals"] for s in per_seed)
            b, bh = across_seeds(label, name, blocking_of)
            d, dh = across_seeds(label, name, delay_of)
            blocking[label, name] = (b, bh)
            delay[label, name] = (d, dh)
            rows.append(
                [
                    name,
                    arrivals,
                    f"{b:6.2%} ± {0.0 if math.isnan(bh) else bh:.2%}",
                    f"{d:7.2f} ± {0.0 if math.isnan(dh) else dh:.2f}",
                ]
            )
        lines.append(
            f"\nphase {label!r}:\n"
            + render_table(["class", "arrivals", "blocking", "delay"], rows)
        )
    premium, best_effort = class_names[0], class_names[-1]
    surge_block_gap = (
        blocking[surge_label, best_effort][0] - blocking[surge_label, premium][0]
    )
    degrade = {
        name: delay[surge_label, name][0] / delay[spec.labels[0], name][0]
        for name in (premium, best_effort)
    }
    lines.append(
        f"\noverload rejections across runs: {rejections} "
        f"(all absorbed below Class {premium}'s admission limit)"
    )
    lines.append(
        f"surge blocking: Class {premium} "
        f"{blocking[surge_label, premium][0]:.2%} < Class {best_effort} "
        f"{blocking[surge_label, best_effort][0]:.2%}: "
        f"{'yes' if surge_block_gap > 0 else 'NO'}"
    )
    lines.append(
        f"surge delay degradation (surge/before): Class {premium} "
        f"{degrade[premium]:.2f}x < Class {best_effort} "
        f"{degrade[best_effort]:.2f}x: "
        f"{'yes' if degrade[premium] < degrade[best_effort] else 'NO'}"
    )
    return "\n".join(lines)
