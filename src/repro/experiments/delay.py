"""Experiments E1/E2/E2b — per-class delay vs cut-off point (Figs. 3–4).

For each cut-off ``K`` the simulator runs the full hybrid system and the
figure reports each class's mean expected delay.  Figure 3 is ``α = 0``
(pure priority), Figure 4 is ``α = 1`` (pure stretch); the text also
discusses the intermediate α values, covered by :func:`delay_vs_alpha`.

Expected shapes (paper §5.2):

* Class-A delay lowest, Class-C highest — except at ``α = 1`` where
  priorities are ignored and the curves collapse;
* delay grows sharply at small ``K`` (the degenerate, overloaded hybrid).
"""

from __future__ import annotations

from typing import Sequence

from ..sim.runner import run_replications
from .specs import DEFAULT_CUTOFFS, ExperimentScale, QUICK, paper_config
from .tables import FigureData

__all__ = ["delay_vs_cutoff", "delay_vs_alpha"]


def delay_vs_cutoff(
    alpha: float,
    theta: float = 0.60,
    cutoffs: Sequence[int] = DEFAULT_CUTOFFS,
    scale: ExperimentScale = QUICK,
    metric: str = "total",
) -> FigureData:
    """Per-class delay vs ``K`` at fixed ``α`` and ``θ`` (Figs. 3–4).

    Parameters
    ----------
    alpha, theta:
        Sweep point of the figure.
    cutoffs:
        ``K`` grid.
    scale:
        Horizon/replication scale.
    metric:
        ``"total"`` for the client-perceived delay (push wait included) or
        ``"pull"`` for the pull-side delay only — the quantity whose
        magnitudes correspond to the paper's reported bands.
    """
    if metric not in ("total", "pull"):
        raise ValueError(f"unknown metric {metric!r}")
    fig = FigureData(
        title=f"Delay vs cutoff (alpha={alpha}, theta={theta}, metric={metric})",
        x_label="K",
    )
    base = paper_config(theta=theta, alpha=alpha)
    class_names = base.class_names()
    curves: dict[str, list[float]] = {name: [] for name in class_names}
    for k in cutoffs:
        result = run_replications(
            base.with_cutoff(int(k)),
            num_runs=scale.num_seeds,
            horizon=scale.horizon,
            warmup=scale.warmup,
            n_jobs=scale.n_jobs,
        )
        for name in class_names:
            value = result.delay(name)[0] if metric == "total" else result.pull_delay(name)[0]
            curves[name].append(value)
    for name in class_names:
        fig.add(f"Class-{name}", list(cutoffs), curves[name])
    return fig


def delay_vs_alpha(
    theta: float = 0.60,
    alphas: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    cutoff: int = 40,
    scale: ExperimentScale = QUICK,
) -> FigureData:
    """Per-class delay vs ``α`` at fixed ``K`` (the Figs. 3–4 text sweep)."""
    fig = FigureData(
        title=f"Delay vs alpha (K={cutoff}, theta={theta})",
        x_label="alpha",
    )
    base = paper_config(theta=theta, cutoff=cutoff)
    class_names = base.class_names()
    curves: dict[str, list[float]] = {name: [] for name in class_names}
    for alpha in alphas:
        result = run_replications(
            base.with_alpha(float(alpha)),
            num_runs=scale.num_seeds,
            horizon=scale.horizon,
            warmup=scale.warmup,
            n_jobs=scale.n_jobs,
        )
        for name in class_names:
            curves[name].append(result.delay(name)[0])
    for name in class_names:
        fig.add(f"Class-{name}", list(alphas), curves[name])
    return fig
