"""E14 — adaptive control: closed-loop SLO retuning vs static tuning.

Two scenarios stress the :mod:`repro.control` plane against the best a
*static* configuration can do, all three contenders measured by the same
instrument — a passive :class:`~repro.control.WindowRecorder` whose
windows are scored with :func:`~repro.control.find_violations`, the
controller's own violation predicate:

**Drift** — a regime change no single knob state survives: a hot
flash-audience phase (Zipf θ=1.4, high rate — a small push set is
optimal) hands over to a dispersed phase whose popularity *rotates* onto
a different hot set (the static push set goes stale; pure pull is
optimal).  Contenders:

* *static-optimal* — the best static candidate for the deployment-time
  (pre-drift) regime, i.e. what an operator tunes offline before the
  drift happens (selected on a pilot seed independent of the
  evaluation seeds);
* *oracle* — per phase, the best static candidate for that phase alone
  (an upper bound no causal controller can see);
* *closed-loop* — the static-optimal start retuned online by
  :class:`~repro.control.SLOController` against the declared SLOs.

A phase "meets" the SLO when the *phase-pooled* window statistics
(request-weighted across every window in the scored interval) satisfy
:func:`~repro.control.find_violations` — single windows are too noisy
at this load for a per-window verdict, and pooling is exactly how an
operator audits an SLO over a reporting period.  The post-drift
interval starts after a fixed adaptation grace period (identical for
every contender) so all three are scored on the settled regime.

The claim under test: **no static candidate meets the SLOs in both
phases, and the closed loop does** — it rides the phase-1 optimum, then
walks the cutoff down to pull-only when the rotation lands.

**Flash-crowd + loss** — a 3× arrival surge over a bursty lossy downlink
(Gilbert–Elliott).  Here adaptation cannot beat the surge; the claim is
a *robustness floor*: with hysteresis, guardrails and the failsafe, the
closed loop is **never worse than the static baseline** (per-class delay
and blocking CIs overlap or favor the closed loop).

Every closed-loop run records a trace and must pass the
``repro trace validate`` reconfiguration audit (seq continuity, knob
chaining, monotone shares, failsafe protocol) — the verdict table
reports the audited count.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Iterable, Optional

from ..control import (
    ClassSLO,
    ControlSettings,
    SLOSpec,
    WindowObservation,
    WindowRecorder,
    build_controlled_system,
    find_violations,
)
from ..core.faults import FaultConfig
from ..sim.runner import _mean_ci, spawn_seeds
from .flash_crowd import SurgeSpec
from .specs import ExperimentScale, paper_config
from .tables import render_table

__all__ = ["adaptive_control", "DRIFT_SLO", "FLASH_SLO"]

#: Popularity skew of the drift scenario (both phases; the *rotation*
#: drifts, not the skew).
DRIFT_THETA = 1.40

#: Aggregate arrival rates of the two drift phases: a hot crowd, then a
#: smaller audience with rotated interests.
DRIFT_RATES = (20.0, 5.0)

#: Popularity rotation of the second phase — the static push set covers
#: almost none of the rotated demand.
DRIFT_ROTATE = 50

#: Static cutoff candidates swept for the static-optimal and oracle
#: contenders (baseline α and shares).
DRIFT_CANDIDATES = (0, 5, 10, 25, 40)

#: Seed of the selection sweep — disjoint from the evaluation seeds so
#: candidate selection cannot overfit the evaluated replications.
SELECTION_SEED = 104729

#: Control windows per run; the window width is ``horizon / N`` so the
#: hysteresis tuning transfers across scales.
NUM_WINDOWS = 40

#: Fraction of the post-drift phase granted as adaptation grace before
#: scoring starts.  With ``engage_windows=3`` and a 2-window cooldown
#: the controller needs ~6 windows (30% of the phase) to walk the
#: cutoff 10 → 5 → 0; 40% leaves a safety margin.  The same interval is
#: excluded for *every* contender, including the static ones.
GRACE_FRACTION = 0.4

#: Drift-scenario SLOs.  Tuned to the regime structure: Class A's delay
#: ceiling excludes pull-only (K=0) in the hot phase (pooled A delay
#: ~72 vs ~54-57 for K∈{5,10,25}) and every non-trivial push set in the
#: rotated phase (pooled A delay ≥ 90 vs ~62 at K=0); Class C is
#: best-effort (unconstrained).  Blocking stays negligible in both
#: regimes, so the drift spec constrains delay only — the flash
#: scenario exercises the blocking targets.
DRIFT_SLO = SLOSpec(
    targets=(
        ("A", ClassSLO(delay_mean=68.0)),
        ("B", ClassSLO(delay_mean=78.0)),
        ("C", ClassSLO()),
    )
)

#: Flash-crowd scenario SLOs (the §5.1 operating point misses them only
#: during the surge; the floor claim is comparative, not absolute).
FLASH_SLO = SLOSpec(
    targets=(
        ("A", ClassSLO(delay_mean=110.0, blocking=0.02)),
        ("B", ClassSLO(delay_mean=125.0, blocking=0.06)),
        ("C", ClassSLO()),
    )
)

#: Surge multiplier and downlink fault of the flash scenario.
FLASH_MULTIPLIER = 3.0
FLASH_LOSS = FaultConfig(downlink_loss=0.08, downlink_mean_burst=4.0)

#: Shared controller tuning: engage after 3 consecutive violating
#: windows (single windows are noisy at this load), 2-window cooldown
#: between moves, and a slow release — a sustained regime change must
#: not bait the controller into relaxing back into violation.
CONTROL_SETTINGS = ControlSettings(
    engage_windows=3, release_windows=16, cooldown_windows=2
)


def _drift_phases(horizon: float, rotated_only: Optional[bool] = None) -> list:
    """The drift workload, or one of its regimes as a stationary run."""
    from ..workload.nonstationary import WorkloadPhase

    hot = WorkloadPhase(
        duration=horizon / 2, theta=DRIFT_THETA, rate=DRIFT_RATES[0]
    )
    rotated = WorkloadPhase(
        duration=horizon / 2,
        theta=DRIFT_THETA,
        rate=DRIFT_RATES[1],
        rotate=DRIFT_ROTATE,
    )
    if rotated_only is None:
        return [hot, rotated]
    phase = rotated if rotated_only else hot
    return [replace(phase, duration=horizon)]


def _arrivals(config, phases, seed: int):
    """Phased arrivals wired exactly as :class:`HybridSystem` would."""
    from ..des import RandomStreams
    from ..workload.nonstationary import PhasedArrivalProcess

    streams = RandomStreams(seed=seed)
    return PhasedArrivalProcess(
        catalog=config.build_catalog(),
        population=config.build_population(),
        phases=phases,
        default_rate=config.arrival_rate,
        rng=streams.stream("arrivals"),
    )


def _attainment(
    observations: Iterable[WindowObservation],
    spec: SLOSpec,
    start: float,
    end: float = math.inf,
) -> float:
    """Fraction of windows ending in ``(start, end]`` with zero violations."""
    windows = [o for o in observations if start < o.time <= end]
    if not windows:
        return math.nan
    met = sum(1 for o in windows if not find_violations(spec, o))
    return met / len(windows)


def _pool(
    observations: Iterable[WindowObservation],
    start: float,
    end: float = math.inf,
) -> Optional[WindowObservation]:
    """Pool the windows ending in ``(start, end]`` into one observation.

    Delay means are satisfied-request weighted (exactly the aggregate a
    single wide window would have measured); the pooled ``delay_p95`` is
    a satisfied-weighted mean of the window estimates — approximate, and
    only meaningful to specs that constrain p95.
    """
    from ..control import ClassWindow

    windows = [o for o in observations if start < o.time <= end]
    if not windows:
        return None
    names = [name for name, _ in windows[0].classes]
    pooled = []
    for name in names:
        cells = [o.for_class(name) for o in windows]
        arrivals = sum(c.arrivals for c in cells)
        satisfied = sum(c.satisfied for c in cells)
        blocked = sum(c.blocked for c in cells)
        if satisfied > 0:
            delay_mean = (
                sum(c.delay_mean * c.satisfied for c in cells if c.satisfied > 0)
                / satisfied
            )
            p95_mass = sum(
                c.satisfied for c in cells if math.isfinite(c.delay_p95)
            )
            delay_p95 = (
                sum(
                    c.delay_p95 * c.satisfied
                    for c in cells
                    if math.isfinite(c.delay_p95)
                )
                / p95_mass
                if p95_mass
                else math.nan
            )
        else:
            delay_mean = math.nan
            delay_p95 = math.nan
        blocking = blocked / arrivals if arrivals else 0.0
        pooled.append(
            (
                name,
                ClassWindow(
                    arrivals=arrivals,
                    satisfied=satisfied,
                    blocked=blocked,
                    delay_mean=delay_mean,
                    delay_p95=delay_p95,
                    blocking=blocking,
                ),
            )
        )
    return WindowObservation(
        window=len(windows), time=windows[-1].time, classes=tuple(pooled)
    )


def _phase_report(
    observations: Iterable[WindowObservation],
    spec: SLOSpec,
    start: float,
    end: float = math.inf,
) -> tuple[bool, dict[str, float]]:
    """(meets, pooled per-class delay) for the interval ``(start, end]``."""
    pooled = _pool(observations, start, end)
    if pooled is None:
        return False, {}
    meets = not find_violations(spec, pooled)
    delays = {name: cell.delay_mean for name, cell in pooled.classes}
    return meets, delays


def _majority(count: int, total: int) -> bool:
    """At least half of ``total`` replications (all of them when N=1)."""
    return total > 0 and 2 * count >= total


def _static_run(config, phases, seed: int, horizon: float, warmup: float):
    """One uncontrolled run with the shared measurement instrument."""
    from ..sim.system import HybridSystem

    system = HybridSystem(
        config,
        seed=seed,
        warmup=warmup,
        arrivals=_arrivals(config, phases, seed),
    )
    recorder = WindowRecorder(system, window=horizon / NUM_WINDOWS)
    result = system.run(horizon)
    return result, recorder.observations


def _controlled_run(config, slo, phases, seed: int, horizon: float, warmup: float):
    """One closed-loop run; returns (result, windows, loop, audit report)."""
    from ..obs import TraceRecorder
    from ..obs.validate import TraceValidator

    tracer = TraceRecorder(gamma_snapshots=False)
    system, loop = build_controlled_system(
        config,
        slo,
        seed=seed,
        warmup=warmup,
        window=horizon / NUM_WINDOWS,
        settings=CONTROL_SETTINGS,
        tracer=tracer,
        arrivals=_arrivals(config, phases, seed),
    )
    recorder = WindowRecorder(system, window=horizon / NUM_WINDOWS)
    result = system.run(horizon)
    report = TraceValidator(tracer.trace()).validate(strict=False)
    return result, recorder.observations, loop, report


def _fmt_ci(pair: tuple[float, float]) -> str:
    mean, half = pair
    return f"{mean:7.2f} ± {0.0 if math.isnan(half) else half:.2f}"


def _fmt_frac(value: float) -> str:
    return "  n/a" if math.isnan(value) else f"{value:5.0%}"


def _verdict(flag: bool) -> str:
    return "yes" if flag else "NO"


def _drift_scenario(scale: ExperimentScale, horizon: float, warmup: float) -> list[str]:
    switch = horizon / 2
    tail = switch + GRACE_FRACTION * (horizon - switch)
    base = replace(
        paper_config(theta=DRIFT_THETA, cutoff=DRIFT_CANDIDATES[0]),
        arrival_rate=DRIFT_RATES[0],
    )
    candidates = {k: replace(base, cutoff=k) for k in DRIFT_CANDIDATES}

    # -- selection sweep (pilot seed, never evaluated) ------------------------
    # Per-phase stationary runs per candidate.  The static-optimal is the
    # pre-drift (hot) winner — what an operator tunes before the drift —
    # and the oracle picks each phase's winner separately.
    sweep: dict[int, dict[str, object]] = {}
    for k, config in candidates.items():
        row: dict[str, object] = {}
        for label, rotated in (("hot", False), ("rotated", True)):
            _, phase_windows = _static_run(
                config,
                _drift_phases(horizon, rotated_only=rotated),
                SELECTION_SEED,
                horizon,
                warmup,
            )
            meets, delays = _phase_report(phase_windows, DRIFT_SLO, warmup)
            row[label] = meets
            row[f"{label}_delay"] = delays.get("A", math.nan)
        sweep[k] = row

    def best(label: str) -> int:
        def rank(k: int) -> tuple[int, float]:
            delay = sweep[k][f"{label}_delay"]
            assert isinstance(delay, float)
            return (0 if sweep[k][label] else 1, math.inf if math.isnan(delay) else delay)

        return min(sweep, key=rank)

    static_k = best("hot")
    oracle_k = {"hot": static_k, "rotated": best("rotated")}
    no_static_meets_both = not any(
        row["hot"] and row["rotated"] for row in sweep.values()
    )

    # -- evaluation replications ----------------------------------------------
    seeds = spawn_seeds(271, scale.num_seeds)
    rows: dict[str, dict[str, list[float]]] = {
        name: {"pre": [], "post": [], "A": [], "B": []}
        for name in ("static-optimal", "oracle", "closed-loop")
    }
    reconfigs = 0
    audits_ok = 0
    audit_runs = 0
    degraded_runs = 0
    for seed in seeds:
        _, windows = _static_run(
            candidates[static_k], _drift_phases(horizon), seed, horizon, warmup
        )
        cell = rows["static-optimal"]
        pre_meets, _ = _phase_report(windows, DRIFT_SLO, warmup, switch)
        post_meets, post_delays = _phase_report(windows, DRIFT_SLO, tail)
        cell["pre"].append(1.0 if pre_meets else 0.0)
        cell["post"].append(1.0 if post_meets else 0.0)
        cell["A"].append(post_delays.get("A", math.nan))
        cell["B"].append(post_delays.get("B", math.nan))

        # Oracle: each phase run stationary at its own winner, scored on
        # the same intervals as the drifting runs.
        cell = rows["oracle"]
        for label, rotated in (("hot", False), ("rotated", True)):
            _, phase_windows = _static_run(
                candidates[oracle_k[label]],
                _drift_phases(horizon, rotated_only=rotated),
                seed,
                horizon,
                warmup,
            )
            if label == "hot":
                meets, _ = _phase_report(phase_windows, DRIFT_SLO, warmup, switch)
                cell["pre"].append(1.0 if meets else 0.0)
            else:
                meets, delays = _phase_report(phase_windows, DRIFT_SLO, tail)
                cell["post"].append(1.0 if meets else 0.0)
                cell["A"].append(delays.get("A", math.nan))
                cell["B"].append(delays.get("B", math.nan))

        _, windows, loop, report = _controlled_run(
            candidates[static_k], DRIFT_SLO, _drift_phases(horizon), seed, horizon, warmup
        )
        cell = rows["closed-loop"]
        pre_meets, _ = _phase_report(windows, DRIFT_SLO, warmup, switch)
        post_meets, post_delays = _phase_report(windows, DRIFT_SLO, tail)
        cell["pre"].append(1.0 if pre_meets else 0.0)
        cell["post"].append(1.0 if post_meets else 0.0)
        cell["A"].append(post_delays.get("A", math.nan))
        cell["B"].append(post_delays.get("B", math.nan))
        reconfigs += loop.seq
        audit_runs += 1
        audits_ok += 1 if report.ok else 0
        degraded_runs += 1 if loop.controller.degraded else 0

    # -- report ----------------------------------------------------------------
    num = len(seeds)
    lines = [
        f"Drift scenario (theta={DRIFT_THETA}, rate {DRIFT_RATES[0]:g} -> "
        f"{DRIFT_RATES[1]:g} with popularity rotated by {DRIFT_ROTATE} at "
        f"t={switch:g}; SLO: A delay<={DRIFT_SLO.for_class('A').delay_mean:g}, "
        f"B delay<={DRIFT_SLO.for_class('B').delay_mean:g}; phase-pooled "
        f"scoring, post-drift scored after t={tail:g}; "
        f"{num} replication(s))",
        "",
        "candidate sweep (selection seed): phase-pooled class-A delay and SLO",
    ]
    sweep_rows = []
    for k in DRIFT_CANDIDATES:
        row = sweep[k]
        sweep_rows.append(
            [
                f"K={k}",
                f"{row['hot_delay']:7.1f}",
                "meets" if row["hot"] else "misses",
                f"{row['rotated_delay']:7.1f}",
                "meets" if row["rotated"] else "misses",
            ]
        )
    lines.append(
        render_table(
            ["candidate", "hot A delay", "hot SLO", "rotated A delay", "rotated SLO"],
            sweep_rows,
        )
    )
    lines.append(
        f"static-optimal (pre-drift winner): K={static_k}; oracle: "
        f"K={oracle_k['hot']} (hot) / K={oracle_k['rotated']} (rotated)"
    )
    lines.append("")
    met = {
        name: {key: int(sum(cells[key])) for key in ("pre", "post")}
        for name, cells in rows.items()
    }
    mean_of = {
        name: {key: _mean_ci(cells[key]) for key in ("A", "B")}
        for name, cells in rows.items()
    }
    table_rows = []
    for name in rows:
        table_rows.append(
            [
                name,
                f"{met[name]['pre']}/{num}",
                f"{met[name]['post']}/{num}",
                _fmt_ci(mean_of[name]["A"]),
                _fmt_ci(mean_of[name]["B"]),
            ]
        )
    lines.append(
        render_table(
            [
                "contender",
                "pre-drift met",
                "post-drift met",
                "post A delay",
                "post B delay",
            ],
            table_rows,
        )
    )
    closed_ok = _majority(met["closed-loop"]["pre"], num) and _majority(
        met["closed-loop"]["post"], num
    )
    static_misses = not _majority(met["static-optimal"]["post"], num)
    lines.append("")
    lines.append(
        f"no static candidate meets the SLO in both regimes: "
        f"{_verdict(no_static_meets_both)}"
    )
    lines.append(
        f"closed-loop meets both phases (majority of replications): "
        f"{_verdict(closed_ok)}"
    )
    lines.append(
        f"static-optimal misses post-drift "
        f"({met['static-optimal']['post']}/{num}) while closed-loop meets "
        f"({met['closed-loop']['post']}/{num}): "
        f"{_verdict(static_misses and _majority(met['closed-loop']['post'], num))}"
    )
    lines.append(
        f"reconfiguration audit: {reconfigs} change(s) across {audit_runs} "
        f"run(s), all traces pass: {_verdict(audits_ok == audit_runs)}"
        + (f"  [{degraded_runs} run(s) ended degraded]" if degraded_runs else "")
    )
    return lines


def _flash_scenario(scale: ExperimentScale, horizon: float, warmup: float) -> list[str]:
    config = paper_config(theta=0.60, cutoff=40).with_faults(FLASH_LOSS)
    spec = SurgeSpec.flash(
        horizon, base_rate=config.arrival_rate, multiplier=FLASH_MULTIPLIER
    )
    phases = spec.workload_phases(horizon, theta=config.theta)
    class_names = config.class_names()
    seeds = spawn_seeds(523, scale.num_seeds)
    metrics: dict[str, dict[str, list[float]]] = {
        name: {"attain": [], **{f"delay:{c}": [] for c in class_names},
               **{f"block:{c}": [] for c in class_names}}
        for name in ("static", "closed-loop")
    }
    reconfigs = 0
    audits_ok = 0
    audit_runs = 0
    for seed in seeds:
        static_result, static_windows = _static_run(
            config, phases, seed, horizon, warmup
        )
        closed_result, closed_windows, loop, report = _controlled_run(
            config, FLASH_SLO, phases, seed, horizon, warmup
        )
        reconfigs += loop.seq
        audit_runs += 1
        audits_ok += 1 if report.ok else 0
        for name, result, windows in (
            ("static", static_result, static_windows),
            ("closed-loop", closed_result, closed_windows),
        ):
            metrics[name]["attain"].append(_attainment(windows, FLASH_SLO, warmup))
            for c in class_names:
                metrics[name][f"delay:{c}"].append(result.per_class_delay[c])
                metrics[name][f"block:{c}"].append(result.per_class_blocking[c])

    summary = {
        name: {key: _mean_ci(values) for key, values in cells.items()}
        for name, cells in metrics.items()
    }

    def never_worse(key: str) -> bool:
        """Closed-loop mean within the combined CI of (or below) static."""
        s_mean, s_half = summary["static"][key]
        c_mean, c_half = summary["closed-loop"][key]
        slack = (0.0 if math.isnan(s_half) else s_half) + (
            0.0 if math.isnan(c_half) else c_half
        )
        return c_mean <= s_mean + slack

    lines = [
        f"Flash-crowd + loss scenario (surge x{FLASH_MULTIPLIER:g} over "
        f"[{spec.starts[1]:g}, {spec.starts[2]:g}), downlink loss "
        f"{FLASH_LOSS.downlink_loss:.0%} mean burst "
        f"{FLASH_LOSS.downlink_mean_burst:g}; {scale.num_seeds} replication(s))",
        "",
    ]
    table_rows = []
    for name in ("static", "closed-loop"):
        cells = summary[name]
        table_rows.append(
            [
                name,
                _fmt_frac(cells["attain"][0]),
                *(_fmt_ci(cells[f"delay:{c}"]) for c in class_names),
            ]
        )
    lines.append(
        render_table(
            ["contender", "SLO met", *(f"{c} delay" for c in class_names)],
            table_rows,
        )
    )
    floor = all(
        never_worse(f"{kind}:{c}") for kind in ("delay", "block") for c in class_names
    ) and never_worse_attainment(summary)
    lines.append("")
    lines.append(
        "closed-loop never worse than static (per-class delay+blocking and "
        f"attainment, CI overlap): {_verdict(floor)}"
    )
    lines.append(
        f"reconfiguration audit: {reconfigs} change(s) across {audit_runs} "
        f"run(s), all traces pass: {_verdict(audits_ok == audit_runs)}"
    )
    return lines


def never_worse_attainment(summary: dict) -> bool:
    """Attainment is better-is-higher: closed-loop within CI of static."""
    s_mean, s_half = summary["static"]["attain"]
    c_mean, c_half = summary["closed-loop"]["attain"]
    slack = (0.0 if math.isnan(s_half) else s_half) + (
        0.0 if math.isnan(c_half) else c_half
    )
    return c_mean >= s_mean - slack


def adaptive_control(scale: ExperimentScale) -> str:
    """Run both scenarios and render the combined verdict report."""
    horizon = max(scale.horizon, 1_000.0)
    warmup = scale.warmup_fraction * horizon
    lines = _drift_scenario(scale, horizon, warmup)
    lines.append("")
    lines.extend(_flash_scenario(scale, horizon, warmup))
    return "\n".join(lines)
