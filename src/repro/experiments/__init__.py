"""``repro.experiments`` — harness regenerating every figure of the paper.

See :data:`~repro.experiments.registry.EXPERIMENTS` for the per-figure
index; DESIGN.md maps each entry back to the paper's evaluation section.
"""

from .ascii_plot import ascii_plot
from .baselines import (
    birth_death_validation,
    pull_policy_comparison,
    push_policy_comparison,
)
from .blocking import blocking_vs_share, optimal_partition
from .compare import analytical_vs_simulation
from .cost import cost_vs_cutoff, optimal_cost_vs_alpha
from .degradation import DEFAULT_LOSS_GRID, degradation_under_loss
from .delay import delay_vs_alpha, delay_vs_cutoff
from .flash_crowd import SurgeSpec, flash_crowd
from .n_ladder import LadderReport, RungReport, ladder_config, n_ladder
from .export import (
    FIGURE_FACTORIES,
    export_all_figures,
    figure_to_dict,
    save_figure_csv,
    save_figure_json,
)
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .specs import (
    DEFAULT_CUTOFFS,
    FULL,
    PAPER_ALPHAS,
    PAPER_THETAS_FIG,
    QUICK,
    ExperimentScale,
    paper_config,
)
from .tables import FigureData, Series, render_table

__all__ = [
    "ascii_plot",
    "birth_death_validation",
    "pull_policy_comparison",
    "push_policy_comparison",
    "blocking_vs_share",
    "optimal_partition",
    "analytical_vs_simulation",
    "cost_vs_cutoff",
    "optimal_cost_vs_alpha",
    "DEFAULT_LOSS_GRID",
    "degradation_under_loss",
    "SurgeSpec",
    "flash_crowd",
    "LadderReport",
    "RungReport",
    "ladder_config",
    "n_ladder",
    "delay_vs_alpha",
    "delay_vs_cutoff",
    "FIGURE_FACTORIES",
    "export_all_figures",
    "figure_to_dict",
    "save_figure_csv",
    "save_figure_json",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
    "DEFAULT_CUTOFFS",
    "FULL",
    "QUICK",
    "PAPER_ALPHAS",
    "PAPER_THETAS_FIG",
    "ExperimentScale",
    "paper_config",
    "FigureData",
    "Series",
    "render_table",
]
