"""E13 — graceful degradation under a lossy wireless downlink.

Sweeps the stationary loss rate of the Gilbert–Elliott downlink channel
and measures how each service class's mean delay degrades relative to
the lossless baseline, for every class-aware shedding policy of the
bounded pull queue.  The differentiated-QoS claim under test: the
importance-factor scheduler plus class-aware shedding should shield the
premium class, so Class A's *relative* degradation stays below Class C's
at every loss rate and under every policy.

The sweep runs the pull-only variant of the system (cutoff ``K = 0``)
in a stable, moderately loaded regime, for two reasons the full hybrid
obscures:

* The flat push cycle is class-blind — a corrupted slot costs every
  waiter one extra full cycle regardless of class — so push traffic
  dilutes per-class differentiation with a uniform penalty.
* Channel loss inflates the effective pull load by ``1/(1 - loss)``.
  Starting from a stable utilisation, the sweep drives the priority
  queue toward saturation, exactly the regime where low-priority delay
  grows superlinearly while high-priority delay stays bounded (the
  classic priority-queue result).  A low Zipf skew keeps pull entries
  close to single-class, so the importance factor ``γ = Q_i`` orders
  the queue by class priority rather than by waiter count.

Every run is audited by the conservation watchdog
(:class:`~repro.sim.faults.ConservationWatchdog`); an accounting
imbalance aborts the experiment with an
:class:`~repro.sim.faults.InvariantViolation` rather than producing
silently wrong curves.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.faults import SHEDDING_POLICIES, FaultConfig
from ..sim.runner import run_replications
from .specs import ExperimentScale, paper_config
from .tables import FigureData, render_table

__all__ = ["degradation_under_loss", "DEFAULT_LOSS_GRID"]

#: Stationary downlink loss rates swept by the experiment.
DEFAULT_LOSS_GRID: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3)

#: Pull-queue bound (entries = distinct items).  Sized so the lossless
#: baseline rarely sheds while the lossy runs exercise every policy.
QUEUE_CAPACITY = 20

#: Aggregate request rate λ'.  Lower than the paper's 5 so the pull-only
#: system starts stable (ρ ≈ 0.6) and the loss sweep pushes it toward
#: saturation instead of starting saturated.
ARRIVAL_RATE = 0.45


def _faults(loss: float, policy: str) -> FaultConfig:
    return FaultConfig(
        downlink_loss=loss,
        downlink_mean_burst=4.0,
        queue_capacity=QUEUE_CAPACITY,
        shedding_policy=policy,
    )


def degradation_under_loss(
    scale: ExperimentScale,
    losses: tuple[float, ...] = DEFAULT_LOSS_GRID,
    theta: float = 0.20,
) -> str:
    """Run the loss sweep for every shedding policy and render the report.

    ``alpha = 0`` (pure priority) with low skew ``theta`` is the regime
    where the paper's scheduler differentiates hardest — the natural
    setting for a degradation study (see the module docstring).
    """
    if losses[0] != 0.0:
        raise ValueError("the first loss rate must be 0.0 (the baseline)")
    base = replace(
        paper_config(theta=theta, alpha=0.0, cutoff=0),
        arrival_rate=ARRIVAL_RATE,
    )
    class_names = base.class_names()
    parts: list[str] = []
    for policy in SHEDDING_POLICIES:
        baseline: dict[str, float] = {}
        fig = FigureData(
            title=(
                f"Per-class delay degradation vs downlink loss "
                f"(policy={policy}, alpha=0, theta={theta}, K=0, "
                f"capacity={QUEUE_CAPACITY})"
            ),
            x_label="loss",
        )
        ratios: dict[str, list[float]] = {n: [] for n in class_names}
        rows = []
        for loss in losses:
            config = base.with_faults(_faults(loss, policy))
            agg = run_replications(
                config,
                num_runs=scale.num_seeds,
                horizon=scale.horizon,
                warmup=scale.warmup,
                base_seed=11,
                n_jobs=scale.n_jobs,
            )
            shed = sum(r.shed_requests for r in agg.runs)
            corrupted = sum(r.corrupted_pull_transmissions for r in agg.runs)
            row: list[object] = [loss]
            for name in class_names:
                d, _ = agg.delay(name)
                if loss == 0.0:
                    baseline[name] = d
                ratios[name].append(d / baseline[name])
                row.append(d)
            row.extend(ratios[name][-1] for name in class_names)
            row.extend([shed, corrupted])
            rows.append(row)
        for name in class_names:
            fig.add(f"delay {name} / baseline", list(losses), ratios[name])
        headers = [
            "loss",
            *(f"delay {n}" for n in class_names),
            *(f"ratio {n}" for n in class_names),
            "shed",
            "corrupted",
        ]
        table = render_table(headers, rows)
        premium, best_effort = class_names[0], class_names[-1]
        shielded = all(
            a < c
            for a, c in zip(ratios[premium][1:], ratios[best_effort][1:])
        )
        verdict = (
            f"Class {premium} degrades less than Class {best_effort} at every "
            f"loss rate: {'yes' if shielded else 'NO'}"
        )
        parts.append(f"{fig.title}\n{table}\n{verdict}")
    parts.append(
        "conservation watchdog: passed on every run "
        "(violations raise InvariantViolation and abort the sweep)"
    )
    return "\n\n".join(parts)
