"""Warm-up (initial-transient) detection via the MSER rule.

Simulation estimates are biased by the empty-and-idle start; the usual
fix is to discard a warm-up prefix.  Our experiments default to a fixed
10 % cut, but the *right* cut depends on the operating point.  The MSER
(Marginal Standard Error Rule, White 1997) picks the truncation point
``d`` minimising

    MSER(d) = Var(x[d:]) / (n − d)

— the point where deleting more data stops buying bias reduction worth
the variance it costs.  MSER-5 applies the rule to means of batches of 5
observations, the standard robustness tweak.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MSERResult", "mser_truncation", "suggest_warmup"]


@dataclass(frozen=True)
class MSERResult:
    """Outcome of an MSER scan.

    Attributes
    ----------
    truncation_index:
        First retained index in the *original* observation sequence.
    statistic:
        The minimised MSER value.
    truncated_mean:
        Mean of the retained observations.
    curve:
        MSER(d) per candidate batch boundary (diagnostic).
    """

    truncation_index: int
    statistic: float
    truncated_mean: float
    curve: np.ndarray


def mser_truncation(observations: np.ndarray | list[float], batch_size: int = 5) -> MSERResult:
    """MSER-``batch_size`` truncation point of a time-ordered series.

    Parameters
    ----------
    observations:
        Output series in simulation-time order (e.g. successive request
        delays).
    batch_size:
        Observations per batch (5 = classic MSER-5; 1 = plain MSER).

    Notes
    -----
    Candidates are restricted to the first half of the batches — the
    standard guard against the statistic's degenerate tail (deleting
    almost everything always looks attractive).
    """
    x = np.asarray(observations, dtype=float)
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if x.size < 2 * batch_size:
        raise ValueError(
            f"need at least {2 * batch_size} observations, got {x.size}"
        )
    num_batches = x.size // batch_size
    batches = x[: num_batches * batch_size].reshape(num_batches, batch_size).mean(axis=1)

    max_d = num_batches // 2
    curve = np.empty(max_d + 1)
    for d in range(max_d + 1):
        tail = batches[d:]
        # MSER statistic: sample variance of the retained batches over
        # the retained count — the marginal standard error of the mean.
        curve[d] = float(tail.var(ddof=0)) / len(tail)
    best = int(np.argmin(curve))
    retained = batches[best:]
    return MSERResult(
        truncation_index=best * batch_size,
        statistic=float(curve[best]),
        truncated_mean=float(retained.mean()),
        curve=curve,
    )


def suggest_warmup(
    times: np.ndarray | list[float],
    observations: np.ndarray | list[float],
    batch_size: int = 5,
) -> float:
    """Suggested warm-up *time* from time-stamped output observations.

    Applies :func:`mser_truncation` to the observation series and maps
    the truncation index back to the corresponding timestamp, which can
    be passed as ``warmup=`` to the runner.
    """
    t = np.asarray(times, dtype=float)
    x = np.asarray(observations, dtype=float)
    if t.shape != x.shape:
        raise ValueError(f"times {t.shape} and observations {x.shape} must align")
    if t.size > 1 and np.any(np.diff(t) < 0):
        raise ValueError("times must be non-decreasing")
    result = mser_truncation(x, batch_size=batch_size)
    if result.truncation_index == 0:
        return 0.0
    return float(t[min(result.truncation_index, t.size - 1)])
