"""The simulation environment: event calendar and execution loop.

:class:`Environment` owns the simulation clock and a priority queue of
scheduled events (the *calendar*).  :meth:`Environment.step` pops and
processes one event; :meth:`Environment.run` loops until a stop condition.

The calendar orders events by ``(time, priority, sequence)`` so that
same-time events process in deterministic FIFO order within a priority
band.  :data:`~repro.des.events.URGENT` events (process initialisation,
interrupts) run before :data:`~repro.des.events.NORMAL` ones at equal time.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable, Optional

from .events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Environment.run`.

    Carries the value of the event that stopped the run.
    """

    @classmethod
    def callback(cls, event: Event) -> None:
        """Event callback that stops the simulation with the event's value."""
        if event._ok:
            raise cls(event._value)
        raise event._value


class Environment:
    """A discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0``).

    Examples
    --------
    >>> env = Environment()
    >>> def hello(env):
    ...     yield env.timeout(3)
    ...     return env.now
    >>> proc = env.process(hello(env))
    >>> env.run()
    >>> proc.value
    3.0
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- clock & introspection ----------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events in the calendar."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert a triggered ``event`` into the calendar after ``delay``."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new :class:`Process` executing ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If the calendar is empty.
        BaseException
            A failed event whose exception nobody defused aborts the run
            by re-raising that exception here.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive; cannot normally happen
            return
        for callback in callbacks:
            callback(event)

        if event._ok is False and not event._defused:
            # Nobody handled this failure: abort the simulation loudly.
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            * ``None`` — run until the calendar empties.
            * a number — run until the clock reaches that time (the clock is
              advanced exactly to ``until`` even if no event sits there).
            * an :class:`Event` — run until that event is processed, and
              return its value.

        Returns
        -------
        Any
            The stopping event's value when ``until`` is an event, else
            ``None``.
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} lies in the past (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            # Priority below NORMAL ensures all events at `at` run first.
            self.schedule(until, priority=NORMAL + 1, delay=at - self._now)
        elif isinstance(until, Event):
            if until.callbacks is None:
                # Already processed — nothing to run.
                return until.value

        if isinstance(until, Event):
            until.callbacks.append(StopSimulation.callback)

        try:
            while True:
                self.step()
        except StopSimulation as exc:
            return exc.args[0]
        except EmptySchedule:
            if isinstance(until, Event) and until._value is PENDING:
                raise RuntimeError(
                    "no more events scheduled but the `until` event never triggered"
                ) from None
            return None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<Environment t={self._now} queued={len(self._queue)}>"
