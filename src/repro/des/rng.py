"""Deterministic, named random-number streams for reproducible simulation.

Every stochastic component of the simulator draws from its own named
stream.  Streams are derived from a single root seed via
``numpy.random.SeedSequence.spawn``-style key derivation, so:

* a run is a pure function of ``(configuration, seed)``;
* adding a new stochastic component does not perturb the draws of
  existing components (streams are keyed by *name*, not creation order).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence, TypeVar

_T = TypeVar("_T")

import numpy as np

__all__ = ["RandomStreams", "stable_key"]


def stable_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (BLAKE2 digest).

    Python's built-in ``hash`` is salted per-interpreter-run and therefore
    unusable for reproducible stream derivation.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class RandomStreams:
    """A family of independent, named ``numpy.random.Generator`` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole family.  Two families with the same seed
        produce identical streams for identical names.

    Examples
    --------
    >>> streams = RandomStreams(seed=42)
    >>> arrivals = streams.stream("arrivals")
    >>> lengths = streams.stream("item-lengths")
    >>> float(arrivals.exponential(1.0)) != float(lengths.exponential(1.0))
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._cache: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed of this family."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for ``name``.

        Repeated calls with the same name return the *same* generator
        object, so draws continue where they left off.
        """
        gen = self._cache.get(name)
        if gen is None:
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(stable_key(name),))
            gen = np.random.Generator(np.random.PCG64(seq))
            self._cache[name] = gen
        return gen

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child family (e.g. one per replication) keyed by ``name``."""
        child_seed = (self._seed * 0x9E3779B97F4A7C15 + stable_key(name)) % (2**63)
        return RandomStreams(seed=child_seed)

    # -- convenience distributions used across the simulator ----------------
    def exponential(self, name: str, rate: float) -> float:
        """One draw from Exp(rate); ``rate`` is events per unit time."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return float(self.stream(name).exponential(1.0 / rate))

    def poisson(self, name: str, mean: float) -> int:
        """One draw from Poisson(mean)."""
        if mean < 0:
            raise ValueError(f"mean must be >= 0, got {mean}")
        return int(self.stream(name).poisson(mean))

    def choice(self, name: str, n: int, p: Sequence[float] | np.ndarray) -> int:
        """Sample an index in ``range(n)`` with probabilities ``p``."""
        return int(self.stream(name).choice(n, p=np.asarray(p, dtype=float)))

    def uniform_int(self, name: str, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return int(self.stream(name).integers(low, high + 1))

    def shuffle(self, name: str, items: Iterable[_T]) -> list[_T]:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self.stream(name).shuffle(out)
        return out
