"""Shared-resource primitives built on top of the event core.

Four families, mirroring the classical DES toolkit:

* :class:`Resource` / :class:`PriorityResource` — a server pool with a
  fixed number of usage slots; requests queue (FIFO, or by priority).
* :class:`Container` — a homogeneous bulk store (e.g. bandwidth, fuel)
  supporting amount-based ``put``/``get``.
* :class:`Store` / :class:`FilterStore` / :class:`PriorityStore` — object
  stores for producer/consumer pipelines.

All request events work as context managers so the canonical usage is::

    with resource.request() as req:
        yield req
        ... hold the resource ...
    # released automatically
"""

from __future__ import annotations

import heapq
import math
from types import TracebackType
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = [
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "PreemptiveRequest",
    "Preempted",
    "Request",
    "PriorityRequest",
    "Release",
    "Container",
    "ContainerPut",
    "ContainerGet",
    "Store",
    "StorePut",
    "StoreGet",
    "FilterStore",
    "FilterStoreGet",
    "PriorityItem",
    "PriorityStore",
]


class _BaseRequest(Event):
    """Common machinery for resource/container/store request events.

    Subclasses set themselves up in the owning facility's wait queue; the
    facility triggers them as capacity/items become available.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "_BaseFacility") -> None:
        super().__init__(resource.env)
        self.resource = resource

    # Context-manager protocol: `with res.request() as req: yield req`.
    def __enter__(self) -> "_BaseRequest":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc_value: BaseException | None,
        traceback: TracebackType | None,
    ) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Withdraw this request (and release what it acquired, if anything)."""
        raise NotImplementedError


class _BaseFacility:
    """Base class holding the environment pointer and queue-stir logic."""

    def __init__(self, env: "Environment") -> None:
        self.env = env


# --------------------------------------------------------------------------
# Resource: a pool of identical usage slots
# --------------------------------------------------------------------------


class Request(_BaseRequest):
    """Request one usage slot of a :class:`Resource`."""

    __slots__ = ("usage_since",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource)
        #: Simulation time at which the slot was granted (``None`` before).
        self.usage_since: Optional[float] = None
        resource._queue.append(self)
        resource._trigger_get()

    def cancel(self) -> None:
        """Release the slot if held, else withdraw from the wait queue."""
        if self.usage_since is not None:
            Release(self.resource, self)
        elif self in self.resource._queue:
            self.resource._queue.remove(self)


class PriorityRequest(Request):
    """Request with an explicit ``priority`` (smaller = more important).

    Ties break by request time, then insertion order.
    """

    __slots__ = ("priority", "time", "_key")

    def __init__(self, resource: "PriorityResource", priority: float = 0.0) -> None:
        self.priority = priority
        self.time = resource.env.now
        resource._counter += 1
        self._key = (priority, self.time, resource._counter)
        super().__init__(resource)


class Release(Event):
    """Event returning a granted :class:`Request`'s slot to the resource.

    Succeeds immediately; exists as an event so that ``yield res.release(req)``
    is legal and symmetric with ``request()``.
    """

    __slots__ = ("resource", "request")

    def __init__(self, resource: "Resource", request: Request) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        if request in resource.users:
            resource.users.remove(request)
            resource._trigger_get()
        self.succeed()


class Resource(_BaseFacility):
    """A pool of ``capacity`` identical usage slots with a FIFO wait queue.

    Parameters
    ----------
    env:
        Host environment.
    capacity:
        Number of concurrent holders (must be >= 1).
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        super().__init__(env)
        self._capacity = int(capacity)
        #: Requests currently holding a slot.
        self.users: list[Request] = []
        self._queue: list[Request] = []

    @property
    def capacity(self) -> int:
        """Total number of slots."""
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    @property
    def queue(self) -> list[Request]:
        """Requests waiting for a slot (read-only view)."""
        return list(self._queue)

    def request(self) -> Request:
        """Create (and enqueue) a new slot request event."""
        return Request(self)

    def release(self, request: Request) -> Release:
        """Return ``request``'s slot to the pool."""
        return Release(self, request)

    # -- internal ----------------------------------------------------------
    def _select(self) -> Request:
        return self._queue[0]

    def _pop(self, request: Request) -> None:
        self._queue.remove(request)

    def _trigger_get(self) -> None:
        """Grant slots to waiting requests while capacity remains."""
        while self._queue and len(self.users) < self._capacity:
            request = self._select()
            self._pop(request)
            request.usage_since = self.env.now
            self.users.append(request)
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose wait queue is ordered by request priority."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._counter = 0

    def request(self, priority: float = 0.0) -> PriorityRequest:  # type: ignore[override]
        """Create a prioritized slot request (smaller priority served first)."""
        return PriorityRequest(self, priority)

    def _select(self) -> Request:
        return min(self._queue, key=lambda r: r._key)  # type: ignore[attr-defined]


class Preempted:
    """Cause object delivered with the interrupt on preemption.

    Attributes
    ----------
    by:
        The preempting request.
    usage_since:
        When the victim acquired the slot.
    """

    __slots__ = ("by", "usage_since")

    def __init__(self, by: "PreemptiveRequest", usage_since: float) -> None:
        self.by = by
        self.usage_since = usage_since

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Preempted(by={self.by!r}, usage_since={self.usage_since})"


class PreemptiveRequest(PriorityRequest):
    """Priority request that may evict a lower-priority slot holder."""

    __slots__ = ("preempt", "process")

    def __init__(
        self, resource: "PreemptiveResource", priority: float = 0.0, preempt: bool = True
    ) -> None:
        self.preempt = preempt
        # The process issuing the request is the one to interrupt if this
        # request is itself later preempted.
        self.process = resource.env.active_process
        super().__init__(resource, priority)


class PreemptiveResource(PriorityResource):
    """Priority resource where higher-priority requests evict holders.

    When the pool is full and a new request outranks the weakest current
    holder, that holder's process receives an
    :class:`~repro.des.process.Interrupt` whose cause is a
    :class:`Preempted` record, and the slot transfers.  Ties never
    preempt (strictly smaller priority value wins).
    """

    def request(self, priority: float = 0.0, preempt: bool = True) -> PreemptiveRequest:  # type: ignore[override]
        """Create a (possibly preempting) prioritized slot request."""
        return PreemptiveRequest(self, priority, preempt)

    def _trigger_get(self) -> None:
        # First try normal grants, then preemption for what's left queued.
        super()._trigger_get()
        if not self._queue:
            return
        for request in sorted(self._queue, key=lambda r: r._key):  # type: ignore[attr-defined]
            if not getattr(request, "preempt", False):
                continue
            victims = [
                u
                for u in self.users
                if isinstance(u, PreemptiveRequest)
                and u.priority > request.priority  # strictly weaker
            ]
            if not victims:
                continue
            victim = max(victims, key=lambda u: (u.priority, u.time))
            self.users.remove(victim)
            if victim.process is not None and victim.process.is_alive:
                victim.process.interrupt(
                    Preempted(by=request, usage_since=victim.usage_since)
                )
            self._queue.remove(request)
            request.usage_since = self.env.now
            self.users.append(request)
            request.succeed()


# --------------------------------------------------------------------------
# Container: bulk quantities
# --------------------------------------------------------------------------


class ContainerPut(_BaseRequest):
    """Deposit ``amount`` into a :class:`Container` (may wait for headroom)."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"put amount must be > 0, got {amount}")
        super().__init__(container)
        self.amount = amount
        container._put_queue.append(self)
        container._stir()

    def cancel(self) -> None:
        if not self.triggered and self in self.resource._put_queue:  # type: ignore[attr-defined]
            self.resource._put_queue.remove(self)  # type: ignore[attr-defined]


class ContainerGet(_BaseRequest):
    """Withdraw ``amount`` from a :class:`Container` (may wait for stock)."""

    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"get amount must be > 0, got {amount}")
        super().__init__(container)
        self.amount = amount
        container._get_queue.append(self)
        container._stir()

    def cancel(self) -> None:
        if not self.triggered and self in self.resource._get_queue:  # type: ignore[attr-defined]
            self.resource._get_queue.remove(self)  # type: ignore[attr-defined]


class Container(_BaseFacility):
    """A homogeneous bulk resource (e.g. a bandwidth pool).

    Parameters
    ----------
    env:
        Host environment.
    capacity:
        Maximum level (default unbounded).
    init:
        Initial level (default 0).
    """

    def __init__(
        self, env: "Environment", capacity: float = math.inf, init: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        super().__init__(env)
        self._capacity = capacity
        self._level = float(init)
        self._put_queue: list[ContainerPut] = []
        self._get_queue: list[ContainerGet] = []

    @property
    def capacity(self) -> float:
        """Maximum level of the container."""
        return self._capacity

    @property
    def level(self) -> float:
        """Current amount stored."""
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Deposit ``amount``; the event triggers when there is headroom."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Withdraw ``amount``; the event triggers when stock suffices."""
        return ContainerGet(self, amount)

    def _stir(self) -> None:
        """Serve queued puts/gets until neither can progress (FIFO order)."""
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue:
                put = self._put_queue[0]
                if self._level + put.amount <= self._capacity:
                    self._put_queue.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progressed = True
            if self._get_queue:
                get = self._get_queue[0]
                if self._level >= get.amount:
                    self._get_queue.pop(0)
                    self._level -= get.amount
                    get.succeed(get.amount)
                    progressed = True


# --------------------------------------------------------------------------
# Stores: object pipelines
# --------------------------------------------------------------------------


class StorePut(_BaseRequest):
    """Insert ``item`` into a :class:`Store` (waits while the store is full)."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store)
        self.item = item
        store._put_queue.append(self)
        store._stir()

    def cancel(self) -> None:
        if not self.triggered and self in self.resource._put_queue:  # type: ignore[attr-defined]
            self.resource._put_queue.remove(self)  # type: ignore[attr-defined]


class StoreGet(_BaseRequest):
    """Retrieve the next item from a :class:`Store` (waits while empty)."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store)
        store._get_queue.append(self)
        store._stir()

    def cancel(self) -> None:
        if not self.triggered and self in self.resource._get_queue:  # type: ignore[attr-defined]
            self.resource._get_queue.remove(self)  # type: ignore[attr-defined]


class Store(_BaseFacility):
    """FIFO object store with optional capacity bound.

    Parameters
    ----------
    env:
        Host environment.
    capacity:
        Maximum number of stored items (default unbounded).
    """

    def __init__(self, env: "Environment", capacity: float = math.inf) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be > 0, got {capacity}")
        super().__init__(env)
        self._capacity = capacity
        self.items: list[Any] = []
        self._put_queue: list[StorePut] = []
        self._get_queue: list[StoreGet] = []

    @property
    def capacity(self) -> float:
        """Maximum number of items the store holds."""
        return self._capacity

    def put(self, item: Any) -> StorePut:
        """Insert ``item``; triggers once the store has room."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Retrieve an item; triggers once one is available."""
        return StoreGet(self)

    # -- internal ----------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self._capacity:
            self._insert(event.item)
            event.succeed()
            return True
        return False

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._extract(event))
            return True
        return False

    def _extract(self, event: StoreGet) -> Any:
        return self.items.pop(0)

    def _stir(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._put_queue and self._do_put(self._put_queue[0]):
                self._put_queue.pop(0)
                progressed = True
            # Gets may be filtered, so scan for the first satisfiable one.
            for get in list(self._get_queue):
                if self._do_get(get):
                    self._get_queue.remove(get)
                    progressed = True
                    break


class FilterStoreGet(StoreGet):
    """Retrieve the first stored item satisfying ``filter``."""

    __slots__ = ("filter",)

    def __init__(self, store: "FilterStore", filter: Callable[[Any], bool]) -> None:
        self.filter = filter
        super().__init__(store)


class FilterStore(Store):
    """A :class:`Store` whose consumers may select items with a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        """Retrieve the first item for which ``filter(item)`` is true."""
        return FilterStoreGet(self, filter)

    def _do_get(self, event: StoreGet) -> bool:
        predicate = getattr(event, "filter", lambda item: True)
        for item in self.items:
            if predicate(item):
                self.items.remove(item)
                event.succeed(item)
                return True
        return False


class PriorityItem:
    """Orderable wrapper pairing a sort key with an arbitrary payload."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PriorityItem):
            return NotImplemented
        return self.priority == other.priority and self.item == other.item

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """A :class:`Store` that always yields its smallest item (heap order)."""

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self, event: StoreGet) -> Any:
        return heapq.heappop(self.items)
