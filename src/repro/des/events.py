"""Event primitives for the discrete-event simulation engine.

The engine follows the generator-process model popularised by ``simpy``:
simulation processes are Python generators that ``yield`` events, and the
:class:`~repro.des.engine.Environment` resumes them when those events
trigger.  This module defines the event types themselves:

* :class:`Event` — the base one-shot event with success/failure outcomes.
* :class:`Timeout` — an event that triggers after a simulated delay.
* :class:`Condition` / :class:`AllOf` / :class:`AnyOf` — composite events.

Events are deliberately minimal: an event is *triggered* once it has an
outcome scheduled, and *processed* once its callbacks have run.  A failed
event whose exception is never retrieved is re-raised at the end of the
simulation so that errors cannot be silently lost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import Environment

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
]


class _PendingType:
    """Unique sentinel for "this event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<PENDING>"


#: Sentinel stored in :attr:`Event._value` before the event is triggered.
PENDING = _PendingType()

#: Scheduling priority for events that must run before same-time events.
URGENT = 0
#: Default scheduling priority.
NORMAL = 1


class Event:
    """A one-shot occurrence that simulation processes can wait for.

    An event goes through three stages: *untriggered* (freshly created),
    *triggered* (an outcome — value or exception — has been decided and the
    event sits in the environment's calendar) and *processed* (its callbacks
    have been invoked).  Processes wait on an event by ``yield``-ing it.

    Parameters
    ----------
    env:
        The environment in which this event lives.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callbacks invoked (in order) when the event is processed.  ``None``
        #: once the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    # -- introspection ----------------------------------------------------
    @property
    def triggered(self) -> bool:
        """``True`` once the event has an outcome (value or exception)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """``True`` once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise AttributeError(f"outcome of {self!r} is not yet decided")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's outcome value (or exception instance on failure)."""
        if self._value is PENDING:
            raise AttributeError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """Whether a failure outcome has been acknowledged by someone."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- outcome control ---------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Returns ``self`` so that ``yield env.event().succeed()`` works.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception outcome.

        The exception is re-raised inside every process waiting on this
        event.  If nobody waits (and nobody defuses it), the simulation run
        aborts with the exception.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of another (triggered) ``event`` onto this one.

        Used to chain events, e.g. to re-expose a resource's internal event.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition -------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else ("triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} object at {id(self):#x} [{state}]>"


class Timeout(Event):
    """An event that triggers after ``delay`` units of simulated time.

    Parameters
    ----------
    env:
        Host environment.
    delay:
        Non-negative delay, in simulated time units.
    value:
        Value the event succeeds with (defaults to ``None``).
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout(delay={self.delay}) object at {id(self):#x}>"


class ConditionValue:
    """Ordered mapping of event → value produced by a :class:`Condition`.

    Behaves like a read-only :class:`dict` keyed by the original event
    objects, preserving the order in which events were passed to the
    condition (*not* trigger order), which makes tuple-unpacking of
    ``AllOf`` results deterministic.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> "Iterator[Event]":
        return iter(self.events)

    def keys(self) -> "Iterator[Event]":
        return iter(self.events)

    def values(self) -> "Iterator[Any]":
        return (e._value for e in self.events)

    def items(self) -> "Iterator[tuple[Event, Any]]":
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict[Event, Any]:
        """Return a plain ``dict`` snapshot of the condition results."""
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Composite event that triggers when ``evaluate(events, count)`` is true.

    ``evaluate`` receives the list of composed events and the number that
    have triggered so far.  :class:`AllOf` and :class:`AnyOf` are the two
    standard instantiations, also reachable via ``event & event`` and
    ``event | event``.

    Nested conditions are flattened into the resulting
    :class:`ConditionValue`, so ``(a & b) & c`` exposes all three leaf
    events.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[list[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events: list[Event] = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("cannot mix events from different environments")

        # Immediately check already-processed events; subscribe to the rest.
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # An empty condition is trivially satisfied.
        if self._value is PENDING and self._evaluate(self._events, self._count):
            self.succeed(ConditionValue())

    def _populate_value(self, value: ConditionValue) -> None:
        """Collect triggered leaf-event outcomes, flattening nested conditions."""
        for event in self._events:
            if isinstance(event, Condition):
                event._populate_value(value)
            elif event.callbacks is None and event not in value.events:
                value.events.append(event)

    def _check(self, event: Event) -> None:
        """Callback run whenever one of the composed events is processed."""
        if self._value is not PENDING:
            return
        self._count += 1
        if not event._ok:
            # Propagate the first failure; mark it defused because the
            # condition will re-raise it in whoever waits on the condition.
            event.defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            value = ConditionValue()
            self._populate_value(value)
            self.succeed(value)

    @staticmethod
    def all_events(events: list[Event], count: int) -> bool:
        """Evaluator: every composed event has triggered."""
        return len(events) == count

    @staticmethod
    def any_events(events: list[Event], count: int) -> bool:
        """Evaluator: at least one event has triggered (or there are none)."""
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that triggers once *all* of ``events`` have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once *any* of ``events`` has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
