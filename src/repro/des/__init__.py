"""``repro.des`` — a from-scratch discrete-event simulation engine.

A compact, deterministic generator-process DES kernel in the style of
simpy (which is unavailable in this environment), plus named random
streams and output-analysis monitors.  Public surface:

* :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`Interrupt`, :class:`AllOf`, :class:`AnyOf`
* Resources: :class:`Resource`, :class:`PriorityResource`,
  :class:`Container`, :class:`Store`, :class:`FilterStore`,
  :class:`PriorityStore`, :class:`PriorityItem`
* Reproducibility: :class:`RandomStreams`
* Measurement: :class:`Tally`, :class:`TimeWeighted`, :class:`Counter`,
  :func:`batch_means_ci`
"""

from .engine import EmptySchedule, Environment, StopSimulation
from .events import NORMAL, PENDING, URGENT, AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .fastengine import FastEnvironment
from .monitor import Counter, Tally, TimeWeighted, batch_means_ci
from .process import Interrupt, Process, ProcessGenerator
from .resources import (
    Container,
    FilterStore,
    Preempted,
    PreemptiveRequest,
    PreemptiveResource,
    PriorityItem,
    PriorityResource,
    PriorityStore,
    Release,
    Request,
    Resource,
    Store,
)
from .rng import RandomStreams, stable_key
from .warmup import MSERResult, mser_truncation, suggest_warmup

__all__ = [
    "Environment",
    "FastEnvironment",
    "EmptySchedule",
    "StopSimulation",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "PENDING",
    "URGENT",
    "NORMAL",
    "Process",
    "ProcessGenerator",
    "Interrupt",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "PreemptiveRequest",
    "Preempted",
    "Request",
    "Release",
    "Container",
    "Store",
    "FilterStore",
    "PriorityStore",
    "PriorityItem",
    "RandomStreams",
    "stable_key",
    "Tally",
    "TimeWeighted",
    "Counter",
    "batch_means_ci",
    "MSERResult",
    "mser_truncation",
    "suggest_warmup",
]
