"""Measurement primitives: tallies, time-weighted series and counters.

Simulation output analysis lives here so the simulator proper only ever
calls ``observe``/``set`` and the statistics (means, variances, confidence
intervals, time-averages, batch means) are computed in one audited place.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional

import numpy as np
from scipy import stats as _sstats

__all__ = ["Tally", "TimeWeighted", "Counter", "batch_means_ci"]


class Tally:
    """Streaming sample statistics over observations (Welford's algorithm).

    Records count, mean, variance, min and max in O(1) memory; optionally
    keeps the raw observations for percentile queries.

    Parameters
    ----------
    keep_values:
        If true, retain every observation (needed for percentiles).
    """

    def __init__(self, keep_values: bool = False) -> None:
        self._n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._values: Optional[list[float]] = [] if keep_values else None

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._values is not None:
            self._values.append(value)

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations.

        Exactly equivalent to calling :meth:`observe` once per value —
        the same Welford recurrence runs in the same order, so the
        resulting statistical state (and :meth:`__eq__`) is bit-identical
        to the sequential path.  State access is hoisted into locals so
        batched hot paths (the fast engine's metric accumulation) pay one
        method call per batch instead of one per observation.
        """
        n = self._n
        mean = self._mean
        m2 = self._m2
        lo = self._min
        hi = self._max
        keep = self._values
        for raw in values:
            value = float(raw)
            n += 1
            delta = value - mean
            mean += delta / n
            m2 += delta * (value - mean)
            if value < lo:
                lo = value
            if value > hi:
                hi = value
            if keep is not None:
                keep.append(value)
        self._n = n
        self._mean = mean
        self._m2 = m2
        self._min = lo
        self._max = hi

    def observe_moments(
        self,
        n: int,
        total: float,
        sq_total: float,
        minimum: float,
        maximum: float,
    ) -> None:
        """Merge a pre-aggregated moment summary in place (Chan et al.).

        ``(n, Σx, Σx², min, max)`` fully determines the tally state for a
        batch, so the population-aggregated engine can fold thousands of
        folded observations into one call.  The merge is the same pairwise
        update :meth:`merge` uses — *statistically exact* (identical count,
        mean, variance, min, max in exact arithmetic) but not bit-identical
        to replaying :meth:`observe`, because floating-point summation
        order differs.  Not available with ``keep_values=True``: the raw
        observations were never materialised.
        """
        if self._values is not None:
            raise RuntimeError("observe_moments cannot reconstruct kept values")
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if n == 0:
            return
        mean_b = total / n
        # Non-negative by Cauchy–Schwarz; clamp the float residue.
        m2_b = max(sq_total - total * mean_b, 0.0)
        combined = self._n + n
        delta = mean_b - self._mean
        self._mean += delta * n / combined
        self._m2 += m2_b + delta * delta * self._n * n / combined
        self._n = combined
        if minimum < self._min:
            self._min = minimum
        if maximum > self._max:
            self._max = maximum

    @property
    def count(self) -> int:
        """Number of observations recorded."""
        return self._n

    @property
    def mean(self) -> float:
        """Sample mean (``nan`` if empty)."""
        return self._mean if self._n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (``nan`` if < 2 observations)."""
        return self._m2 / (self._n - 1) if self._n > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    @property
    def minimum(self) -> float:
        """Smallest observation (``nan`` if empty)."""
        return self._min if self._n else math.nan

    @property
    def maximum(self) -> float:
        """Largest observation (``nan`` if empty)."""
        return self._max if self._n else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile; requires ``keep_values=True``."""
        if self._values is None:
            raise RuntimeError("construct with keep_values=True for percentiles")
        if not self._values:
            return math.nan
        return float(np.percentile(self._values, q))

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t confidence interval for the mean.

        Returns ``(nan, nan)`` with fewer than two observations.
        """
        if self._n < 2:
            return (math.nan, math.nan)
        half = _sstats.t.ppf(0.5 + level / 2.0, self._n - 1) * self.std / math.sqrt(self._n)
        return (self._mean - half, self._mean + half)

    def merge(self, other: "Tally") -> "Tally":
        """Return a new tally combining this one with ``other`` (Chan et al.)."""
        out = Tally(keep_values=self._values is not None and other._values is not None)
        n = self._n + other._n
        if n == 0:
            return out
        delta = other._mean - self._mean
        out._n = n
        out._mean = self._mean + delta * other._n / n
        out._m2 = self._m2 + other._m2 + delta * delta * self._n * other._n / n
        out._min = min(self._min, other._min)
        out._max = max(self._max, other._max)
        if out._values is not None:
            out._values = list(self._values or []) + list(other._values or [])
        return out

    def __eq__(self, other: object) -> bool:
        """Value equality over the full statistical state.

        Two tallies fed the same observation sequence compare equal,
        which lets composite results (e.g. ``SimulationResult``) be
        compared bit-for-bit across runs.
        """
        if not isinstance(other, Tally):
            return NotImplemented
        return (
            self._n == other._n
            and self._mean == other._mean
            and self._m2 == other._m2
            and self._min == other._min
            and self._max == other._max
            and self._values == other._values
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Tally(n={self._n}, mean={self.mean:.4g})"


class TimeWeighted:
    """Time-weighted average of a piecewise-constant signal (e.g. queue length).

    Call :meth:`set` whenever the level changes; the integral of the level
    over time accumulates automatically.

    Parameters
    ----------
    env_now:
        Function returning the current simulation time (typically the bound
        method ``lambda: env.now`` or the ``Environment.now`` property via a
        closure).
    initial:
        Level before the first :meth:`set`.
    """

    def __init__(self, now: float = 0.0, initial: float = 0.0) -> None:
        self._last_time = float(now)
        self._start_time = float(now)
        self._level = float(initial)
        self._area = 0.0
        self._max = float(initial)

    @property
    def level(self) -> float:
        """Current level of the signal."""
        return self._level

    @property
    def maximum(self) -> float:
        """Largest level ever set."""
        return self._max

    def set(self, now: float, level: float) -> None:
        """Change the level to ``level`` at time ``now``."""
        if now < self._last_time:
            raise ValueError(f"time ran backwards: {now} < {self._last_time}")
        self._area += self._level * (now - self._last_time)
        self._last_time = now
        level = float(level)
        self._level = level
        if level > self._max:
            self._max = level

    def add(self, now: float, delta: float) -> None:
        """Increment the level by ``delta`` at time ``now``."""
        self.set(now, self._level + delta)

    def time_average(self, now: Optional[float] = None) -> float:
        """Average level over ``[start, now]`` (``nan`` if zero elapsed)."""
        end = self._last_time if now is None else float(now)
        elapsed = end - self._start_time
        if elapsed <= 0:
            return math.nan
        area = self._area + self._level * (end - self._last_time)
        return area / elapsed

    def __eq__(self, other: object) -> bool:
        """Value equality over the full integrator state."""
        if not isinstance(other, TimeWeighted):
            return NotImplemented
        return (
            self._last_time == other._last_time
            and self._start_time == other._start_time
            and self._level == other._level
            and self._area == other._area
            and self._max == other._max
        )

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"TimeWeighted(level={self._level}, avg={self.time_average():.4g})"


class Counter:
    """A plain event counter with a rate helper."""

    def __init__(self) -> None:
        self._count = 0

    def increment(self, by: int = 1) -> None:
        """Add ``by`` to the count."""
        self._count += by

    @property
    def count(self) -> int:
        """Current count."""
        return self._count

    def rate(self, elapsed: float) -> float:
        """Events per unit time over ``elapsed`` (``nan`` if non-positive)."""
        return self._count / elapsed if elapsed > 0 else math.nan

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Counter):
            return NotImplemented
        return self._count == other._count

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"Counter({self._count})"


def batch_means_ci(
    samples: np.ndarray | list[float], n_batches: int = 10, level: float = 0.95
) -> tuple[float, float, float]:
    """Batch-means point estimate and confidence interval.

    The classic remedy for autocorrelated simulation output: partition the
    (time-ordered) sample path into ``n_batches`` contiguous batches, treat
    batch means as i.i.d. and apply a Student-t interval.

    Returns
    -------
    (mean, lo, hi):
        Point estimate and confidence bounds.  ``(nan, nan, nan)`` when
        there are fewer samples than batches.
    """
    x = np.asarray(samples, dtype=float)
    if x.size < n_batches or n_batches < 2:
        return (math.nan, math.nan, math.nan)
    usable = (x.size // n_batches) * n_batches
    batches = x[:usable].reshape(n_batches, -1).mean(axis=1)
    mean = float(batches.mean())
    sd = float(batches.std(ddof=1))
    half = float(_sstats.t.ppf(0.5 + level / 2.0, n_batches - 1)) * sd / math.sqrt(n_batches)
    return (mean, mean - half, mean + half)
