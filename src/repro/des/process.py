"""Generator-driven simulation processes.

A *process* wraps a Python generator: every value the generator yields must
be an :class:`~repro.des.events.Event`, and the process resumes when that
event triggers.  A process is itself an event — it triggers with the
generator's return value when the generator finishes — so processes can wait
for each other and be composed with ``&`` / ``|``.

Processes support *interrupts*: :meth:`Process.interrupt` raises an
:class:`Interrupt` inside the target process at its current yield point,
which the process may catch to model preemption, failures or cancellation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import NORMAL, PENDING, URGENT, Event

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Environment

__all__ = ["Process", "Interrupt", "ProcessGenerator"]

#: Type alias for the generators accepted by :class:`Process`.
ProcessGenerator = Generator[Event, Any, Any]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    Attributes
    ----------
    cause:
        Arbitrary object passed to :meth:`Process.interrupt`, describing why
        the interruption happened.
    """

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0]

    def __str__(self) -> str:
        return f"Interrupt({self.cause!r})"


class _Initialize(Event):
    """Internal immediate event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=URGENT)


class _Interruption(Event):
    """Internal immediate event delivering an :class:`Interrupt`."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        super().__init__(process.env)
        if process._value is not PENDING:
            raise RuntimeError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.env.schedule(self, priority=URGENT)
        self.callbacks.append(self._deliver)

    def _deliver(self, event: Event) -> None:
        # If the process terminated between scheduling and delivery, the
        # interrupt silently evaporates (matching simpy semantics).
        process = self.process
        if process._value is not PENDING:
            return
        # Unsubscribe the process from whatever event it currently waits on,
        # then resume it with the failure outcome (the Interrupt).
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
            # If the abandoned event is a resource/store request, withdraw
            # it — otherwise a later put/release could satisfy a waiter
            # that no longer exists and silently lose the item/slot.
            cancel = getattr(target, "cancel", None)
            if callable(cancel) and not target.triggered:
                cancel()
        process._resume(self)


class Process(Event):
    """An event that drives a generator through the simulation.

    Parameters
    ----------
    env:
        Host environment.
    generator:
        The generator to execute.  Each yielded value must be an untriggered
        or triggered :class:`Event` belonging to the same environment.

    Notes
    -----
    The process event succeeds with the generator's return value, or fails
    with any uncaught exception the generator raises.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: Event the process currently waits on (``None`` before start/after end).
        self._target: Optional[Event] = _Initialize(env, self)
        self.name = getattr(generator, "__name__", repr(generator))

    # -- introspection ----------------------------------------------------
    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """``True`` while the underlying generator has not terminated."""
        return self._value is PENDING

    # -- control -----------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Raise an :class:`Interrupt` inside this process.

        The interrupt is delivered as soon as possible (at the current
        simulation time, before any scheduled timeout fires).  Interrupting
        a dead process raises :class:`RuntimeError`.
        """
        _Interruption(self, cause)

    # -- execution ---------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome.

        This is the single driver loop for the process: it keeps stepping
        the generator while the yielded events are already processed, and
        subscribes to the first pending one.
        """
        self.env._active_proc = self
        while True:
            try:
                if event._ok:
                    result = self._generator.send(event._value)
                else:
                    # Mark the failure as handled; the generator sees it.
                    event.defused = True
                    result = self._generator.throw(event._value)
            except StopIteration as exc:
                # Generator finished: the process event succeeds.
                self._ok = True
                self._value = exc.value
                self.env.schedule(self)
                break
            except BaseException as exc:
                # Uncaught exception: the process event fails.
                self._ok = False
                self._value = exc
                self._defused = False
                self.env.schedule(self)
                break

            if not isinstance(result, Event):
                exc2 = RuntimeError(f"process {self.name!r} yielded non-event {result!r}")
                event = Event(self.env)
                event._ok = False
                event._value = exc2
                event._defused = True
                continue
            if result.env is not self.env:
                raise ValueError("cannot wait for an event from another environment")

            if result.callbacks is not None:
                # Event not yet processed: wait for it.
                result.callbacks.append(self._resume)
                self._target = result
                break
            # Event already processed: loop immediately with its outcome.
            event = result

        self.env._active_proc = None
        if self._value is not PENDING:
            self._target = None

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "dead"
        return f"<Process({self.name}) object at {id(self):#x} [{state}]>"
