"""Fast-path simulation core: a flat calendar without generator frames.

:class:`FastEnvironment` is a drop-in alternative to
:class:`~repro.des.engine.Environment` that keeps the exact same public
surface (``now``/``schedule``/``event``/``timeout``/``process``/``run``
...) while adding a *direct-callback* scheduling path:

* :meth:`FastEnvironment.schedule_call` pushes a flat
  ``(time, priority, seq, (fn, arg))`` record onto the binary heap — no
  :class:`~repro.des.events.Event` object, no generator frame, no
  callback list.  Popping such a record costs one tuple unpack and one
  function call.
* The classic event path still works: generator processes
  (:class:`~repro.des.process.Process`), timeouts and conditions behave
  exactly as on the reference engine, so cold-path components (the
  fault-aware client front, the finite-rate uplink, the conservation
  watchdog's periodic audit) run unchanged on either engine.

The two record kinds share one calendar and are ordered by
``(time, priority, seq)``; ``seq`` is unique and strictly increasing, so
heap comparisons never reach the payload and the mixed heap stays
deterministic: same-time records fire in scheduling order within a
priority band, exactly like the reference engine.

Hot-path components (:class:`~repro.sim.fastpath.FastHybridServer`, the
vectorised arrival driver) are written against ``schedule_call`` and are
where the speedup comes from; see ``docs/performance.md``.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional, Union

from .engine import EmptySchedule, StopSimulation
from .events import NORMAL, PENDING, AllOf, AnyOf, Event, Timeout
from .process import Process, ProcessGenerator

__all__ = ["FastEnvironment"]

#: A direct-callback calendar payload: ``fn(arg)`` runs at the scheduled
#: time.  Plain tuple — deliberately not a dataclass; this is *below* the
#: API boundary (`slots=True` dataclasses start at `Request`).
CallRecord = tuple[Callable[[Any], None], Any]

_Record = Union[Event, CallRecord]


class FastEnvironment:
    """A discrete-event environment with a flat-record fast path.

    API-compatible with :class:`~repro.des.engine.Environment`; the
    additional :meth:`schedule_call` lets performance-critical components
    bypass Event construction entirely.

    Examples
    --------
    >>> env = FastEnvironment()
    >>> fired = []
    >>> env.schedule_call(3.0, fired.append)
    >>> env.run()
    >>> fired
    [None]
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, _Record]] = []
        self._eid = 0
        self._active_proc: Optional[Process] = None

    # -- clock & introspection ----------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    def peek(self) -> float:
        """Time of the next scheduled record, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) calendar records."""
        return len(self._queue)

    # -- scheduling ----------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert a triggered ``event`` into the calendar after ``delay``."""
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_call(
        self,
        delay: float,
        fn: Callable[[Any], None],
        arg: Any = None,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(arg)`` after ``delay`` — the no-Event fast path.

        The callback runs exactly once when the clock reaches
        ``now + delay``; there is nothing to cancel or wait on.  Use it
        for hot-path state machines; use :meth:`timeout`/:meth:`process`
        when another component needs to observe or join the activity.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, (fn, arg)))

    # -- event factories -------------------------------------------------------
    def event(self) -> Event:
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that triggers after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new :class:`Process` executing ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def _dispatch_event(self, event: Event) -> None:
        """Run one classic event's callbacks (reference-engine semantics)."""
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive; cannot normally happen
            return
        for callback in callbacks:
            callback(event)
        if event._ok is False and not event._defused:
            # Nobody handled this failure: abort the simulation loudly.
            exc = event._value
            assert isinstance(exc, BaseException)
            raise exc

    def step(self) -> None:
        """Process the next scheduled record.

        Raises
        ------
        EmptySchedule
            If the calendar is empty.
        BaseException
            A failed event whose exception nobody defused aborts the run
            by re-raising that exception here.
        """
        try:
            self._now, _, _, record = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        if isinstance(record, tuple):
            fn, arg = record
            fn(arg)
        else:
            self._dispatch_event(record)

    def run(self, until: Optional[Union[float, Event]] = None) -> Any:
        """Run the simulation; semantics match the reference engine.

        ``until`` may be ``None`` (drain the calendar), a number (advance
        the clock exactly to that time) or an :class:`Event` (stop when
        it is processed and return its value).
        """
        if until is not None and not isinstance(until, Event):
            at = float(until)
            if at < self._now:
                raise ValueError(f"until={at} lies in the past (now={self._now})")
            until = Event(self)
            until._ok = True
            until._value = None
            # Priority below NORMAL ensures all events at `at` run first.
            self.schedule(until, priority=NORMAL + 1, delay=at - self._now)
        elif isinstance(until, Event):
            if until.callbacks is None:
                # Already processed — nothing to run.
                return until.value

        if isinstance(until, Event):
            assert until.callbacks is not None
            until.callbacks.append(StopSimulation.callback)

        # Inlined hot loop: one heappop + type test per record.  The
        # callable path costs a tuple unpack and a call; the Event path
        # delegates to the reference semantics in _dispatch_event.
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                self._now, _, _, record = pop(queue)
                if isinstance(record, tuple):
                    fn, arg = record
                    fn(arg)
                else:
                    self._dispatch_event(record)
        except StopSimulation as exc:
            return exc.args[0]
        if isinstance(until, Event) and until._value is PENDING:
            raise RuntimeError(
                "no more events scheduled but the `until` event never triggered"
            )
        return None

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<FastEnvironment t={self._now} queued={len(self._queue)}>"
