"""M/G/1 queueing with the *actual* item-length distribution.

The paper's §4 assumes exponential service — and attributes its ~10 %
analytic/simulation gap to "the memory-less assumption in the system
modelling".  But the hybrid system's pull service time is not
exponential at all: it is the item length (discrete, 1..5) drawn under
the conditional pull-popularity law, plus the interleaved push slot.
This module provides the general-service counterparts:

* :class:`MG1` — Pollaczek–Khinchine mean waiting time,
  ``Wq = λ·E[S²] / (2·(1 − ρ))``;
* :func:`mg1_priority_waits` — Cobham's non-preemptive priority result
  in its general-service form,
  ``W_i = W₀ / ((1 − σ_{i−1})(1 − σ_i))`` with
  ``W₀ = Σ_j λ_j·E[S_j²]/2``;
* :func:`pull_service_moments` — the first two moments of the hybrid
  pull service time straight from an :class:`ItemCatalog`.

With exponential service (``E[S²] = 2/μ²``) these collapse to the
Eq. 18 formulas in :mod:`repro.analysis.priority_mm1` — pinned by test.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..workload.items import ItemCatalog
from .priority_mm1 import PriorityQueueResult

__all__ = ["MG1", "mg1_priority_waits", "pull_service_moments"]


@dataclass(frozen=True)
class MG1:
    """An M/G/1 queue described by its service moments.

    Parameters
    ----------
    lam:
        Poisson arrival rate.
    service_mean:
        ``E[S]``.
    service_second_moment:
        ``E[S²]`` (must satisfy ``E[S²] >= E[S]²``).
    """

    lam: float
    service_mean: float
    service_second_moment: float

    def __post_init__(self) -> None:
        if self.lam <= 0:
            raise ValueError(f"lam must be > 0, got {self.lam}")
        if self.service_mean <= 0:
            raise ValueError(f"service mean must be > 0, got {self.service_mean}")
        if self.service_second_moment < self.service_mean**2 - 1e-12:
            raise ValueError(
                f"E[S^2]={self.service_second_moment} < E[S]^2="
                f"{self.service_mean ** 2} is impossible"
            )
        if self.rho >= 1.0:
            raise ValueError(f"unstable queue: rho={self.rho:.4f} >= 1")

    @property
    def rho(self) -> float:
        """Utilisation ``λ·E[S]``."""
        return self.lam * self.service_mean

    @property
    def scv(self) -> float:
        """Squared coefficient of variation ``Var(S)/E[S]²``."""
        var = self.service_second_moment - self.service_mean**2
        return var / self.service_mean**2

    @property
    def mean_waiting_time(self) -> float:
        """Pollaczek–Khinchine: ``Wq = λ·E[S²] / (2(1 − ρ))``."""
        return self.lam * self.service_second_moment / (2.0 * (1.0 - self.rho))

    @property
    def mean_sojourn_time(self) -> float:
        """``W = Wq + E[S]``."""
        return self.mean_waiting_time + self.service_mean

    @property
    def mean_number_in_queue(self) -> float:
        """``Lq = λ·Wq`` (Little)."""
        return self.lam * self.mean_waiting_time

    @property
    def mean_number_in_system(self) -> float:
        """``L = λ·W`` (Little)."""
        return self.lam * self.mean_sojourn_time


def mg1_priority_waits(
    lambdas: np.ndarray | list[float],
    service_means: np.ndarray | list[float],
    service_second_moments: np.ndarray | list[float],
) -> PriorityQueueResult:
    """Non-preemptive priority M/G/1 waits (general-service Cobham).

    Classes ordered most important first; each class has its own service
    moment pair.  Returns the same result type as
    :func:`repro.analysis.priority_mm1.cobham_waiting_times`.
    """
    lam = np.asarray(lambdas, dtype=float)
    means = np.asarray(service_means, dtype=float)
    seconds = np.asarray(service_second_moments, dtype=float)
    if not (lam.shape == means.shape == seconds.shape) or lam.ndim != 1 or lam.size == 0:
        raise ValueError("need three aligned 1-D vectors")
    if np.any(lam <= 0) or np.any(means <= 0) or np.any(seconds <= 0):
        raise ValueError("all rates and moments must be > 0")
    rho = lam * means
    sigma = np.concatenate([[0.0], np.cumsum(rho)])
    if sigma[-1] >= 1.0:
        raise ValueError(f"unstable queue: total occupancy {sigma[-1]:.4f} >= 1")
    w0 = float(np.sum(lam * seconds) / 2.0)
    waits = w0 / ((1.0 - sigma[:-1]) * (1.0 - sigma[1:]))
    total_lam = float(lam.sum())
    return PriorityQueueResult(
        waiting_times=waits,
        sojourn_times=waits + means,
        mean_waiting_time=float(lam @ waits / total_lam),
        residual=w0,
        occupancies=rho,
    )


def pull_service_moments(
    catalog: ItemCatalog, cutoff: int, slot: float = 0.0
) -> tuple[float, float]:
    """First two moments of the hybrid pull service time.

    The served item's length is distributed over the pull set under the
    *conditional* access law; ``slot`` adds the deterministic interleaved
    push-broadcast time (alternation adjustment), shifting the
    distribution: ``S = L + slot``.

    Returns
    -------
    (mean, second_moment):
        ``E[S]`` and ``E[S²]``.  ``(nan, nan)`` for an all-push split.
    """
    if not 0 <= cutoff <= len(catalog):
        raise ValueError(f"cutoff {cutoff} outside [0, {len(catalog)}]")
    if slot < 0:
        raise ValueError(f"slot must be >= 0, got {slot}")
    mass = catalog.pull_probability(cutoff)
    if mass <= 1e-15 or cutoff >= len(catalog):
        return (float("nan"), float("nan"))
    probs = catalog.probabilities[cutoff:] / mass
    lengths = catalog.lengths[cutoff:] + slot
    mean = float(probs @ lengths)
    second = float(probs @ (lengths * lengths))
    return (mean, second)
