"""``repro.analysis`` — queueing-theoretic models from the paper's §4.

Exact and closed-form stationary analysis: M/M/1 basics, the §4.1 hybrid
birth-death chain (numeric), the §4.2.1 two-class priority queue (exact
CTMC instead of z-transforms), Cobham's multi-class formula (Eq. 18),
Eq. 19 hybrid access time, Little's-law helpers and the analytic-vs-sim
comparator behind Fig. 7.
"""

from .birth_death import BirthDeathSolution, HybridBirthDeathChain
from .erlang import concurrent_blocking_estimate, erlang_b, erlang_c
from .fluid import FluidPrediction, fluid_predict, lead_class_distribution
from .hybrid_delay import AnalysisMode, AnalyticalResult, analyze_hybrid
from .littles import (
    littles_consistency,
    littles_l,
    littles_lambda,
    littles_w,
    relative_error,
)
from .mg1 import MG1, mg1_priority_waits, pull_service_moments
from .mm1 import MM1, mm1_queue_length, mm1_waiting_time
from .preemptive import PreemptiveResult, preemption_gain, preemptive_sojourn_times
from .priority_mm1 import (
    NonPreemptivePriorityQueue,
    PriorityQueueResult,
    cobham_waiting_times,
)
from .transforms import GeneratingFunctions, from_chain
from .two_class import TwoClassPriorityQueue, TwoClassSolution
from .validate import ComparisonRow, compare_results, max_deviation

__all__ = [
    "BirthDeathSolution",
    "HybridBirthDeathChain",
    "AnalysisMode",
    "erlang_b",
    "erlang_c",
    "concurrent_blocking_estimate",
    "AnalyticalResult",
    "analyze_hybrid",
    "FluidPrediction",
    "fluid_predict",
    "lead_class_distribution",
    "littles_consistency",
    "littles_l",
    "littles_lambda",
    "littles_w",
    "relative_error",
    "MM1",
    "mm1_queue_length",
    "mm1_waiting_time",
    "MG1",
    "mg1_priority_waits",
    "pull_service_moments",
    "PreemptiveResult",
    "preemption_gain",
    "preemptive_sojourn_times",
    "NonPreemptivePriorityQueue",
    "PriorityQueueResult",
    "cobham_waiting_times",
    "GeneratingFunctions",
    "from_chain",
    "TwoClassPriorityQueue",
    "TwoClassSolution",
    "ComparisonRow",
    "compare_results",
    "max_deviation",
]
