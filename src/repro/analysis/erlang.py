"""Erlang loss/delay formulas for the concurrent pull-service mode.

In concurrent mode (:class:`~repro.sim.server.HybridServer` with
``pull_mode="concurrent"``) pull transmissions overlap, each holding its
Poisson bandwidth demand for its duration — so a class's reservation
behaves like a trunk of roughly ``B_c / E[demand]`` circuits.  The
classical models:

* **Erlang B** — blocking probability of an M/M/c/c loss system, the
  right first-order model for the per-class admission failures the
  simulator counts;
* **Erlang C** — probability of queueing in M/M/c, useful when admission
  is replaced by waiting.

Both are computed with the standard numerically-stable recurrences.
"""

from __future__ import annotations

import math

__all__ = ["erlang_b", "erlang_c", "concurrent_blocking_estimate"]


def erlang_b(offered_load: float, circuits: int) -> float:
    """Erlang-B blocking probability ``B(E, c)``.

    Parameters
    ----------
    offered_load:
        Offered traffic ``E = λ·E[holding time]`` in Erlangs (>= 0).
    circuits:
        Number of circuits ``c`` (>= 0).

    Notes
    -----
    Uses the stable recurrence ``B(E, 0) = 1``,
    ``B(E, c) = E·B(E, c−1) / (c + E·B(E, c−1))``.
    """
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    if circuits < 0:
        raise ValueError(f"circuits must be >= 0, got {circuits}")
    if offered_load == 0:
        return 0.0 if circuits > 0 else 1.0
    b = 1.0
    for c in range(1, circuits + 1):
        b = offered_load * b / (c + offered_load * b)
    return b


def erlang_c(offered_load: float, circuits: int) -> float:
    """Erlang-C probability of waiting ``C(E, c)`` for M/M/c.

    Requires ``offered_load < circuits`` for stability; returns 1.0 at or
    beyond saturation (every arrival waits).
    """
    if offered_load < 0:
        raise ValueError(f"offered load must be >= 0, got {offered_load}")
    if circuits <= 0:
        raise ValueError(f"circuits must be >= 1, got {circuits}")
    if offered_load >= circuits:
        return 1.0
    b = erlang_b(offered_load, circuits)
    rho = offered_load / circuits
    return b / (1.0 - rho + rho * b)


def concurrent_blocking_estimate(
    class_bandwidth: float,
    demand_mean: float,
    pull_rate: float,
    holding_time: float,
) -> float:
    """First-order Erlang-B estimate of concurrent-mode blocking.

    Parameters
    ----------
    class_bandwidth:
        The class's reservation ``B_c``.
    demand_mean:
        Mean Poisson bandwidth demand per transmission.
    pull_rate:
        Rate of pull transmissions charged to this class.
    holding_time:
        Mean transmission duration (bandwidth holding time).

    Notes
    -----
    Treats the reservation as ``floor(B_c / E[demand])`` unit circuits,
    each transmission occupying one for ``holding_time`` — an
    approximation (real demands are random, not unit), good to first
    order and pinned against the simulator in the tests.
    """
    if demand_mean <= 0:
        return 0.0
    circuits = int(class_bandwidth / demand_mean)
    offered = pull_rate * holding_time
    return erlang_b(offered, circuits)
