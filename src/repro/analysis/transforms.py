"""Numerical z-transform machinery for the §4.1 chain.

The paper derives its §4.1 results through probability generating
functions:

    P₁(z) = Σ_i z^i · p(i, 0)       (push phase, including idle at i=0)
    P₂(z) = Σ_i z^i · p(i, 1)       (pull phase)

and the balance equations collapse to the identity (paper Eq. 4):

    P₂(z) = f · [P₁(z) − p(0,0)] / (1 + ρ − ρz),   ρ = λ/μ₂, f = μ₁/μ₂

with the boundary values ``P₂(1) = ρ`` and ``P₁(1) = 1 − ρ``, from which
``p(0,0) = 1 − ρ − ρ/f`` and the mean queue length (Eq. 5) follow.

Solving the chain numerically (``repro.analysis.birth_death``) gives the
stationary vector directly, so here the generating functions are
*evaluated* from that vector — which lets the test suite verify the
paper's Eq. 4 identity, boundary conditions and derivative relations to
machine precision instead of taking the algebra on faith.
"""

from __future__ import annotations

import numpy as np

from .birth_death import BirthDeathSolution, HybridBirthDeathChain

__all__ = ["GeneratingFunctions", "from_chain"]


class GeneratingFunctions:
    """PGF evaluations of a solved §4.1 chain.

    Parameters
    ----------
    solution:
        Stationary distribution from :meth:`HybridBirthDeathChain.solve`.
    rho, f:
        The paper's load parameters ``λ/μ₂`` and ``μ₁/μ₂``.
    """

    def __init__(self, solution: BirthDeathSolution, rho: float, f: float) -> None:
        self.solution = solution
        self.rho = float(rho)
        self.f = float(f)
        self._powers_cache: dict[float, np.ndarray] = {}

    def _powers(self, z: float) -> np.ndarray:
        powers = self._powers_cache.get(z)
        if powers is None:
            powers = z ** np.arange(len(self.solution.pi_push), dtype=float)
            self._powers_cache[z] = powers
        return powers

    def p1(self, z: float) -> float:
        """``P₁(z) = Σ_i z^i p(i, 0)`` (push/idle phase PGF)."""
        return float(self._powers(z) @ self.solution.pi_push)

    def p2(self, z: float) -> float:
        """``P₂(z) = Σ_i z^i p(i, 1)`` (pull phase PGF)."""
        return float(self._powers(z) @ self.solution.pi_pull)

    def p2_from_identity(self, z: float) -> float:
        """The paper's Eq. 4 right-hand side, ``f·[P₁(z) − p(0,0)] / (1 + ρ − ρz)``.

        Must equal :meth:`p2` for every ``z`` — the §4.1 algebra check.
        """
        denominator = 1.0 + self.rho - self.rho * z
        return self.f * (self.p1(z) - self.solution.idle_probability) / denominator

    def identity_residual(self, zs: np.ndarray | list[float]) -> float:
        """Max |P₂(z) − Eq.4(z)| over the probe points ``zs``."""
        return max(abs(self.p2(z) - self.p2_from_identity(z)) for z in zs)

    def p1_derivative(self, z: float = 1.0, eps: float = 1e-6) -> float:
        """Numerical ``dP₁/dz`` — the paper's ``N`` at ``z = 1``."""
        return (self.p1(z + eps) - self.p1(z - eps)) / (2 * eps)

    def p2_derivative(self, z: float = 1.0, eps: float = 1e-6) -> float:
        """Numerical ``dP₂/dz`` — ``E[L_pull]``'s pull-phase component at 1."""
        return (self.p2(z + eps) - self.p2(z - eps)) / (2 * eps)

    def mean_queue_length(self) -> float:
        """``E[L_pull] = P₁'(1) + P₂'(1)`` (matches the direct expectation)."""
        return self.p1_derivative() + self.p2_derivative()


def from_chain(chain: HybridBirthDeathChain) -> GeneratingFunctions:
    """Solve ``chain`` and wrap its PGFs."""
    return GeneratingFunctions(chain.solve(), rho=chain.rho, f=chain.f)
