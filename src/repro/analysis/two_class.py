"""Exact two-class non-preemptive priority queue (§4.2.1).

The paper attacks the two-class case with a two-dimensional z-transform
(Eqs. 7–13) and concedes that "obtaining a reasonable solution to these
set of stationary equations is almost impossible", settling for expected
values.  Here we instead solve the underlying CTMC *exactly* on a
truncated state space ``(m, n, r)``:

* ``m`` — class-1 (most important) jobs in system,
* ``n`` — class-2 jobs in system,
* ``r`` — class currently in service (0 idle, 1, 2), non-preemptive:
  a finishing server always picks a waiting class-1 job first.

The mean queue sizes ``L₁ = ∂H/∂y``, ``L₂ = ∂H/∂z`` that the paper reads
off its transform are here plain expectations over the stationary
distribution, and the expected waits follow from Little's formula exactly
as in the paper (``E[W_i] = L_i/λ_i``).  Tests verify the solver against
Cobham's closed form (Eq. 18), closing the loop between §4.2.1 and §4.2.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

__all__ = ["TwoClassPriorityQueue", "TwoClassSolution"]


@dataclass(frozen=True)
class TwoClassSolution:
    """Stationary summary of the exact two-class chain.

    ``L`` values count jobs *in system* (queue + service); waits are
    sojourn times from Little's formula and ``waiting_times`` the
    queue-only waits (sojourn minus own mean service).
    """

    mean_jobs: tuple[float, float]
    sojourn_times: tuple[float, float]
    waiting_times: tuple[float, float]
    idle_probability: float
    boundary_mass: float


class TwoClassPriorityQueue:
    """Exact truncated-CTMC solver for two priority classes.

    Parameters
    ----------
    lam1, lam2:
        Poisson arrival rates (class 1 = most important).
    mu1, mu2:
        Exponential service rates of class-1 and class-2 jobs.  The paper
        uses a common rate ``μ₂`` for both; passing distinct rates is
        allowed (non-preemptive Cobham still applies).
    truncation:
        Per-class population cap ``C``.
    """

    def __init__(
        self, lam1: float, lam2: float, mu1: float, mu2: float, truncation: int = 60
    ) -> None:
        if min(lam1, lam2, mu1, mu2) <= 0:
            raise ValueError("all rates must be > 0")
        if truncation < 2:
            raise ValueError(f"truncation must be >= 2, got {truncation}")
        self.lam1, self.lam2 = float(lam1), float(lam2)
        self.mu1, self.mu2 = float(mu1), float(mu2)
        self.truncation = int(truncation)
        rho = lam1 / mu1 + lam2 / mu2
        if rho >= 1.0:
            raise ValueError(f"unstable queue: total occupancy {rho:.4f} >= 1")

    def solve(self) -> TwoClassSolution:
        """Stationary distribution via sparse direct solve."""
        C = self.truncation
        valid: list[tuple[int, int, int]] = [(0, 0, 0)]
        for m in range(C + 1):
            for n in range(C + 1):
                if m >= 1:
                    valid.append((m, n, 1))
                if n >= 1:
                    valid.append((m, n, 2))
        index = {state: i for i, state in enumerate(valid)}
        size = len(valid)
        Q = lil_matrix((size, size))

        def idx(m: int, n: int, r: int) -> int:
            return index[(m, n, r)]

        def add(src: int, dst: int, rate: float) -> None:
            Q[src, dst] += rate
            Q[src, src] -= rate

        for m, n, r in valid:
            s = idx(m, n, r)
            # Arrivals.
            if m < C:
                dst_r = 1 if r == 0 else r
                add(s, idx(m + 1, n, dst_r), self.lam1)
            if n < C:
                dst_r = 2 if r == 0 else r
                add(s, idx(m, n + 1, dst_r), self.lam2)
            # Service completion (non-preemptive head-of-line pick-next).
            if r == 1:
                m2 = m - 1
                if m2 >= 1:
                    add(s, idx(m2, n, 1), self.mu1)
                elif n >= 1:
                    add(s, idx(m2, n, 2), self.mu1)
                else:
                    add(s, idx(0, 0, 0), self.mu1)
            elif r == 2:
                n2 = n - 1
                if m >= 1:
                    add(s, idx(m, n2, 1), self.mu2)
                elif n2 >= 1:
                    add(s, idx(m, n2, 2), self.mu2)
                else:
                    add(s, idx(0, 0, 0), self.mu2)

        A = Q.transpose().tocsr().tolil()
        A[size - 1, :] = 0.0
        for m, n, r in valid:
            A[size - 1, idx(m, n, r)] = 1.0
        b = np.zeros(size)
        b[size - 1] = 1.0
        pi = spsolve(A.tocsr(), b)
        pi = np.maximum(pi, 0.0)
        total = pi.sum()
        if total <= 0:
            raise RuntimeError("degenerate stationary solve")
        pi /= total

        # Expectations over valid states.
        l1 = l2 = idle = boundary = 0.0
        for m, n, r in valid:
            p = float(pi[idx(m, n, r)])
            l1 += m * p
            l2 += n * p
            if (m, n, r) == (0, 0, 0):
                idle = p
            if m == C or n == C:
                boundary += p

        w1 = l1 / self.lam1
        w2 = l2 / self.lam2
        return TwoClassSolution(
            mean_jobs=(l1, l2),
            sojourn_times=(w1, w2),
            waiting_times=(w1 - 1.0 / self.mu1, w2 - 1.0 / self.mu2),
            idle_probability=idle,
            boundary_mass=boundary,
        )
