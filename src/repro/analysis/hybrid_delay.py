"""Expected access time of the hybrid system (the paper's Eq. 19).

Two modes are provided:

* ``"paper"`` — Eq. 19 verbatim:

      E[T] = (1/(2μ₁))·Σ_{i≤K} L_i·P_i + E[W^q_pull]·Σ_{i>K} P_i

  with μ₁, μ₂ under the configured convention and per-class pull waits
  from Cobham (Eq. 18).  Note that under the paper's own μ definition
  (``μ₁ = Σ_{i≤K} P_i·L_i``) the push term is identically ½.  At the
  paper's nominal load (λ′ = 5, mean length 2) the underlying M/M/1-type
  queue is severely *unstable*; waits are reported as ``inf`` then.

* ``"corrected"`` — the model that actually tracks the simulator:

  1. **Rates, not workloads.**  Pull service rate = 1/E[L | pull item];
     push slot = the unweighted mean push length (flat cycles visit every
     push item equally).
  2. **Alternation adjustment.**  Each pull service is preceded by one
     push broadcast, so effective pull service time = E[L|pull] + E[slot].
  3. **Batching fixed point.**  The pull queue aggregates requests per
     item: a request for an already-queued item creates no new work.
     The *entry* arrival rate of item ``i`` with request rate
     ``r_i = λ′·P_i`` and mean queueing time ``W`` is
     ``e_i = r_i / (1 + r_i·W)`` (one entry per service epoch plus the
     requests that pile onto it).  We iterate Cobham ⇄ entry-thinning to
     a fixed point.  This is what keeps the analysis finite — and the
     simulator stable — at the paper's nominal load.

  Per-class expected access time then combines both sides:

      E[T_j] = P_push·(cycle/2 + E[L|push]) + P_pull·(W_j + E[L|pull])

  and prioritized cost is ``q_j · E[T_j]`` exactly as in §4.2.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Mapping, Optional

import numpy as np

from ..core.config import HybridConfig
from ..workload.items import ItemCatalog
from ..workload.clients import ClientPopulation
from .mg1 import mg1_priority_waits, pull_service_moments
from .priority_mm1 import cobham_waiting_times

__all__ = ["AnalyticalResult", "analyze_hybrid", "AnalysisMode"]

AnalysisMode = Literal["paper", "corrected"]


@dataclass(frozen=True)
class AnalyticalResult:
    """Analytical prediction of the hybrid system's QoS metrics.

    Mirrors the headline fields of
    :class:`~repro.sim.metrics.SimulationResult` so the two can be
    compared row by row (Fig. 7).
    """

    mode: AnalysisMode
    cutoff: int
    per_class_delay: Mapping[str, float]
    per_class_pull_wait: Mapping[str, float]
    per_class_cost: Mapping[str, float]
    overall_delay: float
    total_prioritized_cost: float
    push_term: float
    pull_mass: float
    stable: bool
    iterations: int = 0

    def delay_of(self, class_name: str) -> float:
        """Mean delay prediction for one class."""
        return self.per_class_delay[class_name]


def _paper_mode(
    config: HybridConfig,
    catalog: Optional[ItemCatalog] = None,
    population: Optional[ClientPopulation] = None,
) -> AnalyticalResult:
    """Eq. 19 verbatim (see module docstring for caveats)."""
    catalog = catalog if catalog is not None else config.build_catalog()
    population = population if population is not None else config.build_population()
    mu1, mu2 = config.service_rates(catalog)
    pull_mass = catalog.pull_probability(config.cutoff)
    lam_pull = config.arrival_rate * pull_mass
    fractions = population.class_fractions
    lambdas = lam_pull * fractions
    names = config.class_names()
    priorities = config.class_priorities()

    # Push term of Eq. 19: (1/(2 mu1)) * sum_{i<=K} L_i P_i.
    weighted = catalog.weighted_push_length(config.cutoff)
    push_term = weighted / (2.0 * mu1) if mu1 > 0 else 0.0

    mus = np.full(len(names), mu2)
    stable = bool(np.sum(lambdas / mus) < 1.0) if mu2 > 0 and lam_pull > 0 else True
    if lam_pull <= 0:
        waits = np.zeros(len(names))
    elif stable:
        waits = cobham_waiting_times(lambdas, mus).waiting_times
    else:
        waits = np.full(len(names), math.inf)

    delays = {n: push_term + w * pull_mass for n, w in zip(names, waits)}
    costs = {n: q * delays[n] for n, q in zip(names, priorities)}
    overall = float(np.asarray([delays[n] for n in names]) @ fractions)
    return AnalyticalResult(
        mode="paper",
        cutoff=config.cutoff,
        per_class_delay=delays,
        per_class_pull_wait={n: float(w) for n, w in zip(names, waits)},
        per_class_cost=costs,
        overall_delay=overall,
        total_prioritized_cost=sum(costs.values()),
        push_term=push_term,
        pull_mass=pull_mass,
        stable=stable,
    )


def _corrected_mode(
    config: HybridConfig,
    max_iter: int = 200,
    tol: float = 1e-10,
    catalog: Optional[ItemCatalog] = None,
    population: Optional[ClientPopulation] = None,
    service_model: str = "mm1",
) -> AnalyticalResult:
    """Rate-consistent, alternation- and batching-corrected model."""
    catalog = catalog if catalog is not None else config.build_catalog()
    population = population if population is not None else config.build_population()
    K = config.cutoff
    names = config.class_names()
    priorities = config.class_priorities()
    fractions = population.class_fractions

    pull_mass = catalog.pull_probability(K)
    push_mass = catalog.push_probability(K)
    cycle = catalog.broadcast_cycle_length(K)
    mean_push_len = cycle / K if K > 0 else 0.0
    mean_pull_len = catalog.mean_pull_service_time(K) if pull_mass > 0 else 0.0

    # Per-item request rates over the pull set.
    pull_probs = catalog.probabilities[K:]
    request_rates = config.arrival_rate * pull_probs

    # Effective service time of one pull entry: its own transmission plus
    # the interleaved push slot (alternation adjustment).  With an empty
    # push set there is no interleaving.
    slot = mean_push_len if K > 0 else 0.0
    service_time = mean_pull_len + slot

    if service_model not in ("mm1", "mg1"):
        raise ValueError(f"unknown service model {service_model!r}")
    iterations = 0
    waits = np.zeros(len(names))
    lam_entries_final = 0.0
    if pull_mass > 0 and len(request_rates) > 0:
        mus = np.full(len(names), 1.0 / service_time)
        if service_model == "mg1":
            # True service-time moments: item length under the conditional
            # pull law, shifted by the deterministic push slot.
            svc_mean, svc_second = pull_service_moments(catalog, K, slot=slot)
            svc_means = np.full(len(names), svc_mean)
            svc_seconds = np.full(len(names), svc_second)

        def mean_wait(w_bar: float) -> tuple[float, np.ndarray]:
            """Priority-queue mean wait given the batching level w_bar.

            Returns (inf, zeros) while the thinned system stays saturated.
            """
            entry_rates = request_rates / (1.0 + request_rates * w_bar)
            lambdas = float(entry_rates.sum()) * fractions
            if float(np.sum(lambdas / mus)) >= 1.0:
                return (math.inf, np.zeros(len(names)))
            if service_model == "mg1":
                result = mg1_priority_waits(lambdas, svc_means, svc_seconds)
            else:
                result = cobham_waiting_times(lambdas, mus)
            return (float(result.mean_waiting_time), result.waiting_times)

        def entry_rate(w_bar: float) -> float:
            return float(np.sum(request_rates / (1.0 + request_rates * w_bar)))

        def queued_items(w_bar: float) -> float:
            """Expected distinct items in the pull queue at batching level w_bar.

            Item ``i`` alternates absent (mean 1/r_i until the next request)
            and queued (mean w_bar until served), so it is present a
            fraction ``r_i·w/(1 + r_i·w)`` of the time.
            """
            return float(np.sum(request_rates * w_bar / (1.0 + request_rates * w_bar)))

        # Regime 1 (light load): stable without batching — plain Cobham.
        w_no_batching, waits0 = mean_wait(0.0)
        w_final = 0.0
        if math.isfinite(w_no_batching):
            waits = waits0
            w_final = w_no_batching
        else:
            # Regime 2 (batching-stabilised): fixed point of the decreasing
            # map w ↦ CobhamWait(thinned by w), found by bisection.
            lo = 0.0
            hi = service_time
            while not math.isfinite(mean_wait(hi)[0]) or mean_wait(hi)[0] > hi:
                hi *= 2.0
                if hi > 1e12:  # pragma: no cover - defensive
                    raise RuntimeError("batching fixed point failed to bracket")
            for step in range(1, max_iter + 1):
                iterations = step
                mid = 0.5 * (lo + hi)
                w_mid, waits_mid = mean_wait(mid)
                if not math.isfinite(w_mid) or w_mid > mid:
                    lo = mid
                else:
                    hi = mid
                    waits = waits_mid
                    w_final = mid
                if hi - lo <= tol * max(1.0, hi):
                    break

            # Regime 3 (deep saturation): the queue holds a bounded set of
            # distinct items which the scheduler cycles through, so an
            # entry's wait is about half a tour of the queued set:
            # w = service_time·n_q(w)/2.  Near saturation this bound is
            # tighter than the Cobham fixed point (whose σ → 1 blow-up is
            # an artifact of the unbounded-queue assumption); use the
            # smaller of the two and rescale the class spread to match.
            lo_s, hi_s = 0.0, max(w_final, service_time * len(request_rates))
            for _ in range(max_iter):
                mid = 0.5 * (lo_s + hi_s)
                if service_time * queued_items(mid) / 2.0 > mid:
                    lo_s = mid
                else:
                    hi_s = mid
                if hi_s - lo_s <= tol * max(1.0, hi_s):
                    break
            w_sat = 0.5 * (lo_s + hi_s)
            # The tour bound only has a meaningful (positive) fixed point
            # when the map's slope at 0, service_time·Σr_i/2, exceeds 1;
            # otherwise the bisection collapses to w = 0 and the Cobham
            # fixed point is the binding regime.
            if service_time < w_sat < w_final:
                mean_cobham = float(fractions @ waits)
                if mean_cobham > 0:
                    waits = waits * (w_sat / mean_cobham)
                w_final = w_sat
        # The *served* pull rate can never exceed one pull per alternation
        # round; in saturation the raw entry-creation estimate overshoots.
        lam_entries_final = min(entry_rate(w_final), 1.0 / service_time)

        # α-aware class spread: Cobham assumes strict priority order, which
        # the importance-factor policy only realises at α = 0.  As α → 1 the
        # policy ignores priority entirely and all classes see the same
        # wait.  Interpolating toward the arrival-weighted mean preserves
        # the work-conservation invariant at every α.
        mean_wait_overall = float(fractions @ waits)
        waits = (1.0 - config.alpha) * waits + config.alpha * mean_wait_overall

    # Effective broadcast cycle: each of the K push slots may be followed
    # by an interleaved pull transmission, stretching the cycle.  With
    # entry rate λ_e, one cycle of duration T carries λ_e·T pull services:
    # T = cycle + λ_e·T·E[L|pull]  ⇒  T = cycle / (1 − λ_e·E[L|pull]).
    if K > 0:
        stretch_factor = 1.0 - lam_entries_final * (mean_pull_len if pull_mass > 0 else 0.0)
        effective_cycle = cycle / max(stretch_factor, 1e-9)
        push_delay = effective_cycle / 2.0 + mean_push_len
    else:
        push_delay = 0.0
    pull_sojourns = waits + mean_pull_len
    delays = {
        n: push_mass * push_delay + pull_mass * float(s)
        for n, s in zip(names, pull_sojourns)
    }
    costs = {n: q * delays[n] for n, q in zip(names, priorities)}
    overall = float(np.asarray([delays[n] for n in names]) @ fractions)
    return AnalyticalResult(
        mode="corrected",
        cutoff=K,
        per_class_delay=delays,
        per_class_pull_wait={n: float(w) for n, w in zip(names, waits)},
        per_class_cost=costs,
        overall_delay=overall,
        total_prioritized_cost=sum(costs.values()),
        push_term=push_mass * push_delay,
        pull_mass=pull_mass,
        stable=True,
        iterations=iterations,
    )


def analyze_hybrid(
    config: HybridConfig,
    mode: AnalysisMode = "corrected",
    catalog: Optional[ItemCatalog] = None,
    population: Optional[ClientPopulation] = None,
    service_model: str = "mm1",
) -> AnalyticalResult:
    """Analytical per-class delay/cost prediction for ``config``.

    Parameters
    ----------
    config:
        System description.
    mode:
        ``"paper"`` for Eq. 19 verbatim, ``"corrected"`` (default) for the
        simulator-faithful model (see module docstring).
    catalog, population:
        Optional overrides replacing the objects ``config`` would build —
        used by the adaptive controller to analyse *estimated* demand
        instead of ground truth.
    service_model:
        Corrected mode only: ``"mm1"`` (default; the paper's exponential
        assumption, which also tracks the simulator best in the
        saturation-dominated regime) or ``"mg1"`` using the true
        item-length moments via Pollaczek–Khinchine/general Cobham.
    """
    if mode == "paper":
        return _paper_mode(config, catalog=catalog, population=population)
    if mode == "corrected":
        return _corrected_mode(
            config, catalog=catalog, population=population, service_model=service_model
        )
    raise ValueError(f"unknown analysis mode {mode!r}")
