"""Exact steady state of the paper's §4.1 hybrid birth-death chain.

The model (Figure 2 of the paper): the pull queue holds ``i`` items and
the server phase ``j`` is 0 (broadcasting a push item) or 1 (serving a
pull item).  Transitions

* arrival (rate λ):          ``(i, j) → (i+1, j)``
* push completion (rate μ₁): ``(i, 0) → (i, 1)``   for ``i ≥ 1``
* pull completion (rate μ₂): ``(i, 1) → (i−1, 0)``

with ``(0, 0)`` the idle state (an arrival there starts a push phase:
``(0,0) → (1,0)``).  The paper derives, via z-transforms,

* idle probability  ``p(0,0) = 1 − ρ − ρ/f``  with ``ρ = λ/μ₂``,
  ``f = μ₁/μ₂``;
* pull-phase occupancy ``Σ p(i,1) = ρ`` and busy push-phase occupancy
  ``ρ/f``.

We instead solve the truncated CTMC *numerically* (sparse direct solve),
which yields every stationary quantity — including the mean pull-queue
length ``E[L_pull]`` that the paper's Eq. 5 leaves in terms of an
unevaluated unknown — and lets tests verify the paper's closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import lil_matrix
from scipy.sparse.linalg import spsolve

__all__ = ["HybridBirthDeathChain", "BirthDeathSolution"]


@dataclass(frozen=True)
class BirthDeathSolution:
    """Stationary distribution and summary statistics of the chain.

    Attributes
    ----------
    pi_push:
        ``π(i, 0)`` for ``i = 0..C`` (index 0 is the idle state).
    pi_pull:
        ``π(i, 1)`` for ``i = 0..C`` (``π(0,1) = 0`` structurally).
    """

    pi_push: np.ndarray
    pi_pull: np.ndarray

    @property
    def idle_probability(self) -> float:
        """``p(0,0)`` — paper closed form ``1 − ρ − ρ/f``."""
        return float(self.pi_push[0])

    @property
    def pull_occupancy(self) -> float:
        """Fraction of time serving pull items — paper: ``ρ``."""
        return float(self.pi_pull.sum())

    @property
    def push_busy_occupancy(self) -> float:
        """Fraction of time broadcasting while pull work waits — paper: ``ρ/f``."""
        return float(self.pi_push[1:].sum())

    @property
    def mean_pull_queue_length(self) -> float:
        """``E[L_pull] = Σ_i i·(π(i,0) + π(i,1))``."""
        i = np.arange(len(self.pi_push), dtype=float)
        return float(i @ self.pi_push + i @ self.pi_pull)

    @property
    def mean_queue_during_push(self) -> float:
        """The paper's ``N``: mean pull-queue length while in push phase.

        Conditional expectation ``E[i | j = 0, i ≥ 1]``-weighted as the
        paper uses it — the derivative of ``P₁(z)`` at 1, i.e. the
        *unconditional* sum ``Σ i·π(i,0)``.
        """
        i = np.arange(len(self.pi_push), dtype=float)
        return float(i @ self.pi_push)


class HybridBirthDeathChain:
    """Truncated CTMC solver for the §4.1 model.

    Parameters
    ----------
    lam:
        Pull arrival rate ``λ`` (already thinned by the pull mass).
    mu1:
        Push service rate ``μ₁``.
    mu2:
        Pull service rate ``μ₂``.
    truncation:
        Largest pull-queue length ``C`` represented.  Pick large enough
        that the tail mass is negligible; :meth:`solve` reports the mass
        at the boundary for a self-check.
    """

    def __init__(self, lam: float, mu1: float, mu2: float, truncation: int = 400) -> None:
        if min(lam, mu1, mu2) <= 0:
            raise ValueError(f"rates must be > 0, got lam={lam}, mu1={mu1}, mu2={mu2}")
        if truncation < 2:
            raise ValueError(f"truncation must be >= 2, got {truncation}")
        self.lam = float(lam)
        self.mu1 = float(mu1)
        self.mu2 = float(mu2)
        self.truncation = int(truncation)

    # -- paper quantities -------------------------------------------------------
    @property
    def rho(self) -> float:
        """``ρ = λ/μ₂`` — pull occupancy."""
        return self.lam / self.mu2

    @property
    def f(self) -> float:
        """``f = μ₁/μ₂``."""
        return self.mu1 / self.mu2

    @property
    def total_load(self) -> float:
        """``ρ + ρ/f = λ(1/μ₂ + 1/μ₁)`` — must be < 1 for stability."""
        return self.rho + self.rho / self.f

    def is_stable(self) -> bool:
        """Whether the alternating system has a stationary distribution."""
        return self.total_load < 1.0

    def idle_probability_closed_form(self) -> float:
        """The paper's ``p(0,0) = 1 − ρ − ρ/f``."""
        return 1.0 - self.rho - self.rho / self.f

    # -- numeric solution ----------------------------------------------------------
    def _state_index(self, i: int, j: int) -> int:
        """Pack state (i, j) into a flat index.

        Layout: index 0 = (0,0); then for i = 1..C: (i,0) ↦ 2i−1,
        (i,1) ↦ 2i.
        """
        if i == 0:
            if j != 0:
                raise ValueError("state (0,1) does not exist")
            return 0
        return 2 * i - 1 + j

    def solve(self) -> BirthDeathSolution:
        """Stationary distribution by direct sparse solve of ``πQ = 0``.

        Raises
        ------
        ValueError
            If the chain is unstable (no stationary distribution).
        """
        if not self.is_stable():
            raise ValueError(
                f"unstable chain: rho + rho/f = {self.total_load:.4f} >= 1"
            )
        C = self.truncation
        n = 2 * C + 1
        Q = lil_matrix((n, n))

        def add(src: int, dst: int, rate: float) -> None:
            Q[src, dst] += rate
            Q[src, src] -= rate

        idx = self._state_index
        # Idle state: arrival starts a push phase.
        add(idx(0, 0), idx(1, 0), self.lam)
        for i in range(1, C + 1):
            # Push phase (i, 0).
            if i < C:
                add(idx(i, 0), idx(i + 1, 0), self.lam)
            add(idx(i, 0), idx(i, 1), self.mu1)
            # Pull phase (i, 1).
            if i < C:
                add(idx(i, 1), idx(i + 1, 1), self.lam)
            add(idx(i, 1), idx(i - 1, 0) if i > 1 else idx(0, 0), self.mu2)

        # Solve pi Q = 0 with sum(pi) = 1: replace the last balance
        # equation with the normalisation condition.
        A = Q.transpose().tocsr().tolil()
        A[n - 1, :] = 1.0
        b = np.zeros(n)
        b[n - 1] = 1.0
        pi = spsolve(A.tocsr(), b)
        pi = np.maximum(pi, 0.0)
        pi /= pi.sum()

        pi_push = np.zeros(C + 1)
        pi_pull = np.zeros(C + 1)
        pi_push[0] = pi[0]
        for i in range(1, C + 1):
            pi_push[i] = pi[idx(i, 0)]
            pi_pull[i] = pi[idx(i, 1)]
        return BirthDeathSolution(pi_push=pi_push, pi_pull=pi_pull)

    def boundary_mass(self, solution: BirthDeathSolution) -> float:
        """Probability mass at the truncation boundary (should be ≈ 0)."""
        return float(solution.pi_push[-1] + solution.pi_pull[-1])

    def mean_pull_waiting_time(self) -> float:
        """``E[W_pull]`` via Little's law on the numeric ``E[L_pull]``."""
        solution = self.solve()
        return solution.mean_pull_queue_length / self.lam
