"""Analytic-vs-simulation comparison (the Fig. 7 machinery).

Pairs an :class:`~repro.analysis.hybrid_delay.AnalyticalResult` with a
:class:`~repro.sim.metrics.SimulationResult` (or replication aggregate)
and reports per-class deviations — the quantity the paper summarises as
"a minor 10 % deviation".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..sim.metrics import SimulationResult
from ..sim.runner import ReplicatedResult
from .hybrid_delay import AnalyticalResult
from .littles import relative_error

__all__ = ["ComparisonRow", "compare_results"]


@dataclass(frozen=True)
class ComparisonRow:
    """One class's analytic vs simulated delay."""

    class_name: str
    analytical: float
    simulated: float

    @property
    def deviation(self) -> float:
        """Relative deviation ``|analytic − sim| / sim``."""
        return relative_error(self.analytical, self.simulated)


def compare_results(
    analytical: AnalyticalResult,
    simulated: SimulationResult | ReplicatedResult,
) -> list[ComparisonRow]:
    """Per-class comparison rows, most important class first."""
    if isinstance(simulated, ReplicatedResult):
        sim_delays: Mapping[str, float] = simulated.per_class_delays()
    else:
        sim_delays = simulated.per_class_delay
    rows = []
    for name, value in analytical.per_class_delay.items():
        if name not in sim_delays:
            raise KeyError(f"class {name!r} missing from simulation result")
        rows.append(
            ComparisonRow(class_name=name, analytical=value, simulated=sim_delays[name])
        )
    return rows


def max_deviation(rows: list[ComparisonRow]) -> float:
    """Largest finite per-class deviation (``nan`` if none are finite)."""
    finite = [r.deviation for r in rows if not math.isnan(r.deviation)]
    return max(finite) if finite else math.nan
