"""Preemptive-resume priority queue — the road not taken by the paper.

§4.2.1 assumes "the most important items have the right to get service
before the second important item *without preemption*".  This module
provides the preemptive-resume counterpart (Gross & Harris, the paper's
own reference [4]) so the design choice can be quantified: how much
premium delay does non-preemption cost, and what would preemption do to
the basic classes?

For M/M/1 with classes ``1..n`` (most important first), exponential
service at per-class rates ``μ_j``, the preemptive-resume *sojourn* time
of class ``i`` depends only on classes ``1..i``:

    E[T_i] = (1/μ_i) / (1 − σ_{i−1})
             + (Σ_{j≤i} ρ_j/μ_j) / ((1 − σ_{i−1})(1 − σ_i))

with ``ρ_j = λ_j/μ_j`` and ``σ_i = Σ_{j≤i} ρ_j``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .priority_mm1 import cobham_waiting_times

__all__ = ["PreemptiveResult", "preemptive_sojourn_times", "preemption_gain"]


@dataclass(frozen=True)
class PreemptiveResult:
    """Per-class stationary times under preemptive-resume priority.

    Attributes
    ----------
    sojourn_times:
        ``E[T_i]`` including service, most important class first.
    waiting_times:
        ``E[T_i] − 1/μ_i``.
    occupancies:
        ``ρ_j`` per class.
    """

    sojourn_times: np.ndarray
    waiting_times: np.ndarray
    occupancies: np.ndarray


def preemptive_sojourn_times(
    lambdas: np.ndarray | list[float],
    mus: np.ndarray | list[float],
) -> PreemptiveResult:
    """Preemptive-resume per-class sojourn times (Gross & Harris).

    Parameters
    ----------
    lambdas, mus:
        Per-class arrival and service rates, most important first.

    Raises
    ------
    ValueError
        On malformed inputs or instability (``σ_n >= 1``).
    """
    lam = np.asarray(lambdas, dtype=float)
    mu = np.asarray(mus, dtype=float)
    if lam.shape != mu.shape or lam.ndim != 1 or lam.size == 0:
        raise ValueError(f"need matching 1-D rate vectors, got {lam.shape} and {mu.shape}")
    if np.any(lam <= 0) or np.any(mu <= 0):
        raise ValueError("all rates must be > 0")
    rho = lam / mu
    sigma = np.concatenate([[0.0], np.cumsum(rho)])
    if sigma[-1] >= 1.0:
        raise ValueError(f"unstable queue: total occupancy {sigma[-1]:.4f} >= 1")

    partial_residual = np.cumsum(rho / mu)  # Σ_{j<=i} rho_j/mu_j
    sojourn = (1.0 / mu) / (1.0 - sigma[:-1]) + partial_residual / (
        (1.0 - sigma[:-1]) * (1.0 - sigma[1:])
    )
    return PreemptiveResult(
        sojourn_times=sojourn,
        waiting_times=sojourn - 1.0 / mu,
        occupancies=rho,
    )


def preemption_gain(
    lambdas: np.ndarray | list[float],
    mus: np.ndarray | list[float],
) -> np.ndarray:
    """Per-class sojourn ratio non-preemptive / preemptive (>1 = preemption wins).

    The top class always gains from preemption (ratios > 1); the bottom
    class always loses (ratio < 1) — quantifying the §4.2.1 trade-off.
    """
    lam = np.asarray(lambdas, dtype=float)
    mu = np.asarray(mus, dtype=float)
    non_preemptive = cobham_waiting_times(lam, mu).sojourn_times
    preemptive = preemptive_sojourn_times(lam, mu).sojourn_times
    return np.asarray(non_preemptive) / preemptive
