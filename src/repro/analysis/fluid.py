"""Fluid / mean-field predictor for the population-aggregated scale path.

At population size ``N`` with per-client request rate ``λ`` the hybrid
system sees an aggregate Poisson stream of rate ``λ′ = N·λ``; as
``N → ∞`` (rates fixed) the per-class QoS metrics concentrate around a
deterministic fluid limit.  This module evaluates that limit so the
``n-ladder`` experiment can check the DES against it at every rung.
Two regimes are solved and the binding (smaller-wait) one is reported:

* **Light load** — the simulator-faithful corrected analysis
  (:func:`~repro.analysis.hybrid_delay.analyze_hybrid`): alternation- and
  batching-corrected Cobham waits.  A mean-field *purity collapse* is
  applied on top: a tagged class-``j`` request waits with its group, and
  a mixed group is scored by its aggregate priority mass, so the Cobham
  class spread only applies while the group stays pure class ``j``
  (probability ``π_j → 0`` as batching grows, collapsing every class to
  the common wait — exactly what the DES exhibits).

* **Saturation (equalized Eq. 1 scores)** — when every pull item stays
  queued, the scheduler serves item ``i`` each time its importance
  factor ``γ_i ≈ R_i·c_i`` reaches the running service threshold, where
  ``c_i = α/L_i² + (1−α)·q̄`` (requests accumulate at rate ``r_i``, each
  carrying mean priority mass ``q̄``).  Items are therefore attempted in
  proportion to ``r_i·c_i`` — short items far more often under the
  stretch term — and the per-item service period, attempt rate and
  admitted-transmission time budget form a fixed point solved here by
  damped iteration.  A tagged request arrives uniformly inside its
  item's period, so it waits half of it.

* **Blocking** uses a *lead-class composition* model of the §3 bandwidth
  pools in both regimes.  A pull transmission's Poisson(``m``) demand is
  charged to the most important class among the requests batched into
  it, and the whole group is dropped when the pool cannot cover the
  demand.  Over a batching window ``w`` class-``k`` co-requests for item
  ``i`` arrive as Poisson(``r_i·f_k·w``), so lead-class probabilities
  are differences of exponentials and the per-pool admission failure is
  the exact Poisson tail ``P[Poisson(m) > B_k]``
  (:func:`~repro.core.bandwidth.poisson_tail`).  Rejected groups consume
  their interleaved push slot but no transmission time, which feeds back
  into the saturated time budget.

The model covers the serial pull-service discipline (the paper's §3
semantics, one transmission holding bandwidth at a time); concurrent
mode admits overlapping holds and needs an Erlang-style occupancy model
(:func:`~repro.analysis.erlang.concurrent_blocking_estimate`) instead.

Consistency invariants (property-tested in ``tests/analysis/test_fluid.py``):

* the lead-class distribution is a proper distribution (rows sum to 1);
* per-class backlog satisfies Little's law ``L_j = λ′·f_j·P_pull·W_j``;
* throughput + blocked rate conserves the offered load exactly;
* overall delay is monotone non-decreasing in the aggregate load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..core.bandwidth import poisson_tail
from ..core.config import HybridConfig
from .hybrid_delay import AnalysisMode, AnalyticalResult, analyze_hybrid

__all__ = ["FluidPrediction", "fluid_predict", "lead_class_distribution"]


def lead_class_distribution(
    request_rates: np.ndarray,
    item_weights: np.ndarray,
    class_fractions: np.ndarray,
    mean_wait: float,
) -> np.ndarray:
    """``P[group lead class = k | tagged request class = j]`` as a (J, J) matrix.

    Parameters
    ----------
    request_rates:
        Aggregate request rate per pull item (``r_i = λ′·p_i``).
    item_weights:
        Probability that a tagged pull request targets item ``i``
        (conditional pull law ``p_i / P_pull``); must sum to 1.
    class_fractions:
        Class mix ``f_j`` of the request stream, rank order.
    mean_wait:
        Group lifetime ``w`` — the batching window during which
        co-requests accumulate.

    Notes
    -----
    While a tagged class-``j`` request waits, class-``k`` co-requests for
    its item arrive as Poisson(``r_i·f_k·w``).  With ``F_k = Σ_{m≤k} f_m``:

        P[lead = k | item i] = exp(−r_i·w·F_{k−1}) − exp(−r_i·w·F_k)   (k < j)
        P[lead = j | item i] = exp(−r_i·w·F_{j−1})

    (the tagged request itself caps the lead at ``j``).  The telescoping
    sum makes every row an exact probability distribution.
    """
    num_classes = len(class_fractions)
    if len(request_rates) == 0:
        return np.eye(num_classes)
    exposure = np.asarray(request_rates, dtype=float) * max(mean_wait, 0.0)
    cum = np.concatenate([[0.0], np.cumsum(np.asarray(class_fractions, dtype=float))])
    # survivors[k][i] = P[no class <= k-1 co-request on item i] = exp(-r_i w F_{k-1})
    survivors = np.exp(-np.outer(cum, exposure))
    weights = np.asarray(item_weights, dtype=float)
    matrix = np.zeros((num_classes, num_classes))
    for tagged in range(num_classes):
        for lead in range(tagged):
            matrix[tagged, lead] = float(
                weights @ (survivors[lead] - survivors[lead + 1])
            )
        matrix[tagged, tagged] = float(weights @ survivors[tagged])
    return matrix


@dataclass(frozen=True)
class _SaturatedSolution:
    """Fixed point of the equalized-score saturation model."""

    attempt_rate: float
    periods: np.ndarray
    mean_wait: float
    pull_delay: float
    push_delay: float
    block_given_pull: np.ndarray
    lead: np.ndarray


def _solve_saturated(
    request_rates: np.ndarray,
    lengths: np.ndarray,
    item_weights: np.ndarray,
    fractions: np.ndarray,
    priorities: np.ndarray,
    alpha: float,
    slot: float,
    num_push: int,
    tails: np.ndarray,
    max_iter: int = 200,
    tol: float = 1e-10,
) -> _SaturatedSolution:
    """Solve the saturated regime's attempt-rate fixed point.

    Every pull item stays queued; item ``i`` is attempted in proportion
    to ``r_i·c_i`` (Eq. 1 with requests accruing at rate ``r_i``), each
    attempt is admitted against its group's lead-class pool, and the
    wall-clock budget ``A·(slot + Σ share_i·(1−p_rej,i)·L_i) = 1``
    closes the loop.
    """
    q_bar = float(fractions @ priorities)
    c = alpha / (lengths * lengths) + (1.0 - alpha) * q_bar
    shares = request_rates * c
    shares = shares / shares.sum()
    cum = np.concatenate([[0.0], np.cumsum(fractions)])

    attempt_rate = 1.0 / (slot + float(shares @ lengths))
    for _ in range(max_iter):
        periods = 1.0 / (attempt_rate * shares)
        exposure = request_rates * periods
        survivors = np.exp(-np.outer(cum, exposure))
        nonempty = 1.0 - survivors[-1]
        # Group-level lead distribution (conditioned on a non-empty group).
        group_lead = (survivors[:-1] - survivors[1:]) / np.maximum(nonempty, 1e-300)
        p_rej = tails @ group_lead
        new_rate = 1.0 / (slot + float(shares @ ((1.0 - p_rej) * lengths)))
        if abs(new_rate - attempt_rate) <= tol * max(1.0, attempt_rate):
            attempt_rate = new_rate
            break
        attempt_rate = 0.5 * (attempt_rate + new_rate)
    periods = 1.0 / (attempt_rate * shares)
    survivors = np.exp(-np.outer(cum, request_rates * periods))

    # Tagged-request view: arrival lands uniformly inside its item's
    # period, waiting half of it; co-requests over the full period set
    # the group's lead class.
    num_classes = len(fractions)
    lead = np.zeros((num_classes, num_classes))
    block_given_pull = np.zeros(num_classes)
    for tagged in range(num_classes):
        for k in range(tagged):
            lead[tagged, k] = float(item_weights @ (survivors[k] - survivors[k + 1]))
        lead[tagged, tagged] = float(item_weights @ survivors[tagged])
        block_given_pull[tagged] = float(
            sum(lead[tagged, k] * tails[k] for k in range(tagged + 1))
        )
    mean_wait = float(item_weights @ (periods / 2.0))
    pull_delay = float(item_weights @ (periods / 2.0 + lengths))
    push_delay = num_push / (2.0 * attempt_rate) + slot if num_push > 0 else 0.0
    return _SaturatedSolution(
        attempt_rate=attempt_rate,
        periods=periods,
        mean_wait=mean_wait,
        pull_delay=pull_delay,
        push_delay=push_delay,
        block_given_pull=block_given_pull,
        lead=lead,
    )


@dataclass(frozen=True)
class FluidPrediction:
    """Mean-field QoS prediction for one population size.

    Rates are aggregate (requests per broadcast time unit); ``backlog``
    is the stationary number of waiting pull requests per class (Little's
    law over the queueing wait — blocked requests wait too, since
    admission happens at service start).  ``regime`` names the binding
    model: ``"light"`` (corrected Cobham) or ``"saturated"``
    (equalized-score tour).
    """

    num_clients: int
    arrival_rate: float
    pull_mass: float
    regime: str
    per_class_delay: Mapping[str, float]
    per_class_pull_wait: Mapping[str, float]
    per_class_blocking: Mapping[str, float]
    per_class_arrival_rate: Mapping[str, float]
    per_class_blocked_rate: Mapping[str, float]
    per_class_throughput: Mapping[str, float]
    per_class_backlog: Mapping[str, float]
    overall_delay: float
    overall_blocking: float
    lead_class_matrix: np.ndarray
    analytical: AnalyticalResult

    def delay_of(self, class_name: str) -> float:
        """Mean access-time prediction for one class."""
        return self.per_class_delay[class_name]

    def blocking_of(self, class_name: str) -> float:
        """Predicted blocked fraction of one class's requests."""
        return self.per_class_blocking[class_name]


def fluid_predict(
    config: HybridConfig,
    mode: AnalysisMode = "corrected",
    service_model: str = "mm1",
) -> FluidPrediction:
    """Evaluate the fluid limit of ``config`` (serial pull service).

    Delays take the binding of the light-load corrected analysis
    (:func:`analyze_hybrid`) and the saturated equalized-score model;
    blocking adds the lead-class composition model over the §3 per-class
    bandwidth pools (see module docstring).  The prediction depends on
    ``N`` only through the aggregate rate ``λ′ = config.arrival_rate``,
    which is exactly why the population-aggregated engine can match it
    at any scale.
    """
    analytical = analyze_hybrid(config, mode=mode, service_model=service_model)
    catalog = config.build_catalog()
    population = config.build_population()
    names = config.class_names()
    fractions = np.asarray(population.class_fractions, dtype=float)
    priorities = np.asarray(config.class_priorities(), dtype=float)
    pull_mass = catalog.pull_probability(config.cutoff)
    push_mass = catalog.push_probability(config.cutoff)
    K = config.cutoff

    capacities = config.class_bandwidth()
    tails = np.asarray(
        [poisson_tail(config.bandwidth_demand_mean, float(c)) for c in capacities]
    )

    waits_a = np.asarray([analytical.per_class_pull_wait[n] for n in names])
    waits_a = np.where(np.isfinite(waits_a), waits_a, 0.0)
    mean_wait_a = float(fractions @ waits_a)

    regime = "light"
    if pull_mass > 0:
        pull_probs = catalog.probabilities[K:]
        lengths = np.asarray([catalog[i].length for i in range(K, config.num_items)])
        request_rates = config.arrival_rate * pull_probs
        item_weights = pull_probs / pull_mass
        slot = catalog.broadcast_cycle_length(K) / K if K > 0 else 0.0

        saturated = _solve_saturated(
            request_rates,
            lengths,
            item_weights,
            fractions,
            priorities,
            config.alpha,
            slot,
            K,
            tails,
        )
        if saturated.mean_wait < mean_wait_a:
            regime = "saturated"
            waits = np.full(len(names), saturated.mean_wait)
            lead = saturated.lead
            block_given_pull = saturated.block_given_pull
            push_delay = saturated.push_delay
            pull_sojourns = np.full(len(names), saturated.pull_delay)
        else:
            lead = lead_class_distribution(
                request_rates, item_weights, fractions, mean_wait_a
            )
            block_given_pull = lead @ tails
            # Mean-field class-spread collapse: the Cobham spread applies
            # only while a tagged request's group stays pure — the
            # no-co-arrival probability π_j over the batching window.
            purity = np.asarray(
                [
                    float(
                        item_weights
                        @ np.exp(-request_rates * mean_wait_a * (1.0 - f))
                    )
                    for f in fractions
                ]
            )
            waits = purity * waits_a + (1.0 - purity) * mean_wait_a
            push_delay = analytical.push_term / push_mass if push_mass > 0 else 0.0
            pull_sojourns = waits + catalog.mean_pull_service_time(K)
    else:
        lead = np.eye(len(names))
        block_given_pull = np.zeros(len(names))
        waits = waits_a
        push_delay = analytical.push_term / push_mass if push_mass > 0 else 0.0
        pull_sojourns = waits

    blocking = pull_mass * block_given_pull

    lam = config.arrival_rate * fractions
    blocked_rate = lam * blocking
    throughput = lam - blocked_rate
    # Blocked groups wait the full queueing time before the admission
    # check, so backlog counts every pull request: L_j = λ_j·P_pull·W_j.
    backlog = lam * pull_mass * waits

    # Access time over *satisfied* requests (the DES's delay estimator):
    # push requests always complete; a blocked pull group records no delay.
    satisfied_mass = push_mass + pull_mass * (1.0 - block_given_pull)
    delays = (
        push_mass * push_delay + pull_mass * (1.0 - block_given_pull) * pull_sojourns
    ) / np.maximum(satisfied_mass, 1e-300)

    def as_map(values: np.ndarray) -> dict[str, float]:
        return {n: float(v) for n, v in zip(names, values)}

    overall_blocking = float(fractions @ blocking)
    return FluidPrediction(
        num_clients=config.num_clients,
        arrival_rate=config.arrival_rate,
        pull_mass=pull_mass,
        regime=regime,
        per_class_delay=as_map(delays),
        per_class_pull_wait=as_map(waits),
        per_class_blocking=as_map(blocking),
        per_class_arrival_rate=as_map(lam),
        per_class_blocked_rate=as_map(blocked_rate),
        per_class_throughput=as_map(throughput),
        per_class_backlog=as_map(backlog),
        overall_delay=float(fractions @ delays),
        overall_blocking=overall_blocking,
        lead_class_matrix=lead,
        analytical=analytical,
    )
