"""Non-preemptive priority queue waiting times (Cobham), §4.2.2 / Eq. 18.

For a single server fed by ``max`` Poisson classes (class 1 the most
important), exponential service of class ``j`` at rate ``μ_{2j}``,
occupancies ``ρ_j = λ_j/μ_{2j}``, partial sums ``σ_j = Σ_{i≤j} ρ_i``,
Cobham's classic result for the *non-preemptive* discipline gives

    E[W^(i)] = W₀ / ((1 − σ_{i−1})(1 − σ_i)),
    W₀ = Σ_j ρ_j / μ_{2j}     (mean residual service in sight)

which is exactly the paper's Eq. 18, and the overall pull wait is the
arrival-weighted mixture ``E[W] = Σ_i (λ_i/λ)·E[W^(i)]``.

An *alternation adjustment* is provided for the hybrid system: in the
paper's server, every pull service is preceded by one push broadcast
(mean ``1/μ₁``), so the pull server effectively works at rate
``μ' = 1/(1/μ₂ + 1/μ₁)``.  Plugging the adjusted rates into Cobham models
the push interleaving as service-time inflation — the correction that
brings the analysis within the paper's reported ~10 % of simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PriorityQueueResult", "cobham_waiting_times", "NonPreemptivePriorityQueue"]


@dataclass(frozen=True)
class PriorityQueueResult:
    """Per-class stationary waits of a non-preemptive priority queue.

    Attributes
    ----------
    waiting_times:
        ``E[W^(i)]`` per class, most important first (queueing only).
    sojourn_times:
        ``E[W^(i)] + 1/μ_{2i}`` — waiting plus own service.
    mean_waiting_time:
        Arrival-weighted overall wait ``E[W^q]`` (paper Eq. 18, bottom).
    residual:
        ``W₀``, the mean residual service seen on arrival.
    occupancies:
        ``ρ_j`` per class.
    """

    waiting_times: np.ndarray
    sojourn_times: np.ndarray
    mean_waiting_time: float
    residual: float
    occupancies: np.ndarray


def cobham_waiting_times(
    lambdas: np.ndarray | list[float],
    mus: np.ndarray | list[float],
) -> PriorityQueueResult:
    """Cobham/Eq. 18 waits for a non-preemptive priority M/M/1.

    Parameters
    ----------
    lambdas:
        Per-class arrival rates, most important class first.
    mus:
        Per-class service rates, aligned with ``lambdas``.

    Raises
    ------
    ValueError
        On inconsistent shapes, non-positive rates or instability
        (``σ_max >= 1``).
    """
    lam = np.asarray(lambdas, dtype=float)
    mu = np.asarray(mus, dtype=float)
    if lam.shape != mu.shape or lam.ndim != 1 or lam.size == 0:
        raise ValueError(f"need matching 1-D rate vectors, got {lam.shape} and {mu.shape}")
    if np.any(lam <= 0) or np.any(mu <= 0):
        raise ValueError("all rates must be > 0")
    rho = lam / mu
    sigma = np.concatenate([[0.0], np.cumsum(rho)])
    if sigma[-1] >= 1.0:
        raise ValueError(f"unstable queue: total occupancy {sigma[-1]:.4f} >= 1")

    # Mean residual service time: for exponential service, E[S²] = 2/μ²,
    # so W0 = Σ λ_j E[S_j²] / 2 = Σ ρ_j / μ_j  (the paper's Eq. 15).
    w0 = float(np.sum(rho / mu))
    waits = w0 / ((1.0 - sigma[:-1]) * (1.0 - sigma[1:]))
    total_lam = float(lam.sum())
    mean_wait = float(lam @ waits / total_lam)
    return PriorityQueueResult(
        waiting_times=waits,
        sojourn_times=waits + 1.0 / mu,
        mean_waiting_time=mean_wait,
        residual=w0,
        occupancies=rho,
    )


class NonPreemptivePriorityQueue:
    """Object wrapper bundling rates, adjustments and derived quantities.

    Parameters
    ----------
    lambdas:
        Per-class arrival rates, most important first.
    mus:
        Per-class service rates.
    push_rate:
        Optional push service rate ``μ₁`` of the hybrid system.  When
        given, :meth:`adjusted` models the push/pull alternation by
        inflating every class's mean service time by ``1/μ₁``.
    """

    def __init__(
        self,
        lambdas: np.ndarray | list[float],
        mus: np.ndarray | list[float],
        push_rate: float | None = None,
    ) -> None:
        self.lambdas = np.asarray(lambdas, dtype=float)
        self.mus = np.asarray(mus, dtype=float)
        if push_rate is not None and push_rate <= 0:
            raise ValueError(f"push_rate must be > 0, got {push_rate}")
        self.push_rate = push_rate

    def plain(self) -> PriorityQueueResult:
        """Cobham waits with the raw service rates (dedicated server)."""
        return cobham_waiting_times(self.lambdas, self.mus)

    def adjusted(self) -> PriorityQueueResult:
        """Cobham waits with alternation-inflated service times.

        Requires ``push_rate``; each pull service is charged the mean of
        one interleaved push broadcast.
        """
        if self.push_rate is None:
            raise ValueError("push_rate was not provided")
        adjusted_mus = 1.0 / (1.0 / self.mus + 1.0 / self.push_rate)
        return cobham_waiting_times(self.lambdas, adjusted_mus)

    def is_stable(self, adjusted: bool = False) -> bool:
        """Stability check for the plain or alternation-adjusted system."""
        mus = self.mus
        if adjusted:
            if self.push_rate is None:
                raise ValueError("push_rate was not provided")
            mus = 1.0 / (1.0 / self.mus + 1.0 / self.push_rate)
        return float(np.sum(self.lambdas / mus)) < 1.0
