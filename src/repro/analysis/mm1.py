"""Elementary M/M/1 queueing formulas (analysis building block).

Used as a sanity substrate: the §4.1 birth-death chain degenerates to an
M/M/1 queue when the push phase vanishes (``μ₁ → ∞``), which gives an
exact cross-check for both the chain solver and the DES engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MM1", "mm1_waiting_time", "mm1_queue_length"]


@dataclass(frozen=True)
class MM1:
    """An M/M/1 queue with arrival rate ``lam`` and service rate ``mu``.

    All classic stationary quantities as properties; raises on
    construction if the queue is unstable (``lam >= mu``).
    """

    lam: float
    mu: float

    def __post_init__(self) -> None:
        if self.lam <= 0 or self.mu <= 0:
            raise ValueError(f"rates must be > 0, got lam={self.lam}, mu={self.mu}")
        if self.lam >= self.mu:
            raise ValueError(f"unstable queue: lam={self.lam} >= mu={self.mu}")

    @property
    def rho(self) -> float:
        """Utilisation ``λ/μ``."""
        return self.lam / self.mu

    @property
    def mean_number_in_system(self) -> float:
        """``L = ρ/(1−ρ)``."""
        return self.rho / (1.0 - self.rho)

    @property
    def mean_number_in_queue(self) -> float:
        """``Lq = ρ²/(1−ρ)``."""
        return self.rho * self.rho / (1.0 - self.rho)

    @property
    def mean_sojourn_time(self) -> float:
        """``W = 1/(μ−λ)`` (waiting + service)."""
        return 1.0 / (self.mu - self.lam)

    @property
    def mean_waiting_time(self) -> float:
        """``Wq = ρ/(μ−λ)`` (queueing delay only)."""
        return self.rho / (self.mu - self.lam)

    def prob_n_in_system(self, n: int) -> float:
        """``P[N = n] = (1−ρ)ρⁿ``."""
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        return (1.0 - self.rho) * self.rho**n

    def prob_wait_exceeds(self, t: float) -> float:
        """``P[W > t] = e^{−(μ−λ)t}`` for the sojourn time."""
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        return math.exp(-(self.mu - self.lam) * t)


def mm1_waiting_time(lam: float, mu: float) -> float:
    """Shortcut for :attr:`MM1.mean_waiting_time`."""
    return MM1(lam, mu).mean_waiting_time


def mm1_queue_length(lam: float, mu: float) -> float:
    """Shortcut for :attr:`MM1.mean_number_in_queue`."""
    return MM1(lam, mu).mean_number_in_queue
