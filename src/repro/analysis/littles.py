"""Little's law utilities (``L = λ·W``) and consistency checks.

The paper invokes Little's formula twice (end of §4.2.1 and via Eq. 18);
these helpers also serve the test suite, which checks the *simulator*
against Little's law — a strong end-to-end invariant: time-average queue
length must equal arrival rate times mean wait, no matter the policy.
"""

from __future__ import annotations

import math

__all__ = ["littles_l", "littles_w", "littles_lambda", "relative_error", "littles_consistency"]


def littles_l(lam: float, w: float) -> float:
    """Mean number in system from arrival rate and mean sojourn (``L = λW``)."""
    if lam < 0 or w < 0:
        raise ValueError(f"negative inputs: lam={lam}, w={w}")
    return lam * w


def littles_w(l: float, lam: float) -> float:
    """Mean sojourn from mean number in system (``W = L/λ``)."""
    if lam <= 0:
        raise ValueError(f"lam must be > 0, got {lam}")
    if l < 0:
        raise ValueError(f"L must be >= 0, got {l}")
    return l / lam


def littles_lambda(l: float, w: float) -> float:
    """Effective arrival rate from L and W (``λ = L/W``)."""
    if w <= 0:
        raise ValueError(f"W must be > 0, got {w}")
    if l < 0:
        raise ValueError(f"L must be >= 0, got {l}")
    return l / w


def relative_error(measured: float, reference: float) -> float:
    """``|measured − reference| / |reference|`` (``nan`` if reference is 0/nan)."""
    if reference == 0 or math.isnan(reference) or math.isnan(measured):
        return math.nan
    return abs(measured - reference) / abs(reference)


def littles_consistency(l: float, lam: float, w: float) -> float:
    """Relative gap between observed ``L`` and ``λ·W``.

    Small values (a few percent on a well-warmed-up run) certify that the
    simulator's queue accounting, arrival thinning and delay measurement
    agree with each other.
    """
    return relative_error(l, littles_l(lam, w))
