"""Preemptive pull service — simulating the road §4.2.1 declined.

The paper's discipline is explicitly *non-preemptive*: once a pull
transmission starts, later arrivals wait even if their importance factor
is higher.  :class:`PreemptiveHybridServer` implements the alternative:
when a request arrives whose queue entry's importance factor exceeds the
in-flight transmission's by more than ``preemption_threshold``, the
transmission is interrupted, the interrupted item returns to the pull
queue with its *remaining length* (preemptive-resume — clients keep the
bytes already received), and the loop reconsiders.

Together with :mod:`repro.analysis.preemptive` this quantifies the
design choice: preemption shaves premium delay further but pays a
switching and fairness price on the basic classes.
"""

from __future__ import annotations

from typing import Optional

from ..des import Interrupt
from ..schedulers.base import PendingEntry
from .server import HybridServer

__all__ = ["PreemptiveHybridServer"]


class PreemptiveHybridServer(HybridServer):
    """Hybrid server whose pull transmissions can be preempted.

    Parameters
    ----------
    preemption_threshold:
        Minimum importance-factor advantage (relative, e.g. ``0.2`` = 20 %)
        a newly scored entry needs over the in-flight transmission to
        trigger preemption.  ``0`` preempts on any strict improvement.
    (remaining parameters as :class:`HybridServer`; serial mode only)
    """

    def __init__(self, *args, preemption_threshold: float = 0.0, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.pull_mode != "serial":
            raise ValueError("preemptive service is defined for serial mode only")
        if preemption_threshold < 0:
            raise ValueError(
                f"preemption_threshold must be >= 0, got {preemption_threshold}"
            )
        self.preemption_threshold = float(preemption_threshold)
        #: Entry currently in (preemptible) pull transmission.
        self._in_service: Optional[PendingEntry] = None
        self._in_service_started: float = 0.0
        self.preemptions = 0

    # -- preemption trigger -----------------------------------------------------
    def submit(self, request) -> None:  # type: ignore[override]
        super().submit(request)
        self._maybe_preempt(request)

    def _maybe_preempt(self, request) -> None:
        if self._in_service is None or request.item_id < self.cutoff:
            return
        entry = self.pull_queue.peek(request.item_id)
        if entry is None:
            return
        current_score = self.pull_scheduler.score(self._in_service, self.env.now)
        challenger = self.pull_scheduler.score(entry, self.env.now)
        if challenger > current_score * (1.0 + self.preemption_threshold):
            process = self.env.active_process
            # The server process is parked on the transmission timeout;
            # interrupt it (never self-interrupt: submissions come from
            # driver processes, not the server).
            if process is not self._process:
                self.preemptions += 1
                self._process.interrupt(cause="preempt")

    # -- preemptible transmission -------------------------------------------------
    def _transmit_pull(self, entry: PendingEntry, rank: int, demand: float):
        """Transmit with preemptive-resume semantics."""
        self._in_service = entry
        self._in_service_started = self.env.now
        try:
            yield self.env.timeout(entry.length)
        except Interrupt:
            # Preempted: return the entry to the queue with the length it
            # still needs (resume), release the bandwidth, do not satisfy.
            transmitted = self.env.now - self._in_service_started
            entry.length = max(entry.length - transmitted, 1e-9)
            self._requeue(entry)
            self._in_flight_requests -= entry.num_requests
            self.pool.release(rank, demand)
            self._in_service = None
            return
        self._in_service = None
        self._in_flight_requests -= entry.num_requests
        for request in entry.requests:
            self.metrics.record_satisfied(request, self.env.now, via_push=False)
        self.pull_scheduler.observe_service(entry, self.env.now)
        self.pool.release(rank, demand)
        self.metrics.record_pull_service()

    def _requeue(self, entry: PendingEntry) -> None:
        """Put a preempted entry back, folding into any newer entry."""
        self.pull_queue.reinsert(entry)
        self.metrics.record_queue_length(self.env.now, len(self.pull_queue))
