"""Client-side request generation and fault recovery.

The entire client population is modelled by one aggregate Poisson arrival
process (`repro.workload.ArrivalProcess`) feeding the server's uplink —
statistically identical to per-client independent Poisson sources, and
exactly the paper's arrival assumption.  A trace-replay driver is also
provided so identical request sequences can be replayed against different
scheduling policies.

When the fault layer is armed, requests flow through a
:class:`FaultAwareFront` that adds the client-side recovery behaviour of
real wireless terminals: lost uplink offers retry with capped binary
exponential backoff plus jitter, and requests whose per-class patience
expires renege (abandon) wherever they currently sit — mid-backoff, in
uplink transit, parked for a push broadcast, or waiting in the pull
queue.
"""

from __future__ import annotations

import math

from ..core.faults import FaultConfig
from ..des import Environment, RandomStreams
from ..obs.events import RequestRetried
from ..workload.arrivals import ArrivalProcess, Request
from ..workload.trace import RequestTrace
from .metrics import MetricsCollector
from .server import HybridServer  # noqa: F401 - canonical submit target
from .uplink import UplinkChannel

__all__ = ["FaultAwareFront", "drive_arrivals", "drive_trace"]


class FaultAwareFront:
    """Client-side fault recovery between the request drivers and the uplink.

    Tracks every live request it has accepted so the conservation
    watchdog can audit the full pipeline.  Per-request bookkeeping is
    keyed by object identity (request objects are reused across retries)
    and dies no later than the request's deadline.

    Parameters
    ----------
    env:
        Simulation environment.
    server:
        The hybrid server (renege target for already-delivered requests).
    uplink:
        The uplink channel; its ``deliver`` callback must be rewired to
        :meth:`on_delivered`.
    faults:
        The fault model (retry/backoff/deadline parameters).
    metrics:
        Metrics sink for retries, reneges and terminal uplink losses.
    streams:
        Named random streams ("client-backoff" is drawn here).
    """

    #: Request states tracked per live request (by ``id``):
    #: ``"uplink"`` — offered, in channel transit;
    #: ``"backoff"`` — lost, waiting out a retry delay;
    #: ``"server"`` — delivered (deadlined requests only);
    #: ``"reneged-unrecorded"`` — deadline hit in uplink transit, the
    #: abandonment is recorded when the stale delivery surfaces;
    #: ``"reneged-recorded"`` — deadline hit mid-backoff, already
    #: recorded; the pending retry timer discards it silently.

    def __init__(
        self,
        env: Environment,
        server,
        uplink: UplinkChannel,
        faults: FaultConfig,
        metrics: MetricsCollector,
        streams: RandomStreams,
    ) -> None:
        self.env = env
        self.server = server
        self.uplink = uplink
        self.faults = faults
        self.metrics = metrics
        #: Optional :class:`~repro.obs.TraceRecorder` (installed by
        #: :class:`~repro.sim.system.HybridSystem`); records uplink retries.
        self.tracer = None
        self._rng = streams.stream("client-backoff")
        #: New requests accepted from the drivers (retries excluded).
        self.generated = 0
        #: Requests currently waiting out a backoff delay.
        self.retry_pending = 0
        self._state: dict[int, str] = {}

    # -- driver-facing interface ---------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept one new client request and start pushing it uplink."""
        self.generated += 1
        deadline = self.faults.deadline_for(request.class_rank)
        if math.isfinite(deadline):
            self.env.process(self._deadline_watch(request, request.time + deadline))
        self._offer(request, attempt=0)

    # -- uplink interaction ------------------------------------------------------
    def _offer(self, request: Request, attempt: int) -> None:
        rid = id(request)
        self._state[rid] = "uplink"
        if self.uplink.offer(request):
            return
        if attempt >= self.faults.max_retries:
            self.metrics.record_uplink_abandoned(request)
            self._state.pop(rid, None)
            return
        self.metrics.record_retry()
        if self.tracer is not None:
            self.tracer.emit(
                RequestRetried(
                    time=self.env.now,
                    req=self.tracer.rid(request),
                    item_id=request.item_id,
                    class_rank=request.class_rank,
                    attempt=attempt,
                )
            )
        self._state[rid] = "backoff"
        self.retry_pending += 1
        delay = min(self.faults.backoff_base * (2.0**attempt), self.faults.backoff_cap)
        if self.faults.backoff_jitter:
            delay *= 1.0 + self.faults.backoff_jitter * float(self._rng.uniform(-1.0, 1.0))
        self.env.process(self._retry(request, attempt + 1, delay))

    def _retry(self, request: Request, attempt: int, delay: float):
        yield self.env.timeout(delay)
        rid = id(request)
        if self._state.get(rid) == "reneged-recorded":
            self._state.pop(rid, None)
            return
        self.retry_pending -= 1
        self._offer(request, attempt)

    def on_delivered(self, request: Request) -> None:
        """Uplink delivery callback: hand over unless the client reneged."""
        rid = id(request)
        state = self._state.get(rid)
        if state == "reneged-unrecorded":
            self._state.pop(rid, None)
            self.metrics.record_reneged(request)
            return
        if math.isfinite(self.faults.deadline_for(request.class_rank)):
            self._state[rid] = "server"
        else:
            self._state.pop(rid, None)
        self.server.submit(request)

    # -- reneging ----------------------------------------------------------------
    def _deadline_watch(self, request: Request, expires: float):
        wait = expires - self.env.now
        if wait > 0:
            yield self.env.timeout(wait)
        rid = id(request)
        state = self._state.get(rid)
        if state == "server":
            self._state.pop(rid, None)
            # Records the abandonment iff the request is still pending
            # (parked or queued); in-flight transmissions complete.
            self.server.renege(request)
        elif state == "backoff":
            self.retry_pending -= 1
            self._state[rid] = "reneged-recorded"
            self.metrics.record_reneged(request)
        elif state == "uplink":
            # Still in channel transit: the stale delivery records it.
            self._state[rid] = "reneged-unrecorded"
        # else: already terminal (abandoned at the uplink) — nothing to do.


def drive_arrivals(env: Environment, server, arrivals: ArrivalProcess):
    """DES process: submit requests from a live Poisson arrival stream.

    ``server`` is anything with a ``submit(request)`` method — the
    HybridServer directly or an uplink front-end.

    Runs forever; bound the simulation with ``env.run(until=horizon)``.
    """

    def _proc():
        stream = iter(arrivals)
        while True:
            request = next(stream)
            delay = request.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            server.submit(request)

    return env.process(_proc())


def drive_trace(env: Environment, server, trace: RequestTrace):
    """DES process: replay a pre-generated request trace into the server.

    Useful for paired comparisons — the same randomness against every
    scheduler (common random numbers variance reduction).
    """

    def _proc():
        for request in trace.iter_requests():
            delay = request.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            server.submit(request)

    return env.process(_proc())
