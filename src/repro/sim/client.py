"""Client-side request generation process.

The entire client population is modelled by one aggregate Poisson arrival
process (`repro.workload.ArrivalProcess`) feeding the server's uplink —
statistically identical to per-client independent Poisson sources, and
exactly the paper's arrival assumption.  A trace-replay driver is also
provided so identical request sequences can be replayed against different
scheduling policies.
"""

from __future__ import annotations

from ..des import Environment
from ..workload.arrivals import ArrivalProcess
from ..workload.trace import RequestTrace
from .server import HybridServer  # noqa: F401 - canonical submit target

__all__ = ["drive_arrivals", "drive_trace"]


def drive_arrivals(env: Environment, server, arrivals: ArrivalProcess):
    """DES process: submit requests from a live Poisson arrival stream.

    ``server`` is anything with a ``submit(request)`` method — the
    HybridServer directly or an uplink front-end.

    Runs forever; bound the simulation with ``env.run(until=horizon)``.
    """

    def _proc():
        stream = iter(arrivals)
        while True:
            request = next(stream)
            delay = request.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            server.submit(request)

    return env.process(_proc())


def drive_trace(env: Environment, server, trace: RequestTrace):
    """DES process: replay a pre-generated request trace into the server.

    Useful for paired comparisons — the same randomness against every
    scheduler (common random numbers variance reduction).
    """

    def _proc():
        for request in trace.iter_requests():
            delay = request.time - env.now
            if delay > 0:
                yield env.timeout(delay)
            server.submit(request)

    return env.process(_proc())
