"""Online cut-off adaptation (§3: "periodically the algorithm is executed
for different cutoff-points and obtains the optimal cutoff-point").

:class:`AdaptiveCutoffController` runs inside the simulation:

1. it observes the live request stream and maintains demand estimates
   over a sliding window (empirical access probabilities with Laplace
   smoothing, empirical arrival rate);
2. every ``period`` broadcast units it evaluates the corrected
   analytical model (:func:`repro.analysis.analyze_hybrid`) for every
   candidate ``K`` using the *estimated* demand — not ground truth;
3. if the predicted objective improves by more than ``hysteresis``
   (relative), it rebuilds the push scheduler for the winning ``K`` and
   calls :meth:`HybridServer.reconfigure_cutoff`, which migrates pending
   work across the new split.

With a stationary workload the controller converges and stops moving;
with a drifting workload (:mod:`repro.workload.nonstationary`) it tracks
the optimum — the ablation benchmark quantifies the benefit over a
static mis-configured cut-off.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Literal, Optional, Sequence

import numpy as np

from ..analysis.hybrid_delay import analyze_hybrid
from ..core.config import HybridConfig
from ..des import Environment
from ..schedulers.registry import make_push_scheduler
from ..workload.arrivals import Request
from ..workload.items import ItemCatalog
from .server import HybridServer

__all__ = ["AdaptiveCutoffController", "CutoffDecision"]


@dataclass(frozen=True)
class CutoffDecision:
    """One controller decision, kept for post-run inspection."""

    time: float
    old_cutoff: int
    new_cutoff: int
    predicted_objective: float
    estimated_rate: float

    @property
    def changed(self) -> bool:
        """Whether the decision actually moved the cut-off."""
        return self.new_cutoff != self.old_cutoff


class AdaptiveCutoffController:
    """Periodic demand-driven re-optimisation of the push/pull split.

    Parameters
    ----------
    env:
        Simulation environment.
    server:
        The hybrid server to reconfigure.
    config:
        Base configuration (supplies candidates' fixed parameters).
    period:
        Time between decisions (broadcast units).
    candidates:
        ``K`` values to evaluate (default: 10-point grid).
    window:
        Number of recent requests the demand estimate uses.
    objective:
        ``"delay"`` (overall expected access time) or ``"cost"``.
    hysteresis:
        Minimum predicted relative improvement before moving the
        cut-off; damps oscillation between near-equal candidates.
    """

    def __init__(
        self,
        env: Environment,
        server: HybridServer,
        config: HybridConfig,
        period: float = 500.0,
        candidates: Optional[Sequence[int]] = None,
        window: int = 2_000,
        objective: Literal["delay", "cost"] = "delay",
        hysteresis: float = 0.02,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        if window < 10:
            raise ValueError(f"window must be >= 10, got {window}")
        if objective not in ("delay", "cost"):
            raise ValueError(f"unknown objective {objective!r}")
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        self.env = env
        self.server = server
        self.config = config
        self.period = float(period)
        if candidates is None:
            step = max(1, config.num_items // 10)
            candidates = list(range(step, config.num_items, step))
        self.candidates = sorted(set(int(c) for c in candidates))
        if not self.candidates:
            raise ValueError("candidate set is empty")
        self.objective = objective
        self.hysteresis = float(hysteresis)
        self._recent: deque[tuple[float, int]] = deque(maxlen=window)
        self.decisions: list[CutoffDecision] = []
        self._population = config.build_population()
        self._process = env.process(self._run())

    # -- demand observation ---------------------------------------------------
    def observe(self, request: Request) -> None:
        """Feed one live request into the demand estimator."""
        self._recent.append((request.time, request.item_id))

    def estimated_probabilities(self) -> np.ndarray:
        """Laplace-smoothed empirical access probabilities (rank order)."""
        counts = np.ones(self.config.num_items)  # Laplace prior
        for _, item_id in self._recent:
            counts[item_id] += 1
        return counts / counts.sum()

    def estimated_rate(self) -> float:
        """Empirical aggregate arrival rate over the window."""
        if len(self._recent) < 2:
            return self.config.arrival_rate
        span = self._recent[-1][0] - self._recent[0][0]
        if span <= 0:
            return self.config.arrival_rate
        return (len(self._recent) - 1) / span

    # -- decision loop ----------------------------------------------------------
    def _estimated_catalog(self) -> ItemCatalog:
        """The true lengths paired with the *estimated* popularity law.

        Item identity is preserved: a candidate cut-off ``K`` always
        pushes items ``0..K-1``, exactly like the static system, so the
        estimate feeds the same split the server can actually enact.
        """
        return ItemCatalog(
            lengths=self.server.catalog.lengths.copy(),
            probabilities=self.estimated_probabilities(),
        )

    def evaluate_candidate(self, cutoff: int, catalog: ItemCatalog, rate: float) -> float:
        """Predicted objective for one candidate cut-off."""
        config = replace(self.config, cutoff=cutoff, arrival_rate=rate)
        result = analyze_hybrid(
            config, mode="corrected", catalog=catalog, population=self._population
        )
        return (
            result.overall_delay
            if self.objective == "delay"
            else result.total_prioritized_cost
        )

    def decide(self) -> CutoffDecision:
        """Evaluate all candidates and (maybe) reconfigure the server."""
        catalog = self._estimated_catalog()
        rate = self.estimated_rate()
        scores = {
            k: self.evaluate_candidate(k, catalog, rate) for k in self.candidates
        }
        current = self.server.cutoff
        best = min(scores, key=scores.get)
        # Hysteresis: stay put unless the winner clearly beats the
        # incumbent's *predicted* objective.
        incumbent = scores.get(current, self.evaluate_candidate(current, catalog, rate))
        new_cutoff = current
        if best != current and scores[best] < incumbent * (1.0 - self.hysteresis):
            new_cutoff = best
            push = make_push_scheduler(
                self.config.push_scheduler, self.server.catalog, new_cutoff
            )
            self.server.reconfigure_cutoff(new_cutoff, push)
        decision = CutoffDecision(
            time=self.env.now,
            old_cutoff=current,
            new_cutoff=new_cutoff,
            predicted_objective=scores[new_cutoff] if new_cutoff in scores else incumbent,
            estimated_rate=rate,
        )
        self.decisions.append(decision)
        return decision

    def _run(self):
        while True:
            yield self.env.timeout(self.period)
            self.decide()


def build_adaptive_system(
    config: HybridConfig,
    seed: int = 0,
    warmup: float = 0.0,
    period: float = 500.0,
    candidates: Optional[Sequence[int]] = None,
    phases: Optional[Sequence] = None,
    objective: Literal["delay", "cost"] = "delay",
    hysteresis: float = 0.02,
    window: int = 2_000,
):
    """Wire a :class:`HybridSystem` with an adaptive cut-off controller.

    Parameters
    ----------
    phases:
        Optional :class:`~repro.workload.nonstationary.WorkloadPhase`
        sequence; when given, arrivals come from a
        :class:`~repro.workload.nonstationary.PhasedArrivalProcess`
        instead of the stationary Poisson source.

    Returns
    -------
    (system, controller):
        Run with ``system.run(horizon)``; inspect ``controller.decisions``
        afterwards.
    """
    from ..workload.nonstationary import PhasedArrivalProcess
    from .system import HybridSystem

    arrivals = None
    if phases is not None:
        # Build workload pieces exactly as HybridSystem would, then swap
        # in the phased demand law.
        from ..des import RandomStreams

        streams = RandomStreams(seed=seed)
        arrivals = PhasedArrivalProcess(
            catalog=config.build_catalog(),
            population=config.build_population(),
            phases=phases,
            default_rate=config.arrival_rate,
            rng=streams.stream("arrivals"),
        )
    system = HybridSystem(config, seed=seed, warmup=warmup, arrivals=arrivals)
    controller = AdaptiveCutoffController(
        env=system.env,
        server=system.server,
        config=config,
        period=period,
        candidates=candidates,
        window=window,
        objective=objective,
        hysteresis=hysteresis,
    )
    system.server.observers.append(controller.observe)
    return system, controller
