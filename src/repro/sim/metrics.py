"""Metrics pipeline and the result record of a simulation run.

The collector receives raw events from the server (request satisfied,
request blocked, queue length changed) and keeps per-class and aggregate
statistics.  A warm-up window suppresses measurements for requests that
*arrive* before the window ends, so transient start-up bias never enters
the tallies while late satisfactions of warm-up requests still advance the
system state faithfully.

:class:`SimulationResult` is the plain-data summary handed to users: all
the quantities the paper plots (per-class delay, prioritized cost,
blocking) plus diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..des.monitor import Counter, Tally, TimeWeighted
from ..workload.arrivals import Request
from .qos import DelayRecorder

__all__ = ["MetricsCollector", "SimulationResult"]


class MetricsCollector:
    """Streaming statistics for one simulation run.

    Parameters
    ----------
    class_names:
        Service-class labels in rank order.
    class_priorities:
        Priority weight per class in rank order (for prioritized cost).
    warmup:
        Requests arriving *strictly before* this time are excluded from
        delay, blocking and throughput statistics.  The measured window
        is closed on the left: a request arriving exactly at ``warmup``
        is measured, and measured exactly once — membership is decided
        by arrival time alone, so every later outcome of that request
        (satisfaction, blocking, reneging, shedding) consistently lands
        on the same side of the boundary.
    """

    def __init__(
        self,
        class_names: list[str],
        class_priorities: list[float],
        warmup: float = 0.0,
        record_qos: bool = False,
    ) -> None:
        if len(class_names) != len(class_priorities):
            raise ValueError("class_names and class_priorities must align")
        self.class_names = list(class_names)
        self.class_priorities = [float(q) for q in class_priorities]
        self.warmup = float(warmup)
        #: Optional raw-delay recorder for tail/jitter/fairness statistics.
        self.qos_recorder = DelayRecorder(class_names) if record_qos else None

        self.delay_by_class: dict[str, Tally] = {n: Tally() for n in class_names}
        self.push_delay_by_class: dict[str, Tally] = {n: Tally() for n in class_names}
        self.pull_delay_by_class: dict[str, Tally] = {n: Tally() for n in class_names}
        self.delay_overall = Tally()
        self.delay_push = Tally()
        self.delay_pull = Tally()
        self.blocked_by_class: dict[str, Counter] = {n: Counter() for n in class_names}
        self.arrivals_by_class: dict[str, Counter] = {n: Counter() for n in class_names}
        self.reneged_by_class: dict[str, Counter] = {n: Counter() for n in class_names}
        self.shed_by_class: dict[str, Counter] = {n: Counter() for n in class_names}
        #: Subset of sheds decided by the overload admission controller
        #: (before the queue was full), per class.
        self.overload_rejected_by_class: dict[str, Counter] = {
            n: Counter() for n in class_names
        }
        # Rank-indexed views of the per-class maps above (same underlying
        # monitor objects).  Hot-path recording indexes by ``class_rank``
        # directly instead of the name-keyed dicts; the dicts stay the
        # public reporting surface.
        self._delay_by_rank = [self.delay_by_class[n] for n in class_names]
        self._push_delay_by_rank = [self.push_delay_by_class[n] for n in class_names]
        self._pull_delay_by_rank = [self.pull_delay_by_class[n] for n in class_names]
        self._arrivals_by_rank = [self.arrivals_by_class[n] for n in class_names]

        self.queue_length = TimeWeighted()
        self.push_broadcasts = Counter()
        self.pull_services = Counter()
        self.pull_drops = Counter()
        self.client_retries = Counter()
        self.corrupted_push_slots = Counter()
        self.corrupted_pull_transmissions = Counter()

        # Raw (warm-up-free) outcome counts for the conservation watchdog:
        # every generated request must land in exactly one of these bins or
        # still be traceably live in a queue/backoff/transmission.
        self.raw_arrivals = 0
        self.raw_satisfied = 0
        self.raw_blocked = 0
        self.raw_reneged = 0
        self.raw_shed = 0
        self.raw_uplink_abandoned = 0

    # -- event intake --------------------------------------------------------
    def _measured(self, request: Request) -> bool:
        """Whether the request falls inside the measured window.

        The window is ``[warmup, ∞)`` — closed at ``warmup``, so a
        boundary arrival is measured.  Warm-up requests still advance
        system state (they occupy the queue, consume bandwidth and can
        be satisfied after the window opens) but never enter any tally.
        """
        return request.time >= self.warmup

    def record_arrival(self, request: Request) -> None:
        """A request entered the system."""
        self.raw_arrivals += 1
        if request.time >= self.warmup:
            self._arrivals_by_rank[request.class_rank].increment()

    def record_satisfied(self, request: Request, now: float, via_push: bool) -> None:
        """A request was satisfied at time ``now`` (delay = now − arrival)."""
        self.raw_satisfied += 1
        if request.time < self.warmup:
            return
        delay = now - request.time
        if delay < 0:
            raise ValueError(f"negative delay: satisfied at {now}, arrived {request.time}")
        rank = request.class_rank
        self._delay_by_rank[rank].observe(delay)
        self.delay_overall.observe(delay)
        if via_push:
            self.delay_push.observe(delay)
            self._push_delay_by_rank[rank].observe(delay)
        else:
            self.delay_pull.observe(delay)
            self._pull_delay_by_rank[rank].observe(delay)
        if self.qos_recorder is not None:
            self.qos_recorder.record(rank, request.item_id, delay)

    def record_satisfied_many(self, requests, now: float, via_push: bool) -> None:
        """Batch form of :meth:`record_satisfied` for one transmission.

        Bit-identical to calling :meth:`record_satisfied` per request in
        order: every tally receives the same observation subsequence in
        the same order (``Tally.observe_many`` replays the exact Welford
        recurrence), so the fast engine's batched accumulation and the
        reference server's per-request calls produce equal statistics
        for equal request sequences.
        """
        if len(requests) == 1:
            # One-request transmissions dominate sparse workloads; the
            # scalar path skips the per-batch list plumbing.
            self.record_satisfied(requests[0], now, via_push)
            return
        self.raw_satisfied += len(requests)
        warmup = self.warmup
        qos = self.qos_recorder
        delays: list[float] = []
        by_rank: list[Optional[list[float]]] = [None] * len(self._delay_by_rank)
        for request in requests:
            if request.time < warmup:
                continue
            delay = now - request.time
            if delay < 0:
                raise ValueError(
                    f"negative delay: satisfied at {now}, arrived {request.time}"
                )
            rank = request.class_rank
            delays.append(delay)
            bucket = by_rank[rank]
            if bucket is None:
                by_rank[rank] = [delay]
            else:
                bucket.append(delay)
            if qos is not None:
                qos.record(rank, request.item_id, delay)
        if not delays:
            return
        self.delay_overall.observe_many(delays)
        if via_push:
            self.delay_push.observe_many(delays)
            per_rank = self._push_delay_by_rank
        else:
            self.delay_pull.observe_many(delays)
            per_rank = self._pull_delay_by_rank
        for rank, class_delays in enumerate(by_rank):
            if class_delays is not None:
                self._delay_by_rank[rank].observe_many(class_delays)
                per_rank[rank].observe_many(class_delays)

    # -- folded (population-aggregated) intake ---------------------------------
    # The ``repro.scale`` engine carries per-class waiting *counts* and
    # arrival-time moments instead of request lists; these methods merge
    # that summary state.  Statistically exact but not bit-identical to
    # the per-request path (see ``Tally.observe_moments``); the population
    # engine is validated against the per-client engines by CI overlap,
    # not golden equality.

    def record_satisfied_folded(
        self,
        now: float,
        via_push: bool,
        counts: list[int],
        sum_t: list[float],
        sum_t2: list[float],
        min_t: list[float],
        max_t: list[float],
        unmeasured: int,
    ) -> None:
        """One transmission satisfied a folded group of requests.

        ``counts[rank]`` measured requests of each class arrived with
        arrival-time moments ``(Σt, Σt², min t, max t)``; delays at
        service time ``now`` follow as ``Σd = n·now − Σt``,
        ``Σd² = n·now² − 2·now·Σt + Σt²``, ``min d = now − max t`` and
        ``max d = now − min t``.  ``unmeasured`` warm-up requests advance
        only the raw conservation ledger.
        """
        self.raw_satisfied += unmeasured
        per_rank = self._push_delay_by_rank if via_push else self._pull_delay_by_rank
        mixed = self.delay_push if via_push else self.delay_pull
        for rank, n in enumerate(counts):
            if n <= 0:
                continue
            if max_t[rank] > now:
                raise ValueError(
                    f"negative delay: satisfied at {now}, arrived {max_t[rank]}"
                )
            self.raw_satisfied += n
            total = n * now - sum_t[rank]
            sq_total = n * now * now - 2.0 * now * sum_t[rank] + sum_t2[rank]
            lo = now - max_t[rank]
            hi = now - min_t[rank]
            self._delay_by_rank[rank].observe_moments(n, total, sq_total, lo, hi)
            self.delay_overall.observe_moments(n, total, sq_total, lo, hi)
            mixed.observe_moments(n, total, sq_total, lo, hi)
            per_rank[rank].observe_moments(n, total, sq_total, lo, hi)

    def record_arrivals_folded(self, rank: int, measured: int, total: int) -> None:
        """``total`` aggregated class-``rank`` arrivals, ``measured`` post-warm-up."""
        self.raw_arrivals += total
        if measured:
            self._arrivals_by_rank[rank].increment(measured)

    def record_blocked_folded(self, rank: int, measured: int, total: int) -> None:
        """A folded group of class-``rank`` requests was blocked at admission."""
        self.raw_blocked += total
        if measured:
            self.blocked_by_class[self.class_names[rank]].increment(measured)

    def record_shed_folded(self, rank: int, measured: int, total: int) -> None:
        """A folded group of class-``rank`` requests was shed by the queue."""
        self.raw_shed += total
        if measured:
            self.shed_by_class[self.class_names[rank]].increment(measured)

    def record_overload_rejected_folded(self, rank: int, measured: int, total: int) -> None:
        """A folded group was refused admission by the overload controller."""
        self.record_shed_folded(rank, measured, total)
        if measured:
            self.overload_rejected_by_class[self.class_names[rank]].increment(measured)

    def record_blocked(self, request: Request) -> None:
        """A request was dropped because bandwidth admission failed."""
        self.raw_blocked += 1
        if self._measured(request):
            self.blocked_by_class[self.class_names[request.class_rank]].increment()

    def record_reneged(self, request: Request) -> None:
        """A request was abandoned by its client (deadline expired)."""
        self.raw_reneged += 1
        if self._measured(request):
            self.reneged_by_class[self.class_names[request.class_rank]].increment()

    def record_shed(self, request: Request) -> None:
        """A request was sacrificed by the bounded pull queue under overload."""
        self.raw_shed += 1
        if self._measured(request):
            self.shed_by_class[self.class_names[request.class_rank]].increment()

    def record_overload_rejected(self, request: Request) -> None:
        """A request was refused admission by the overload controller.

        Counts as a shed for conservation and per-class loss statistics
        (the request terminates unserved) *and* in the dedicated overload
        counters so admission-control losses stay distinguishable from
        capacity shedding.
        """
        self.record_shed(request)
        if self._measured(request):
            self.overload_rejected_by_class[
                self.class_names[request.class_rank]
            ].increment()

    def record_uplink_abandoned(self, request: Request) -> None:
        """A request was lost at the uplink after exhausting its retries."""
        self.raw_uplink_abandoned += 1

    def record_retry(self) -> None:
        """A client re-offered a request after a lost uplink attempt."""
        self.client_retries.increment()

    def record_corrupted_push(self) -> None:
        """One push broadcast slot was corrupted by the downlink channel."""
        self.corrupted_push_slots.increment()

    def record_corrupted_pull(self) -> None:
        """One pull transmission was corrupted; its entry re-queues."""
        self.corrupted_pull_transmissions.increment()

    def record_queue_length(self, now: float, length: int) -> None:
        """The pull queue now holds ``length`` distinct items."""
        self.queue_length.set(now, length)

    def record_push_broadcast(self) -> None:
        """One push slot was broadcast."""
        self.push_broadcasts.increment()

    def record_pull_service(self) -> None:
        """One pull transmission completed."""
        self.pull_services.increment()

    def record_pull_drop(self) -> None:
        """One pull queue entry (item) was dropped at admission."""
        self.pull_drops.increment()

    # -- summary -----------------------------------------------------------------
    def result(self, horizon: float, seed: int) -> "SimulationResult":
        """Freeze the collected statistics into a :class:`SimulationResult`."""
        per_class_delay = {
            name: tally.mean for name, tally in self.delay_by_class.items()
        }
        per_class_cost = {
            name: q * per_class_delay[name]
            for name, q in zip(self.class_names, self.class_priorities)
        }
        blocking = {}
        for name in self.class_names:
            arrived = self.arrivals_by_class[name].count
            blocked = self.blocked_by_class[name].count
            blocking[name] = blocked / arrived if arrived else math.nan
        total_cost = sum(c for c in per_class_cost.values() if not math.isnan(c))
        return SimulationResult(
            horizon=horizon,
            seed=seed,
            per_class_delay=per_class_delay,
            per_class_pull_delay={
                name: tally.mean for name, tally in self.pull_delay_by_class.items()
            },
            per_class_push_delay={
                name: tally.mean for name, tally in self.push_delay_by_class.items()
            },
            per_class_cost=per_class_cost,
            per_class_blocking=blocking,
            overall_delay=self.delay_overall.mean,
            push_delay=self.delay_push.mean,
            pull_delay=self.delay_pull.mean,
            total_prioritized_cost=total_cost,
            mean_queue_length=self.queue_length.time_average(horizon),
            push_broadcasts=self.push_broadcasts.count,
            pull_services=self.pull_services.count,
            pull_drops=self.pull_drops.count,
            satisfied_requests=self.delay_overall.count,
            blocked_requests=sum(c.count for c in self.blocked_by_class.values()),
            reneged_requests=sum(c.count for c in self.reneged_by_class.values()),
            shed_requests=sum(c.count for c in self.shed_by_class.values()),
            per_class_reneged={n: c.count for n, c in self.reneged_by_class.items()},
            per_class_shed={n: c.count for n, c in self.shed_by_class.items()},
            overload_rejections=sum(
                c.count for c in self.overload_rejected_by_class.values()
            ),
            per_class_overload_rejected={
                n: c.count for n, c in self.overload_rejected_by_class.items()
            },
            client_retries=self.client_retries.count,
            corrupted_push_slots=self.corrupted_push_slots.count,
            corrupted_pull_transmissions=self.corrupted_pull_transmissions.count,
            uplink_abandoned=self.raw_uplink_abandoned,
            delay_tallies={k: v for k, v in self.delay_by_class.items()},
        )


@dataclass(frozen=True)
class SimulationResult:
    """Summary of one simulation run.

    All delays are in broadcast units.  ``per_class_*`` mappings are keyed
    by class name in rank order (most important first when iterated).
    """

    horizon: float
    seed: int
    per_class_delay: Mapping[str, float]
    per_class_pull_delay: Mapping[str, float]
    per_class_push_delay: Mapping[str, float]
    per_class_cost: Mapping[str, float]
    per_class_blocking: Mapping[str, float]
    overall_delay: float
    push_delay: float
    pull_delay: float
    total_prioritized_cost: float
    mean_queue_length: float
    push_broadcasts: int
    pull_services: int
    pull_drops: int
    satisfied_requests: int
    blocked_requests: int
    #: Requests abandoned by their clients after a per-class deadline.
    reneged_requests: int = 0
    #: Requests sacrificed by the bounded pull queue under overload.
    shed_requests: int = 0
    per_class_reneged: Mapping[str, int] = field(default_factory=dict)
    per_class_shed: Mapping[str, int] = field(default_factory=dict)
    #: Sheds decided by the overload admission controller (a subset of
    #: ``shed_requests``; the queue still had room when they were refused).
    overload_rejections: int = 0
    per_class_overload_rejected: Mapping[str, int] = field(default_factory=dict)
    #: Uplink retry attempts made by clients after lost offers.
    client_retries: int = 0
    #: Downlink-corrupted push slots (waiters catch a later cycle).
    corrupted_push_slots: int = 0
    #: Downlink-corrupted pull transmissions (entries re-queued, ARQ).
    corrupted_pull_transmissions: int = 0
    #: Requests delivered by / terminally lost at the uplink channel.
    uplink_delivered: int = 0
    uplink_dropped: int = 0
    uplink_abandoned: int = 0
    delay_tallies: Mapping[str, Tally] = field(repr=False, default_factory=dict)

    def delay_of(self, class_name: str) -> float:
        """Mean delay of one class (convenience accessor)."""
        return self.per_class_delay[class_name]

    def summary(self) -> str:
        """Multi-line human-readable digest."""
        lines = [
            f"horizon={self.horizon:g} seed={self.seed} "
            f"satisfied={self.satisfied_requests} blocked={self.blocked_requests}",
            f"overall delay {self.overall_delay:.2f} "
            f"(push {self.push_delay:.2f} / pull {self.pull_delay:.2f}); "
            f"mean pull-queue length {self.mean_queue_length:.2f}",
        ]
        if self.reneged_requests or self.shed_requests:
            overload = (
                f" (overload-rejected={self.overload_rejections})"
                if self.overload_rejections
                else ""
            )
            lines.append(
                f"degradation: reneged={self.reneged_requests} "
                f"shed={self.shed_requests}{overload}"
            )
        if self.corrupted_push_slots or self.corrupted_pull_transmissions or self.client_retries:
            lines.append(
                f"channel faults: corrupted push slots={self.corrupted_push_slots} "
                f"corrupted pull tx={self.corrupted_pull_transmissions} "
                f"client retries={self.client_retries}"
            )
        if self.uplink_delivered or self.uplink_dropped or self.uplink_abandoned:
            lines.append(
                f"uplink: delivered={self.uplink_delivered} dropped={self.uplink_dropped} "
                f"abandoned={self.uplink_abandoned}"
            )
        for name in self.per_class_delay:
            extra = ""
            if self.reneged_requests or self.shed_requests:
                extra = (
                    f"  reneged {self.per_class_reneged.get(name, 0):5d}  "
                    f"shed {self.per_class_shed.get(name, 0):5d}"
                )
            lines.append(
                f"  class {name}: delay {self.per_class_delay[name]:8.2f}  "
                f"cost {self.per_class_cost[name]:8.2f}  "
                f"blocking {self.per_class_blocking[name]:6.2%}" + extra
            )
        return "\n".join(lines)
