"""Fault injection and graceful degradation for the hybrid simulator.

This module hosts the runtime half of the robustness layer configured by
:class:`~repro.core.faults.FaultConfig`:

* :class:`FaultInjector` — a seeded Gilbert–Elliott two-state bursty loss
  process for the downlink (shared by push slots and pull transmissions,
  so losses correlate across consecutive transfers) plus an independent
  Bernoulli corruption model for uplink request offers.
* :func:`select_shed_victim` — the class-aware policies a bounded pull
  queue uses to decide which entry to sacrifice under overload.
* :class:`ConservationWatchdog` — a DES monitor that continuously checks
  the request-conservation invariant (every generated request is exactly
  one of: satisfied, blocked, reneged, shed, lost at the uplink, queued,
  parked, in backoff, in uplink transit, or riding an in-flight
  transmission) and the no-preemption invariant of pull service, raising
  a structured :class:`InvariantViolation` on any imbalance.

All randomness is drawn from dedicated named streams ("fault-downlink",
"fault-uplink", "client-backoff"), so arming the fault layer never
perturbs the draws of the seed simulator, and a zero-fault configuration
reproduces the paper's ideal-channel results exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..core.faults import SHEDDING_POLICIES, FaultConfig
from ..des import Environment, RandomStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..schedulers.base import PendingEntry, PullQueue, PullScheduler

__all__ = [
    "FaultConfig",
    "SHEDDING_POLICIES",
    "FaultInjector",
    "select_shed_victim",
    "ConservationSnapshot",
    "ConservationWatchdog",
    "InvariantViolation",
]


class FaultInjector:
    """Seeded source of channel-corruption decisions.

    The downlink is a Gilbert–Elliott chain stepped once per transmission
    (push slot or pull transfer): the current state decides this
    transmission's loss probability, then the state transitions for the
    next one.  The uplink is memoryless per offer.

    Parameters
    ----------
    config:
        The fault model parameters.
    streams:
        Named random streams of the replication; the injector draws only
        from its own streams.
    """

    def __init__(self, config: FaultConfig, streams: RandomStreams) -> None:
        self.config = config
        self._down = streams.stream("fault-downlink") if config.downlink_loss > 0 else None
        self._up = streams.stream("fault-uplink") if config.uplink_loss > 0 else None
        #: Whether the downlink chain currently sits in the bad state.
        self.bad_state = False
        if self._down is not None:
            # Start from the stationary distribution so short runs are unbiased.
            self.bad_state = bool(self._down.random() < config.bad_occupancy)
        self.downlink_draws = 0
        self.downlink_losses = 0
        self.uplink_draws = 0
        self.uplink_losses = 0

    def downlink_lost(self) -> bool:
        """Decide one downlink transmission; steps the Gilbert–Elliott chain."""
        if self._down is None:
            return False
        cfg = self.config
        loss_p = cfg.bad_state_loss if self.bad_state else cfg.good_state_loss
        lost = bool(self._down.random() < loss_p)
        if self.bad_state:
            if self._down.random() < cfg.bad_to_good:
                self.bad_state = False
        elif self._down.random() < cfg.good_to_bad:
            self.bad_state = True
        self.downlink_draws += 1
        self.downlink_losses += int(lost)
        return lost

    def uplink_lost(self) -> bool:
        """Decide whether one uplink request offer is corrupted."""
        if self._up is None:
            return False
        lost = bool(self._up.random() < self.config.uplink_loss)
        self.uplink_draws += 1
        self.uplink_losses += int(lost)
        return lost


def select_shed_victim(
    policy: str,
    queue: "PullQueue",
    candidate: "PendingEntry",
    scheduler: "PullScheduler",
    now: float,
) -> Optional[int]:
    """Pick the pull-queue entry to shed so ``candidate`` can be admitted.

    Returns the ``item_id`` of the queued entry to evict, or ``None`` when
    the candidate itself loses (it is never inserted).  Deterministic:
    ties break toward the larger item id.

    Parameters
    ----------
    policy:
        One of :data:`~repro.core.faults.SHEDDING_POLICIES`.
    queue:
        The full pull queue (at capacity).
    candidate:
        A transient entry holding the incoming request, *not* inserted.
    scheduler:
        The active pull scheduler, whose ``score`` defines γ for
        ``"drop-lowest-gamma"``.
    now:
        Current simulation time (γ may be time-dependent, e.g. RxW).
    """
    if policy == "drop-newest":
        return None
    if policy == "drop-lowest-gamma":

        def key(entry: "PendingEntry") -> tuple[float, int]:
            return (scheduler.score(entry, now), -entry.item_id)

    elif policy == "drop-lowest-priority":

        def key(entry: "PendingEntry") -> tuple[float, int, int]:
            return (entry.total_priority, entry.num_requests, -entry.item_id)

    else:  # pragma: no cover - rejected upstream by FaultConfig validation
        raise ValueError(f"unknown shedding policy {policy!r}")
    victim = min([*queue, candidate], key=key)
    return None if victim is candidate else victim.item_id


class InvariantViolation(RuntimeError):
    """A structural invariant of the simulation failed.

    Attributes
    ----------
    invariant:
        Short name of the failed invariant ("request-conservation" or
        "no-preemption").
    snapshot:
        The :class:`ConservationSnapshot` at detection time.
    seed:
        Root seed of the offending replication, when known.
    """

    def __init__(
        self,
        message: str,
        invariant: str,
        snapshot: Optional["ConservationSnapshot"] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.snapshot = snapshot
        self.seed = seed


@dataclass(frozen=True)
class ConservationSnapshot:
    """One instant of the request-conservation ledger.

    ``generated`` counts every request the client population created;
    the remaining fields partition them into terminal outcomes and live
    locations.  :attr:`balance` must be zero at all times.
    """

    time: float
    generated: int
    satisfied: int
    blocked: int
    reneged: int
    shed: int
    uplink_lost: int
    uplink_in_transit: int
    retry_pending: int
    parked: int
    queued: int
    in_flight: int

    @property
    def accounted(self) -> int:
        """Requests in a terminal outcome or a live location."""
        return (
            self.satisfied
            + self.blocked
            + self.reneged
            + self.shed
            + self.uplink_lost
            + self.uplink_in_transit
            + self.retry_pending
            + self.parked
            + self.queued
            + self.in_flight
        )

    @property
    def balance(self) -> int:
        """``generated - accounted``; zero when conservation holds."""
        return self.generated - self.accounted

    def describe(self) -> str:
        """One-line ledger rendering for diagnostics."""
        return (
            f"t={self.time:g}: generated={self.generated} = "
            f"satisfied {self.satisfied} + blocked {self.blocked} + "
            f"reneged {self.reneged} + shed {self.shed} + "
            f"uplink-lost {self.uplink_lost} + uplink-transit {self.uplink_in_transit} + "
            f"backoff {self.retry_pending} + parked {self.parked} + "
            f"queued {self.queued} + in-flight {self.in_flight} "
            f"(balance {self.balance:+d})"
        )


class ConservationWatchdog:
    """Continuous auditor of the simulator's structural invariants.

    Checks run periodically while the simulation advances (one DES event
    per ``interval``) and once more at the horizon via
    :meth:`~ConservationWatchdog.check`.  The watchdog only *reads* state
    — it draws no randomness and mutates nothing — so arming it cannot
    change simulation results.

    Parameters
    ----------
    env:
        Simulation environment.
    server:
        The :class:`~repro.sim.server.HybridServer` under audit.
    metrics:
        The metrics collector (source of the raw outcome counters).
    uplink:
        Optional uplink channel (transit/loss accounting).
    front:
        Optional client-side fault front (generated/backoff accounting).
    seed:
        Replication seed, attached to violations for reproducibility.
    config_hash:
        Content hash of the run's :class:`~repro.core.config.HybridConfig`
        (see :func:`repro.obs.manifest.config_hash`), embedded in every
        violation message so a broken ledger is reproducible from the
        message alone: ``(config_hash, seed)`` pins the exact run.
    interval:
        Period of continuous checks; ``None`` disables the periodic
        process (explicit :meth:`check` calls still work).
    """

    def __init__(
        self,
        env: Environment,
        server,
        metrics,
        uplink=None,
        front=None,
        seed: Optional[int] = None,
        config_hash: Optional[str] = None,
        interval: Optional[float] = None,
    ) -> None:
        self.env = env
        self.server = server
        self.metrics = metrics
        self.uplink = uplink
        self.front = front
        self.seed = seed
        self.config_hash = config_hash
        self.checks_performed = 0
        self.last_snapshot: Optional[ConservationSnapshot] = None
        if interval is not None:
            env.process(self._watch(float(interval)))

    # -- ledger ----------------------------------------------------------------
    def _generated(self) -> int:
        if self.front is not None:
            return self.front.generated
        if self.uplink is not None and not self.uplink.ideal:
            return self.uplink.offered
        return self.metrics.raw_arrivals

    def _terminal_uplink_losses(self) -> int:
        lost = self.metrics.raw_uplink_abandoned
        if self.front is None and self.uplink is not None:
            # Without client-side recovery, every channel drop is terminal.
            lost += self.uplink.dropped.count + self.uplink.corrupted.count
        return lost

    def snapshot(self) -> ConservationSnapshot:
        """Capture the conservation ledger at the current instant."""
        return ConservationSnapshot(
            time=self.env.now,
            generated=self._generated(),
            satisfied=self.metrics.raw_satisfied,
            blocked=self.metrics.raw_blocked,
            reneged=self.metrics.raw_reneged,
            shed=self.metrics.raw_shed,
            uplink_lost=self._terminal_uplink_losses(),
            uplink_in_transit=(self.uplink.in_transit if self.uplink is not None else 0),
            retry_pending=(self.front.retry_pending if self.front is not None else 0),
            parked=self.server.pending_push_requests,
            queued=self.server.pending_pull_requests,
            in_flight=self.server.in_flight_pull_requests,
        )

    def _provenance(self) -> str:
        """``[seed=... config=...]`` suffix making violations reproducible.

        The pair identifies the exact run: re-simulating the config with
        that hash under the same seed replays the violated ledger.
        """
        parts = []
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        if self.config_hash is not None:
            parts.append(f"config={self.config_hash}")
        return f" [{' '.join(parts)}]" if parts else ""

    # -- checks ----------------------------------------------------------------
    def check(self) -> ConservationSnapshot:
        """Audit both invariants now; raises :class:`InvariantViolation`."""
        snap = self.snapshot()
        self.checks_performed += 1
        self.last_snapshot = snap
        if snap.balance != 0:
            raise InvariantViolation(
                f"request conservation violated: {snap.describe()}" + self._provenance(),
                invariant="request-conservation",
                snapshot=snap,
                seed=self.seed,
            )
        active = self.server.active_pull_transmissions
        implied = (
            self.server.pull_tx_started
            - self.server.pull_tx_completed
            - self.server.pull_tx_corrupted
        )
        if active != implied or active < 0:
            raise InvariantViolation(
                f"pull service accounting broken at t={snap.time:g}: "
                f"{active} active transmissions but started-completed-corrupted={implied}"
                + self._provenance(),
                invariant="no-preemption",
                snapshot=snap,
                seed=self.seed,
            )
        if self.server.pull_mode == "serial" and active > 1:
            raise InvariantViolation(
                f"no-preemption violated at t={snap.time:g}: {active} concurrent pull "
                "transmissions in serial mode" + self._provenance(),
                invariant="no-preemption",
                snapshot=snap,
                seed=self.seed,
            )
        return snap

    def _watch(self, interval: float):
        while True:
            yield self.env.timeout(interval)
            self.check()
