"""Extended QoS statistics: tail delays, jitter and fairness.

The paper reports only mean delays, but a differentiated-QoS operator
cares at least as much about tails (SLA percentiles), delay variability
(jitter) and how evenly the basic tier is treated — §3 explicitly
worries about the *un-fairness* of pure priority scheduling.  This module
computes those from per-request delay samples:

* per-class delay percentiles (p50/p95/p99),
* per-class jitter (standard deviation of delay),
* Jain's fairness index across classes and across items.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

__all__ = ["QoSReport", "DelayRecorder", "jain_fairness"]


def jain_fairness(values: Sequence[float] | np.ndarray) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` in ``(0, 1]``.

    1 means perfectly equal allocations; ``1/n`` means one party gets
    everything.  Ignores NaNs; returns NaN for an empty/degenerate input.
    """
    x = np.asarray(values, dtype=float)
    x = x[~np.isnan(x)]
    if x.size == 0:
        return float("nan")
    if np.any(x < 0):
        raise ValueError("fairness is defined for non-negative values")
    denom = x.size * float(np.sum(x * x))
    if denom == 0:
        return float("nan")
    return float(np.sum(x)) ** 2 / denom


class DelayRecorder:
    """Collects raw per-request delays keyed by class and by item.

    Lightweight companion to :class:`~repro.sim.metrics.MetricsCollector`
    for runs where tail statistics are wanted; attach via the
    ``HybridSystem``'s metrics hooks or record manually.
    """

    def __init__(self, class_names: Sequence[str]) -> None:
        self.class_names = list(class_names)
        self._by_class: dict[str, list[float]] = {n: [] for n in self.class_names}
        self._by_item: dict[int, list[float]] = defaultdict(list)

    def record(self, class_rank: int, item_id: int, delay: float) -> None:
        """Record one satisfied request's delay."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._by_class[self.class_names[class_rank]].append(delay)
        self._by_item[item_id].append(delay)

    @property
    def total_samples(self) -> int:
        """Number of recorded delays."""
        return sum(len(v) for v in self._by_class.values())

    def report(self) -> "QoSReport":
        """Summarise everything recorded so far."""
        percentiles: dict[str, dict[str, float]] = {}
        jitter: dict[str, float] = {}
        means = []
        for name in self.class_names:
            samples = np.asarray(self._by_class[name], dtype=float)
            if samples.size == 0:
                percentiles[name] = {"p50": np.nan, "p95": np.nan, "p99": np.nan}
                jitter[name] = float("nan")
                means.append(np.nan)
                continue
            percentiles[name] = {
                "p50": float(np.percentile(samples, 50)),
                "p95": float(np.percentile(samples, 95)),
                "p99": float(np.percentile(samples, 99)),
            }
            jitter[name] = float(samples.std(ddof=1)) if samples.size > 1 else 0.0
            means.append(float(samples.mean()))
        item_means = [
            float(np.mean(delays)) for delays in self._by_item.values() if delays
        ]
        # Fairness over *speed* (inverse delay): equal delays -> index 1.
        inv = [1.0 / m for m in means if m and not np.isnan(m) and m > 0]
        inv_items = [1.0 / m for m in item_means if m > 0]
        return QoSReport(
            percentiles=percentiles,
            jitter=jitter,
            class_fairness=jain_fairness(inv) if inv else float("nan"),
            item_fairness=jain_fairness(inv_items) if inv_items else float("nan"),
            samples=self.total_samples,
        )


@dataclass(frozen=True)
class QoSReport:
    """Tail/variability/fairness summary of one run.

    Attributes
    ----------
    percentiles:
        Class → {p50, p95, p99} delay percentiles.
    jitter:
        Class → delay standard deviation.
    class_fairness:
        Jain index over per-class mean service speeds (1 = no
        differentiation — *low* values are expected and intended when
        priorities bite).
    item_fairness:
        Jain index over per-item mean speeds — the §3 starvation
        indicator (pure priority drives this down; stretch restores it).
    samples:
        Number of delays summarised.
    """

    percentiles: Mapping[str, Mapping[str, float]]
    jitter: Mapping[str, float]
    class_fairness: float
    item_fairness: float
    samples: int

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [f"QoS report over {self.samples} requests"]
        for name, pct in self.percentiles.items():
            lines.append(
                f"  class {name}: p50 {pct['p50']:8.2f}  p95 {pct['p95']:8.2f}  "
                f"p99 {pct['p99']:8.2f}  jitter {self.jitter[name]:8.2f}"
            )
        lines.append(
            f"  fairness: classes {self.class_fairness:.3f}  items {self.item_fairness:.3f}"
        )
        return "\n".join(lines)
