"""Fast-engine hot path: callback server state machine + batched arrivals.

:class:`FastHybridServer` re-implements :class:`~repro.sim.server.HybridServer`'s
Figure-1 loop as a kind-dispatched state machine over
:meth:`~repro.des.fastengine.FastEnvironment.schedule_call` records — no
generator frames, no Event/Timeout objects on the per-cycle path.  It
reuses the exact policy and bookkeeping objects of the reference server
(:class:`~repro.schedulers.base.PullQueue`, the scheduler registry,
:class:`~repro.sim.bandwidth_pool.BandwidthPool`,
:class:`~repro.sim.metrics.MetricsCollector`,
:class:`~repro.sim.overload.OverloadController`,
:class:`~repro.sim.faults.FaultInjector`) and exposes the same public
surface (``submit``/``renege``/``reconfigure_cutoff``/``observers``/
pending & transmission counters), so the uplink channel, fault-aware
client front, conservation watchdog and adaptive controllers work
unchanged against either server.

Differences from the reference server, by design:

* Bandwidth demands are pre-drawn in blocks from the same ``"bandwidth"``
  stream (statistically identical, different stream consumption order).
* Satisfied requests are recorded through the batched
  :meth:`~repro.sim.metrics.MetricsCollector.record_satisfied_many` path
  (bit-identical to sequential recording for the same request sequence).
* Tracing and profiling are **not** supported — they instrument the
  reference server's internals; use ``engine="reference"`` to record
  traces.

:class:`FastArrivalDriver` replaces the ``drive_arrivals`` generator with
one flat calendar record per arrival, fed by pre-generated chunks from
:class:`~repro.workload.batched.BatchedArrivals`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from heapq import heappush

import numpy as np

from ..core.config import HybridConfig
from ..des import URGENT, RandomStreams
from ..des.fastengine import FastEnvironment
from ..schedulers.base import PendingEntry, PullQueue, PullScheduler, PushScheduler
from ..workload.arrivals import Request
from ..workload.batched import BatchedArrivals
from ..workload.items import ItemCatalog
from .bandwidth_pool import BandwidthPool
from .faults import select_shed_victim
from .metrics import MetricsCollector
from .overload import OverloadController
from .server import PullMode

__all__ = ["FastHybridServer", "FastArrivalDriver"]

#: Bandwidth demands pre-drawn per block; amortises numpy scalar-dispatch
#: overhead (~1 µs per draw) over the pull-service hot loop.
_DEMAND_BLOCK = 512


class FastHybridServer:
    """Callback-driven hybrid server for :class:`FastEnvironment`.

    Semantics match :class:`~repro.sim.server.HybridServer` cycle for
    cycle: broadcast the next push item, then serve (or drop) the
    max-importance pull entry; a pure-pull server with an empty queue
    sleeps until the next admission wakes it.  Control flow is expressed
    as scheduled callbacks instead of one generator process:

    ``_advance`` starts cycles until the server blocks on a timed
    transmission (or idles); ``_on_push_done`` / ``_on_pull_done`` are
    the transmission-completion continuations.  Drops and concurrent
    spawns loop in place (the ``while`` in ``_advance``), so consecutive
    zero-air-time decisions never recurse.
    """

    # Engine-parity contract (reprolint RL016): must match the reference
    # and population engines exactly; the checker diffs the declarations
    # and the implementing methods' parameter names project-wide.
    __parity_group__ = "hybrid-engine"
    __parity_surface__ = (
        "submit",
        "renege",
        "reconfigure_cutoff",
        "reconfigure_alpha",
        "reconfigure_bandwidth",
        "pending_push_requests",
        "pending_pull_requests",
        "in_flight_pull_requests",
    )

    def __init__(
        self,
        env: FastEnvironment,
        catalog: ItemCatalog,
        config: HybridConfig,
        push_scheduler: PushScheduler,
        pull_scheduler: PullScheduler,
        pool: BandwidthPool,
        metrics: MetricsCollector,
        streams: RandomStreams,
        pull_mode: PullMode = "serial",
        faults=None,
        tracer=None,
        profiler=None,
    ) -> None:
        if pull_mode not in ("serial", "concurrent"):
            raise ValueError(f"unknown pull mode {pull_mode!r}")
        if pull_mode == "concurrent" and config.cutoff == 0:
            raise ValueError(
                "concurrent pull mode needs a non-empty push set to pace the "
                "service loop; use serial mode for pure-pull systems"
            )
        if tracer is not None:
            raise ValueError(
                "the fast engine does not support tracing (it instruments "
                "HybridServer internals); run with engine='reference'"
            )
        if profiler is not None:
            raise ValueError(
                "the fast engine does not support phase profiling; run with "
                "engine='reference'"
            )
        self.env = env
        self.catalog = catalog
        self.config = config
        self.push_scheduler = push_scheduler
        self.pull_scheduler = pull_scheduler
        self.pool = pool
        self.metrics = metrics
        self.streams = streams
        self.pull_mode: PullMode = pull_mode
        self.faults = faults
        self.tracer = None
        self.profiler = None
        self._fault_cfg = config.faults
        self.cutoff = config.cutoff
        self.overload: OverloadController | None = None
        if config.overload.active:
            self.overload = OverloadController(
                config.overload,
                capacity=config.faults.queue_capacity,
                num_classes=len(config.class_specs),
            )
        self.pull_queue = PullQueue(catalog)
        if pull_scheduler.incremental:
            self.pull_queue.attach_scorer(pull_scheduler)
        self._push_waiters: dict[int, list[Request]] = defaultdict(list)
        self.observers: list = []
        self._in_flight_requests = 0
        self.pull_tx_started = 0
        self.pull_tx_completed = 0
        self.pull_tx_corrupted = 0
        self.active_pull_transmissions = 0

        # Block-drawn Poisson bandwidth demands (same "bandwidth" stream
        # as the reference server, consumed in blocks instead of per
        # service — statistically identical, not bit-identical).
        self._demand_rng = streams.stream("bandwidth")
        self._demand_mean = float(config.bandwidth_demand_mean)
        self._demand_buf: np.ndarray | None = None
        self._demand_idx = 0

        # Buffered arrival source (see attach_arrivals): when set, the
        # server drains time-ordered pre-generated arrivals itself at
        # every point it touches queue state — no per-arrival calendar
        # records at all.
        self._arr_src: BatchedArrivals | None = None
        self._arr_chunk: list[Request] = []
        self._arr_idx = 0
        self._arr_next = math.inf
        self._draining = False

        #: True while the cycle loop is suspended with no continuation on
        #: the calendar (pure-pull, empty queue).  Set before the initial
        #: wake so the start-up record passes the guard; any stale wake
        #: arriving while the loop runs is a no-op.
        self._sleeping = True
        # Mirror the reference server's process start: the loop's first
        # cycle runs at t=0 ahead of NORMAL-priority records.
        env.schedule_call(0.0, self._on_wake, priority=URGENT)

    # -- buffered arrivals ----------------------------------------------------
    def attach_arrivals(self, arrivals: BatchedArrivals) -> None:
        """Feed arrivals by draining ``arrivals`` chunks in-line.

        Only valid when requests reach the server directly (ideal uplink,
        no client-recovery front): instead of one calendar record per
        arrival, the server admits every buffered arrival with timestamp
        ``<= now`` just before it reads or mutates queue state (select,
        push decode, pull completion, reconfiguration).  Admission order
        and timestamps match the reference exactly; only the *event
        count* changes.  Call :meth:`finalize` after the run so arrivals
        between the last service event and the horizon are still
        admitted and counted.
        """
        self._arr_src = arrivals
        self._arr_chunk = arrivals.next_chunk()
        self._arr_idx = 0
        self._arr_next = self._arr_chunk[0].time

    def _drain_arrivals(self, now: float) -> None:
        """Admit every buffered arrival with timestamp ``<= now``."""
        if self._draining:
            # Re-entrant call (an arrival observer touched the server);
            # the outer drain finishes the job.
            return
        nxt = self._arr_next
        if nxt > now:
            return
        self._draining = True
        try:
            chunk = self._arr_chunk
            i = self._arr_idx
            src = self._arr_src
            queue = self.pull_queue
            qadd = queue.add
            metrics = self.metrics
            simple = self.overload is None and self._fault_cfg.queue_capacity is None
            if simple and not self.observers:
                # Tight loop: no observer can mutate server state
                # mid-drain, so the queue-length signal and the arrival
                # counters accumulate in locals — the same float/int
                # operation sequences TimeWeighted.set / Counter would
                # run, written back once.  ``PullQueue.add`` is inlined
                # too (keep in sync with base.py): the queue's dicts,
                # heap and scorer are hoisted once per drain instead of
                # re-derived per call, and the request-count total is
                # written back at the end (integer adds commute).
                chunk_len = len(chunk)
                cutoff = self.cutoff
                push_waiters = self._push_waiters
                entries = queue._entries
                catalog = queue._catalog
                versions = queue._versions
                heap = queue._heap
                score = queue._score
                added = 0
                warmup = metrics.warmup
                tw = metrics.queue_length
                area = tw._area
                last_t = tw._last_time
                level = tw._level
                peak = tw._max
                drained = 0
                by_rank = [0] * len(metrics._arrivals_by_rank)
                while nxt <= now:
                    request = chunk[i]
                    i += 1
                    if i == chunk_len:
                        chunk = src.next_chunk()
                        chunk_len = len(chunk)
                        i = 0
                    drained += 1
                    if nxt >= warmup:
                        by_rank[request.class_rank] += 1
                    item_id = request.item_id
                    if item_id < cutoff:
                        push_waiters[item_id].append(request)
                    else:
                        entry = entries.get(item_id)
                        if entry is None:
                            item = catalog[item_id]
                            entry = PendingEntry(
                                item_id=item.item_id,
                                length=item.length,
                                probability=item.probability,
                                first_arrival=nxt,
                            )
                            entries[item_id] = entry
                        entry.num_requests += 1
                        entry.total_priority += request.priority
                        if nxt < entry.first_arrival:
                            entry.first_arrival = nxt
                        entry.requests.append(request)
                        added += 1
                        if score is not None:
                            version = versions.get(item_id, 0) + 1
                            versions[item_id] = version
                            heappush(heap, (-score(entry, 0.0), item_id, version))
                        if nxt < last_t:
                            raise ValueError(
                                f"time ran backwards: {nxt} < {last_t}"
                            )
                        area += level * (nxt - last_t)
                        last_t = nxt
                        level = float(len(entries))
                        if level > peak:
                            peak = level
                    nxt = chunk[i].time
                tw._area = area
                tw._last_time = last_t
                tw._level = level
                tw._max = peak
                queue._total_requests += added
                metrics.raw_arrivals += drained
                for rank, count in enumerate(by_rank):
                    if count:
                        metrics._arrivals_by_rank[rank].increment(count)
            else:
                record_arrival = metrics.record_arrival
                qlen_set = metrics.queue_length.set
                while nxt <= now:
                    request = chunk[i]
                    i += 1
                    if i == len(chunk):
                        chunk = src.next_chunk()
                        i = 0
                    record_arrival(request)
                    for observer in self.observers:
                        observer(request)
                    if request.item_id < self.cutoff:
                        self._push_waiters[request.item_id].append(request)
                    elif simple:
                        qadd(request)
                        qlen_set(nxt, len(queue))
                    else:
                        self._admit_pull_at(request, nxt, wake=False)
                    nxt = chunk[i].time
            self._arr_chunk = chunk
            self._arr_idx = i
            self._arr_next = nxt
        finally:
            self._draining = False

    def finalize(self, horizon: float) -> None:
        """Admit buffered arrivals up to ``horizon`` after the run stops.

        The reference engine processes every arrival event up to (and
        including) the horizon before stopping; the drain-on-touch
        scheme only reaches arrivals up to the last service event.  The
        system runner calls this once after ``env.run`` so end-of-run
        queue state, arrival counts and the conservation audit match the
        reference accounting.
        """
        if self._arr_next <= horizon:
            self._drain_arrivals(horizon)

    # -- client-facing interface ---------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept one client request (uplink message)."""
        self.metrics.record_arrival(request)
        for observer in self.observers:
            observer(request)
        if request.item_id < self.cutoff:
            self._push_waiters[request.item_id].append(request)
        else:
            self._admit_pull(request)

    def renege(self, request: Request) -> bool:
        """Withdraw an unserved request whose client gave up (deadline)."""
        if self._arr_next <= self.env.now:
            self._drain_arrivals(self.env.now)
        if request.item_id < self.cutoff:
            waiters = self._push_waiters.get(request.item_id)
            if waiters:
                for index, waiting in enumerate(waiters):
                    if waiting is request:
                        del waiters[index]
                        if not waiters:
                            del self._push_waiters[request.item_id]
                        self.metrics.record_reneged(request)
                        return True
            return False
        if self.pull_queue.remove_request(request):
            self.metrics.record_queue_length(self.env.now, len(self.pull_queue))
            self.metrics.record_reneged(request)
            return True
        return False

    def _admit_pull(self, request: Request) -> None:
        self._admit_pull_at(request, self.env.now, wake=True)

    def _admit_pull_at(self, request: Request, now: float, wake: bool) -> None:
        """Insert one request into the (possibly bounded) pull queue.

        Same admission pipeline as the reference server: overload
        controller first, then capacity shedding, then the queue proper.
        ``now`` is the admission timestamp (the arrival's own time when
        called from the drain loop); ``wake`` is false while draining —
        the loop is already running.
        """
        capacity = self._fault_cfg.queue_capacity
        if (
            self.overload is not None
            and self.pull_queue.peek(request.item_id) is None
            and not self.overload.admits(request.class_rank, len(self.pull_queue))
        ):
            self.metrics.record_overload_rejected(request)
            return
        if (
            capacity is not None
            and self.pull_queue.peek(request.item_id) is None
            and len(self.pull_queue) >= capacity
        ):
            candidate = self.pull_queue.make_entry(request)
            victim = select_shed_victim(
                self._fault_cfg.shedding_policy,
                self.pull_queue,
                candidate,
                self.pull_scheduler,
                now,
            )
            if victim is None:
                self.metrics.record_shed(request)
                return
            evicted = self.pull_queue.pop(victim)
            for shed in evicted.requests:
                self.metrics.record_shed(shed)
        self.pull_queue.add(request)
        self.metrics.record_queue_length(now, len(self.pull_queue))
        if wake and self._sleeping:
            # Wake the sleeping pure-pull loop; the zero-delay record
            # mirrors the reference server's wakeup event (the cycle
            # resumes at the same time, after the current record).
            # ``_sleeping`` is cleared by the wake itself, so racing
            # wakes (e.g. a buffered-arrival wake already scheduled)
            # collapse into no-ops.
            self.env.schedule_call(0.0, self._on_wake)

    # -- server cycle --------------------------------------------------------
    def _on_wake(self, _arg=None) -> None:
        if not self._sleeping:
            # Stale wake: another record already resumed the loop (or a
            # transmission is on air).  Guarding here keeps duplicate
            # wakeups from running two cycle loops concurrently.
            return
        self._sleeping = False
        self._advance()

    def _advance(self) -> None:
        """Run cycles until a timed transmission blocks or the queue drains."""
        while True:
            item_id = self.push_scheduler.next_item() if self.cutoff else None
            if item_id is not None:
                self.env.schedule_call(
                    self.catalog[item_id].length,
                    self._on_push_done,
                    (item_id, self.env.now),
                )
                return
            if not self._pull_step(pushed=False):
                return

    def _on_push_done(self, payload) -> None:
        """One push slot's air time elapsed: decode (or corrupt), continue."""
        item_id, started = payload
        if self._arr_next <= self.env.now:
            # Buffered arrivals during the slot's air time join the
            # waiters/queue before the decode check, exactly as their
            # per-event admissions would have under the reference engine.
            self._drain_arrivals(self.env.now)
        if self.faults is not None and self.faults.downlink_lost():
            # Corrupted slot: air time spent, nobody decodes; waiters stay
            # parked for the next cycle occurrence.
            self.metrics.record_corrupted_push()
        else:
            self.metrics.record_push_broadcast()
            waiters = self._push_waiters.get(item_id)
            if waiters:
                # Only clients already waiting when the broadcast began
                # can decode the item (they need its first byte).
                satisfied = [r for r in waiters if r.time <= started]
                if satisfied:
                    still_waiting = [r for r in waiters if r.time > started]
                    if still_waiting:
                        self._push_waiters[item_id] = still_waiting
                    else:
                        del self._push_waiters[item_id]
                    self.metrics.record_satisfied_many(
                        satisfied, self.env.now, via_push=True
                    )
        if self._pull_step(pushed=True):
            self._advance()

    def _pull_step(self, pushed: bool) -> bool:
        """Serve or drop one pull entry; ``True`` → caller continues the cycle.

        Returns ``False`` when control is suspended — a serial
        transmission went on air (``_on_pull_done`` resumes the cycle) or
        the pure-pull queue drained (``_admit_pull`` wakes the loop).
        """
        env = self.env
        now = env.now
        if self._arr_next <= now:
            self._drain_arrivals(now)
        entry = self.pull_scheduler.select(self.pull_queue, now)
        if entry is None:
            if pushed:
                return True
            self._sleeping = True
            if self._arr_next < math.inf:
                # Pure-pull with buffered arrivals: nothing external will
                # wake the loop, so sleep until the next arrival (the
                # drain above guarantees it is strictly in the future).
                env.schedule_call(self._arr_next - now, self._on_wake)
            return False
        # PullQueue.pop + TimeWeighted.set, inlined (keep in sync with
        # base.py / monitor.py): one entry leaves per service, so the
        # method dispatch overhead is pure per-service tax.
        queue = self.pull_queue
        item_id = entry.item_id
        del queue._entries[item_id]
        queue._total_requests -= entry.num_requests
        if queue._scheduler is not None and item_id in queue._versions:
            queue._versions[item_id] += 1
        tw = self.metrics.queue_length
        if now < tw._last_time:
            raise ValueError(f"time ran backwards: {now} < {tw._last_time}")
        tw._area += tw._level * (now - tw._last_time)
        tw._last_time = now
        level = float(len(queue._entries))
        tw._level = level
        if level > tw._max:
            tw._max = level

        demand = self._next_demand()
        requests = entry.requests
        rank = requests[0].class_rank
        for request in requests:
            if request.class_rank < rank:
                rank = request.class_rank
        if not self.pool.try_acquire(rank, demand):
            # Admission failed: the item and all its pending requests are lost.
            self.metrics.record_pull_drop()
            for request in entry.requests:
                self.metrics.record_blocked(request)
            return True
        self._in_flight_requests += entry.num_requests
        self.pull_tx_started += 1
        self.active_pull_transmissions += 1
        if self.pull_mode == "serial":
            env.schedule_call(
                entry.length, self._on_pull_done_serial, (entry, rank, demand)
            )
            return False
        env.schedule_call(entry.length, self._on_pull_done, (entry, rank, demand))
        return True

    def _on_pull_done_serial(self, payload) -> None:
        self._complete_pull(*payload)
        self._advance()

    def _on_pull_done(self, payload) -> None:
        self._complete_pull(*payload)

    def _complete_pull(self, entry: PendingEntry, rank: int, demand: float) -> None:
        """A pull transmission left the air: satisfy, or corrupt and re-queue."""
        self._in_flight_requests -= entry.num_requests
        if self._arr_next <= self.env.now:
            # Arrivals during the air time enter the queue (at their own
            # timestamps) before completion bookkeeping, matching the
            # reference event order.
            self._drain_arrivals(self.env.now)
        if self.faults is not None and self.faults.downlink_lost():
            # Server-side ARQ: air time and bandwidth are spent, pending
            # requests re-enter the queue unless their deadline passed.
            self.pull_tx_corrupted += 1
            self.active_pull_transmissions -= 1
            self.pool.release(rank, demand)
            self.metrics.record_corrupted_pull()
            now = self.env.now
            deadline_for = self._fault_cfg.deadline_for
            for request in entry.requests:
                if now >= request.time + deadline_for(request.class_rank):
                    self.metrics.record_reneged(request)
                else:
                    self._admit_pull(request)
            return
        now = self.env.now
        self.metrics.record_satisfied_many(entry.requests, now, via_push=False)
        self.pull_scheduler.observe_service(entry, now)
        self.pool.release(rank, demand)
        self.metrics.record_pull_service()
        self.pull_tx_completed += 1
        self.active_pull_transmissions -= 1

    def _next_demand(self) -> float:
        """Next Poisson bandwidth demand from the block-drawn buffer."""
        buf = self._demand_buf
        i = self._demand_idx
        if buf is None or i >= _DEMAND_BLOCK:
            buf = self._demand_rng.poisson(self._demand_mean, _DEMAND_BLOCK)
            self._demand_buf = buf
            i = 0
        self._demand_idx = i + 1
        return float(buf[i])

    # -- reconfiguration -----------------------------------------------------
    def reconfigure_cutoff(self, new_cutoff: int, push_scheduler: PushScheduler) -> None:
        """Switch to a new cut-off point at runtime (§3 re-optimisation)."""
        if not 0 <= new_cutoff <= len(self.catalog):
            raise ValueError(f"cutoff {new_cutoff} outside [0, {len(self.catalog)}]")
        if new_cutoff == 0 and self.pull_mode == "concurrent":
            raise ValueError("concurrent pull mode needs a non-empty push set")
        if push_scheduler.cutoff != new_cutoff:
            raise ValueError(
                f"push scheduler built for cutoff {push_scheduler.cutoff}, "
                f"expected {new_cutoff}"
            )
        if self._arr_next <= self.env.now:
            # Settle buffered arrivals under the *old* cutoff before the
            # push/pull split moves.
            self._drain_arrivals(self.env.now)
        self.cutoff = new_cutoff
        self.push_scheduler = push_scheduler
        # Pull entries for items that moved into the push set.
        for item_id in [e.item_id for e in self.pull_queue if e.item_id < new_cutoff]:
            entry = self.pull_queue.pop(item_id)
            self._push_waiters[item_id].extend(entry.requests)
        # Push waiters for items that moved into the pull set (through the
        # bounded admission path, so a capacity limit still holds).
        for item_id in [i for i in self._push_waiters if i >= new_cutoff]:
            for request in self._push_waiters.pop(item_id):
                self._admit_pull(request)
        self.metrics.record_queue_length(self.env.now, len(self.pull_queue))

    def reconfigure_alpha(self, new_alpha: float) -> None:
        """Retune the Eq. 1 importance weight α at runtime (control plane).

        Buffered arrivals settle under the *old* α first (mirroring
        :meth:`reconfigure_cutoff`), then the scheduler is retuned and
        the queue's heap index rebuilt so no stale score survives.
        """
        setter = getattr(self.pull_scheduler, "set_alpha", None)
        if setter is None:
            raise ValueError(
                f"pull scheduler {self.pull_scheduler.name!r} has no alpha knob"
            )
        if self._arr_next <= self.env.now:
            self._drain_arrivals(self.env.now)
        setter(new_alpha)
        if self.pull_queue.indexed_for(self.pull_scheduler):
            self.pull_queue.attach_scorer(self.pull_scheduler)

    def reconfigure_bandwidth(self, capacities: list[float]) -> None:
        """Install new per-class bandwidth reservations (control plane).

        In-flight transmissions keep their held bandwidth (see
        :meth:`~repro.sim.bandwidth_pool.BandwidthPool.reconfigure`), so
        the change never breaks conservation or non-preemption.
        """
        self.pool.reconfigure(capacities)

    # -- diagnostics -----------------------------------------------------------
    @property
    def pending_push_requests(self) -> int:
        """Requests currently parked waiting for a push broadcast."""
        return sum(len(waiters) for waiters in self._push_waiters.values())

    @property
    def pending_pull_requests(self) -> int:
        """Requests currently queued in the pull system."""
        return self.pull_queue.total_requests

    @property
    def in_flight_pull_requests(self) -> int:
        """Requests riding on pull transmissions currently on air."""
        return self._in_flight_requests


class FastArrivalDriver:
    """Submit pre-generated arrival chunks through flat calendar records.

    One ``schedule_call`` record per arrival (arrivals must interleave
    with service completions in time order), but no generator resume, no
    ``Timeout`` object and no scalar RNG call per arrival — the chunk's
    requests were drawn vectorised by
    :class:`~repro.workload.batched.BatchedArrivals`.
    """

    def __init__(self, env: FastEnvironment, front, arrivals: BatchedArrivals) -> None:
        self.env = env
        self.front = front
        self.arrivals = arrivals
        self._chunk: list[Request] = arrivals.next_chunk()
        self._index = 0
        first = self._chunk[0]
        env.schedule_call(first.time - env.now, self._on_arrival)

    def _on_arrival(self, _arg=None) -> None:
        chunk = self._chunk
        index = self._index
        request = chunk[index]
        index += 1
        if index >= len(chunk):
            chunk = self.arrivals.next_chunk()
            self._chunk = chunk
            index = 0
        self._index = index
        self.env.schedule_call(chunk[index].time - self.env.now, self._on_arrival)
        self.front.submit(request)
