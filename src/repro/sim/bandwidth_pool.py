"""Per-class downlink bandwidth pools with admission control.

Paper §3: each pull transmission demands a Poisson-distributed amount of
bandwidth; the demand is charged to the *service class* of the item's most
important requester.  If the class's remaining reservation cannot cover
the demand, the item — and every request pending for it — is dropped
(blocked).  Completed transmissions return their bandwidth to the pool.

The pool is deliberately dumb — accounting only.  All policy (which class
pays, when to release) lives in the server.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BandwidthPool"]


class BandwidthPool:
    """Bandwidth reservations for each service class.

    Parameters
    ----------
    capacities:
        Absolute bandwidth reserved per class, rank order (index 0 =
        most important class).
    """

    def __init__(self, capacities: np.ndarray | list[float]) -> None:
        arr = np.asarray(capacities, dtype=float)
        if arr.ndim != 1 or len(arr) == 0:
            raise ValueError("capacities must be a non-empty 1-D array")
        if np.any(arr < 0):
            raise ValueError(f"capacities must be >= 0, got {arr}")
        # Plain Python lists: the accounting is all scalar indexing on the
        # server's hot path, where ndarray item access costs ~1 µs a touch.
        # Arithmetic is identical either way (both are IEEE doubles).
        self._capacity: list[float] = arr.tolist()
        self._in_use: list[float] = [0.0] * len(self._capacity)
        self._admitted: list[int] = [0] * len(self._capacity)
        self._rejected: list[int] = [0] * len(self._capacity)

    @property
    def num_classes(self) -> int:
        """Number of per-class pools."""
        return len(self._capacity)

    def capacity(self, rank: int) -> float:
        """Total reservation of class ``rank``."""
        return float(self._capacity[rank])

    def available(self, rank: int) -> float:
        """Currently unused bandwidth of class ``rank``."""
        return float(self._capacity[rank] - self._in_use[rank])

    def in_use(self, rank: int) -> float:
        """Bandwidth of class ``rank`` currently held by transmissions."""
        return float(self._in_use[rank])

    def try_acquire(self, rank: int, demand: float) -> bool:
        """Admit a transmission needing ``demand`` units from class ``rank``.

        Returns ``True`` (and holds the bandwidth) if the class's remaining
        reservation covers the demand, else ``False`` and counts a
        rejection.  A zero demand is always admitted.
        """
        if demand < 0:
            raise ValueError(f"demand must be >= 0, got {demand}")
        if demand <= self.available(rank) + 1e-12:
            self._in_use[rank] += demand
            self._admitted[rank] += 1
            return True
        self._rejected[rank] += 1
        return False

    def release(self, rank: int, demand: float) -> None:
        """Return ``demand`` units to class ``rank``'s pool."""
        if demand < 0:
            raise ValueError(f"demand must be >= 0, got {demand}")
        if demand > self._in_use[rank] + 1e-9:
            raise ValueError(
                f"release of {demand} exceeds in-use {self._in_use[rank]} for rank {rank}"
            )
        self._in_use[rank] = max(0.0, self._in_use[rank] - demand)

    def reconfigure(self, capacities: np.ndarray | list[float]) -> None:
        """Install new per-class reservations atomically (control plane).

        Only the capacity vector changes; the in-use ledger and the
        admission counters are untouched, so transmissions already on
        air keep their held bandwidth and release against the same
        accounting — conservation holds across the boundary.  Shrinking
        a class below its current in-use is legal: its availability goes
        negative and it simply admits nothing until enough transmissions
        drain, which is exactly the non-preemptive semantics the paper's
        admission control implies.
        """
        arr = np.asarray(capacities, dtype=float)
        if arr.shape != (len(self._capacity),):
            raise ValueError(
                f"expected {len(self._capacity)} capacities, got shape {arr.shape}"
            )
        if np.any(arr < 0) or not np.all(np.isfinite(arr)):
            raise ValueError(f"capacities must be finite and >= 0, got {arr}")
        self._capacity = arr.tolist()

    # -- accounting -------------------------------------------------------------
    def admitted(self, rank: int) -> int:
        """Number of transmissions admitted for class ``rank``."""
        return int(self._admitted[rank])

    def rejected(self, rank: int) -> int:
        """Number of transmissions rejected for class ``rank``."""
        return int(self._rejected[rank])

    def rejection_rate(self, rank: int) -> float:
        """Fraction of class-``rank`` admission attempts that were rejected."""
        total = self._admitted[rank] + self._rejected[rank]
        return float(self._rejected[rank] / total) if total else float("nan")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<BandwidthPool capacity={self._capacity} in_use={self._in_use}>"
