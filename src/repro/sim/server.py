"""The hybrid broadcast server process (Figure 1 of the paper).

The server loops forever:

1. broadcast the next push item chosen by the push scheduler (taking the
   item's length in broadcast units), satisfying every client that was
   already waiting for it when the transmission began;
2. if the pull queue is non-empty, extract the entry with maximum
   importance factor, sample its Poisson bandwidth demand, charge it to
   the service class of its most important requester, and either

   * transmit it (serving all pending requests and then releasing the
     bandwidth), or
   * drop the entry — and all its pending requests — if the class's
     bandwidth reservation cannot cover the demand (blocking).

Two pull service modes are supported:

* ``"serial"`` — the server alternates push and pull transmissions on one
  channel, exactly matching the §4 queueing analysis (the birth-death
  chain alternating μ₁/μ₂ service).
* ``"concurrent"`` — pull transmissions are spawned as parallel downlink
  streams that hold their bandwidth for the duration of the transfer
  while the broadcast cycle continues.  This realises the reading of §3
  in which bandwidth is a finite resource that *accumulates* across
  overlapping transfers, making blocking dependent on load rather than
  only on the demand distribution's tail.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Literal

from ..core.config import HybridConfig
from ..des import Environment, RandomStreams
from ..obs.events import (
    CutoffChanged,
    GammaSnapshot,
    PullDropped,
    PullServed,
    PushBroadcast,
    QueueSampled,
    RequestArrived,
    RequestBlocked,
    RequestReneged,
    RequestSatisfied,
    RequestShed,
)
from ..schedulers.base import PendingEntry, PullQueue, PullScheduler, PushScheduler
from ..workload.arrivals import Request
from ..workload.items import ItemCatalog
from .bandwidth_pool import BandwidthPool
from .faults import select_shed_victim
from .metrics import MetricsCollector
from .overload import OverloadController

__all__ = ["HybridServer", "PullMode"]

PullMode = Literal["serial", "concurrent"]


class HybridServer:
    """Server-side state machine of the hybrid scheduling algorithm.

    Parameters
    ----------
    env:
        Simulation environment.
    catalog:
        Item database.
    config:
        System configuration (cutoff, bandwidth, demand law...).
    push_scheduler, pull_scheduler:
        Policy objects.
    pool:
        Per-class bandwidth pools.
    metrics:
        Metrics sink.
    streams:
        Named random streams ("bandwidth" is drawn here).
    pull_mode:
        ``"serial"`` (analysis-faithful, default) or ``"concurrent"``.
    faults:
        Optional :class:`~repro.sim.faults.FaultInjector` corrupting push
        slots and pull transmissions.  Degradation policy (queue capacity,
        shedding, deadlines) is read from ``config.faults`` regardless.
    tracer:
        Optional :class:`~repro.obs.TraceRecorder`.  When ``None`` (the
        default) no event objects are built and the fast path is
        untouched; when installed, every scheduling decision is emitted
        as a typed trace event.  Tracing never consumes randomness, so
        results are bit-identical either way.
    profiler:
        Optional :class:`~repro.obs.PhaseProfiler` timing the
        scheduler-decision hot spots (``push.select``, ``pull.select``).
    """

    # Engine-parity contract (reprolint RL016): the control surface every
    # interchangeable engine must expose identically.  The checker diffs
    # these declarations project-wide — add a hook here and lint fails
    # until the fast-path and population engines ship it too.
    __parity_group__ = "hybrid-engine"
    __parity_surface__ = (
        "submit",
        "renege",
        "reconfigure_cutoff",
        "reconfigure_alpha",
        "reconfigure_bandwidth",
        "pending_push_requests",
        "pending_pull_requests",
        "in_flight_pull_requests",
    )

    def __init__(
        self,
        env: Environment,
        catalog: ItemCatalog,
        config: HybridConfig,
        push_scheduler: PushScheduler,
        pull_scheduler: PullScheduler,
        pool: BandwidthPool,
        metrics: MetricsCollector,
        streams: RandomStreams,
        pull_mode: PullMode = "serial",
        faults=None,
        tracer=None,
        profiler=None,
    ) -> None:
        if pull_mode not in ("serial", "concurrent"):
            raise ValueError(f"unknown pull mode {pull_mode!r}")
        if pull_mode == "concurrent" and config.cutoff == 0:
            raise ValueError(
                "concurrent pull mode needs a non-empty push set to pace the "
                "service loop; use serial mode for pure-pull systems"
            )
        self.env = env
        self.catalog = catalog
        self.config = config
        self.push_scheduler = push_scheduler
        self.pull_scheduler = pull_scheduler
        self.pool = pool
        self.metrics = metrics
        self.streams = streams
        self.pull_mode: PullMode = pull_mode

        self.faults = faults
        self.tracer = tracer
        self.profiler = profiler
        self._fault_cfg = config.faults
        #: Current cut-off point; mutable to support the §3 periodic
        #: re-optimisation (see :meth:`reconfigure_cutoff`).
        self.cutoff = config.cutoff
        #: Class-aware admission controller; ``None`` (inert default
        #: config) keeps the exact pre-overload admission path.
        self.overload: OverloadController | None = None
        if config.overload.active:
            self.overload = OverloadController(
                config.overload,
                capacity=config.faults.queue_capacity,
                num_classes=len(config.class_specs),
            )
        self.pull_queue = PullQueue(catalog)
        if pull_scheduler.incremental:
            # Mutation-invariant scores: serve selections from the queue's
            # lazy max-heap instead of rescanning every entry.
            self.pull_queue.attach_scorer(pull_scheduler)
        #: Requests waiting for a push item's next broadcast, per item.
        self._push_waiters: dict[int, list[Request]] = defaultdict(list)
        #: Callbacks invoked with every submitted request (demand
        #: estimators, adaptive controllers, loggers).
        self.observers: list = []
        self._in_flight_requests = 0
        #: Pull-transmission accounting audited by the conservation
        #: watchdog's no-preemption check.
        self.pull_tx_started = 0
        self.pull_tx_completed = 0
        self.pull_tx_corrupted = 0
        self.active_pull_transmissions = 0
        self._wakeup = env.event()
        self._process = env.process(self._run())

    # -- client-facing interface -----------------------------------------------
    def submit(self, request: Request) -> None:
        """Accept one client request (uplink message).

        Push-item requests park until the item's broadcast; pull-item
        requests join the pull queue (folding into an existing entry for
        the same item if present).  A bounded pull queue at capacity
        sheds an entry per the configured class-aware policy.
        """
        self.metrics.record_arrival(request)
        if self.tracer is not None:
            self.tracer.emit(
                RequestArrived(
                    time=self.env.now,
                    req=self.tracer.rid(request),
                    item_id=request.item_id,
                    client_id=request.client_id,
                    class_rank=request.class_rank,
                    priority=request.priority,
                    gen_time=request.time,
                )
            )
        for observer in self.observers:
            observer(request)
        if request.item_id < self.cutoff:
            self._push_waiters[request.item_id].append(request)
        else:
            self._admit_pull(request)

    def renege(self, request: Request) -> bool:
        """Withdraw an unserved request whose client gave up (deadline).

        Returns ``True`` and records the abandonment if the request was
        still parked for a push broadcast or waiting in the pull queue;
        ``False`` if it is no longer pending (served, in flight on a
        transmission, blocked or shed) — too late to renege.
        """
        if request.item_id < self.cutoff:
            waiters = self._push_waiters.get(request.item_id)
            if waiters:
                for index, waiting in enumerate(waiters):
                    if waiting is request:
                        del waiters[index]
                        if not waiters:
                            del self._push_waiters[request.item_id]
                        self.metrics.record_reneged(request)
                        if self.tracer is not None:
                            self._emit_lifecycle(RequestReneged, request)
                        return True
            return False
        if self.pull_queue.remove_request(request):
            self.metrics.record_queue_length(self.env.now, len(self.pull_queue))
            self.metrics.record_reneged(request)
            if self.tracer is not None:
                self._emit_lifecycle(RequestReneged, request)
                self._emit_queue_length()
            return True
        return False

    # -- trace emission helpers ------------------------------------------------
    def _emit_lifecycle(self, event_cls, request: Request) -> None:
        """Emit one request life-cycle event (tracer must be installed)."""
        self.tracer.emit(
            event_cls(
                time=self.env.now,
                req=self.tracer.rid(request),
                item_id=request.item_id,
                class_rank=request.class_rank,
            )
        )

    def _emit_queue_length(self) -> None:
        """Emit the current pull-queue length (tracer must be installed)."""
        self.tracer.emit(QueueSampled(time=self.env.now, length=len(self.pull_queue)))

    def _admit_pull(self, request: Request) -> None:
        """Insert one request into the (possibly bounded) pull queue.

        When the queue is at capacity and the request would open a new
        entry, the configured shedding policy sacrifices either a queued
        entry (all its pending requests are shed) or the incoming request.

        An armed overload controller is consulted first: above its
        class-specific occupancy limit a new entry is refused outright
        (lowest classes first), before the queue ever reaches capacity.
        Requests folding into an existing entry bypass the controller —
        they consume no queue slot.
        """
        capacity = self._fault_cfg.queue_capacity
        if (
            self.overload is not None
            and self.pull_queue.peek(request.item_id) is None
            and not self.overload.admits(request.class_rank, len(self.pull_queue))
        ):
            self.metrics.record_overload_rejected(request)
            if self.tracer is not None:
                self._emit_lifecycle(RequestShed, request)
            return
        if (
            capacity is not None
            and self.pull_queue.peek(request.item_id) is None
            and len(self.pull_queue) >= capacity
        ):
            candidate = self.pull_queue.make_entry(request)
            victim = select_shed_victim(
                self._fault_cfg.shedding_policy,
                self.pull_queue,
                candidate,
                self.pull_scheduler,
                self.env.now,
            )
            if victim is None:
                self.metrics.record_shed(request)
                if self.tracer is not None:
                    self._emit_lifecycle(RequestShed, request)
                return
            evicted = self.pull_queue.pop(victim)
            for shed in evicted.requests:
                self.metrics.record_shed(shed)
                if self.tracer is not None:
                    self._emit_lifecycle(RequestShed, shed)
        self.pull_queue.add(request)
        self.metrics.record_queue_length(self.env.now, len(self.pull_queue))
        if self.tracer is not None:
            self._emit_queue_length()
        self._wake()

    # -- server process ------------------------------------------------------------
    def _wake(self) -> None:
        if not self._wakeup.triggered:
            self._wakeup.succeed()

    def _run(self):
        """Main loop per Figure 1: push one item, then serve one pull entry."""
        while True:
            pushed = yield from self._broadcast_next_push()
            served = yield from self._serve_next_pull()
            if not pushed and not served:
                # Pure-pull system with an empty queue: sleep until the
                # next request arrives.
                self._wakeup = self.env.event()
                if self.pull_queue:
                    continue
                yield self._wakeup

    def _broadcast_next_push(self):
        """Broadcast one push slot; returns True if a slot was transmitted."""
        if self.profiler is not None:
            with self.profiler.phase("push.select"):
                item_id = self.push_scheduler.next_item()
        else:
            item_id = self.push_scheduler.next_item()
        if item_id is None:
            return False
        started = self.env.now
        length = self.catalog[item_id].length
        yield self.env.timeout(length)
        if self.faults is not None and self.faults.downlink_lost():
            # Corrupted slot: the air time is spent but no waiter decodes
            # the item; they stay parked for the next cycle occurrence.
            self.metrics.record_corrupted_push()
            if self.tracer is not None:
                self.tracer.emit(
                    PushBroadcast(
                        time=started,
                        end=self.env.now,
                        item_id=item_id,
                        satisfied=(),
                        corrupted=True,
                    )
                )
            return True
        self.metrics.record_push_broadcast()
        # Only clients already waiting when the broadcast began can decode
        # the item (they need its first byte); later arrivals wait for the
        # next occurrence in the cycle.
        satisfied: list[Request] = []
        waiters = self._push_waiters.get(item_id)
        if waiters:
            still_waiting: list[Request] = []
            for request in waiters:
                if request.time <= started:
                    self.metrics.record_satisfied(request, self.env.now, via_push=True)
                    satisfied.append(request)
                else:
                    still_waiting.append(request)
            if still_waiting:
                self._push_waiters[item_id] = still_waiting
            else:
                del self._push_waiters[item_id]
        if self.tracer is not None:
            rids = tuple(self.tracer.rid(request) for request in satisfied)
            self.tracer.emit(
                PushBroadcast(
                    time=started,
                    end=self.env.now,
                    item_id=item_id,
                    satisfied=rids,
                    corrupted=False,
                )
            )
            for request in satisfied:
                self.tracer.emit(
                    RequestSatisfied(
                        time=self.env.now,
                        req=self.tracer.rid(request),
                        item_id=request.item_id,
                        class_rank=request.class_rank,
                        via_push=True,
                        delay=self.env.now - request.time,
                    )
                )
        return True

    def _serve_next_pull(self):
        """Serve (or drop) the max-importance pull entry; True if one was taken."""
        if self.profiler is not None:
            with self.profiler.phase("pull.select"):
                entry = self.pull_scheduler.select(self.pull_queue, self.env.now)
        else:
            entry = self.pull_scheduler.select(self.pull_queue, self.env.now)
        if entry is None:
            return False
        if self.tracer is not None:
            # Score the whole queue *before* popping the winner, with the
            # same scheduler state the selection just used, so the trace
            # carries a provable max-γ/tie-break record.
            gamma = self.pull_scheduler.score(entry, self.env.now)
            self.tracer.note_gamma(entry, gamma)
            if self.tracer.gamma_snapshots:
                self.tracer.emit(
                    GammaSnapshot(
                        time=self.env.now,
                        served_item=entry.item_id,
                        scores=tuple(
                            (e.item_id, self.pull_scheduler.score(e, self.env.now))
                            for e in self.pull_queue
                        ),
                    )
                )
        self.pull_queue.pop(entry.item_id)
        self.metrics.record_queue_length(self.env.now, len(self.pull_queue))
        if self.tracer is not None:
            self._emit_queue_length()

        demand = float(self.streams.poisson("bandwidth", self.config.bandwidth_demand_mean))
        rank = min(request.class_rank for request in entry.requests)
        if not self.pool.try_acquire(rank, demand):
            # Admission failed: the item and all its pending requests are lost.
            self.metrics.record_pull_drop()
            if self.tracer is not None:
                self.tracer.emit(
                    PullDropped(
                        time=self.env.now,
                        item_id=entry.item_id,
                        class_rank=rank,
                        demand=demand,
                        requests=tuple(
                            self.tracer.rid(request) for request in entry.requests
                        ),
                    )
                )
            for request in entry.requests:
                self.metrics.record_blocked(request)
                if self.tracer is not None:
                    self._emit_lifecycle(RequestBlocked, request)
            return True

        self._in_flight_requests += entry.num_requests
        if self.pull_mode == "serial":
            yield from self._transmit_pull(entry, rank, demand)
        else:
            self.env.process(self._transmit_pull(entry, rank, demand))
        return True

    def _transmit_pull(self, entry: PendingEntry, rank: int, demand: float):
        """Transmit one pull item, satisfy its requesters, free bandwidth.

        Under a lossy downlink the whole transmission may be corrupted:
        the air time and bandwidth are spent, nobody is satisfied, and the
        pending requests re-enter the pull queue (server-side ARQ) unless
        their clients' deadlines have meanwhile expired.
        """
        self.pull_tx_started += 1
        self.active_pull_transmissions += 1
        started = self.env.now
        yield self.env.timeout(entry.length)
        self._in_flight_requests -= entry.num_requests
        if self.faults is not None and self.faults.downlink_lost():
            self.pull_tx_corrupted += 1
            self.active_pull_transmissions -= 1
            self.pool.release(rank, demand)
            self.metrics.record_corrupted_pull()
            if self.tracer is not None:
                self.tracer.emit(
                    PullServed(
                        time=started,
                        end=self.env.now,
                        item_id=entry.item_id,
                        gamma=self.tracer.take_gamma(entry),
                        class_rank=rank,
                        demand=demand,
                        requests=tuple(
                            self.tracer.rid(request) for request in entry.requests
                        ),
                        corrupted=True,
                    )
                )
            for request in entry.requests:
                if self.env.now >= request.time + self._fault_cfg.deadline_for(
                    request.class_rank
                ):
                    # The client reneged while the transmission was on air.
                    self.metrics.record_reneged(request)
                    if self.tracer is not None:
                        self._emit_lifecycle(RequestReneged, request)
                else:
                    self._admit_pull(request)
            return
        if self.tracer is not None:
            self.tracer.emit(
                PullServed(
                    time=started,
                    end=self.env.now,
                    item_id=entry.item_id,
                    gamma=self.tracer.take_gamma(entry),
                    class_rank=rank,
                    demand=demand,
                    requests=tuple(
                        self.tracer.rid(request) for request in entry.requests
                    ),
                    corrupted=False,
                )
            )
        for request in entry.requests:
            self.metrics.record_satisfied(request, self.env.now, via_push=False)
            if self.tracer is not None:
                self.tracer.emit(
                    RequestSatisfied(
                        time=self.env.now,
                        req=self.tracer.rid(request),
                        item_id=request.item_id,
                        class_rank=request.class_rank,
                        via_push=False,
                        delay=self.env.now - request.time,
                    )
                )
        self.pull_scheduler.observe_service(entry, self.env.now)
        self.pool.release(rank, demand)
        self.metrics.record_pull_service()
        self.pull_tx_completed += 1
        self.active_pull_transmissions -= 1

    # -- reconfiguration ---------------------------------------------------------
    def reconfigure_cutoff(self, new_cutoff: int, push_scheduler: PushScheduler) -> None:
        """Switch to a new cut-off point at runtime (§3 re-optimisation).

        Pending work migrates with the split:

        * pull-queue entries whose item is now pushed dissolve into
          push waiters (the broadcast cycle will satisfy them);
        * push waiters whose item is now pulled are re-submitted into the
          pull queue, keeping their original arrival times.

        ``push_scheduler`` must already be built for ``new_cutoff``.
        """
        if not 0 <= new_cutoff <= len(self.catalog):
            raise ValueError(f"cutoff {new_cutoff} outside [0, {len(self.catalog)}]")
        if new_cutoff == 0 and self.pull_mode == "concurrent":
            raise ValueError("concurrent pull mode needs a non-empty push set")
        if push_scheduler.cutoff != new_cutoff:
            raise ValueError(
                f"push scheduler built for cutoff {push_scheduler.cutoff}, "
                f"expected {new_cutoff}"
            )
        if self.tracer is not None:
            self.tracer.emit(
                CutoffChanged(
                    time=self.env.now, old_cutoff=self.cutoff, new_cutoff=new_cutoff
                )
            )
        self.cutoff = new_cutoff
        self.push_scheduler = push_scheduler

        # Pull entries for items that moved into the push set.
        for item_id in [e.item_id for e in self.pull_queue if e.item_id < new_cutoff]:
            entry = self.pull_queue.pop(item_id)
            self._push_waiters[item_id].extend(entry.requests)
        # Push waiters for items that moved into the pull set (through the
        # bounded admission path, so a capacity limit still holds).
        for item_id in [i for i in self._push_waiters if i >= new_cutoff]:
            for request in self._push_waiters.pop(item_id):
                self._admit_pull(request)
        self.metrics.record_queue_length(self.env.now, len(self.pull_queue))
        if self.tracer is not None:
            self._emit_queue_length()
        if self.pull_queue:
            self._wake()

    def reconfigure_alpha(self, new_alpha: float) -> None:
        """Retune the Eq. 1 importance weight α at runtime (control plane).

        Only pull schedulers exposing a ``set_alpha`` knob support this
        (the importance-factor family).  When the queue keeps a heap
        index over the scheduler's scores, the index is rebuilt so no
        record priced under the old α survives — selections after this
        call are exactly what a fresh scheduler would pick.
        """
        setter = getattr(self.pull_scheduler, "set_alpha", None)
        if setter is None:
            raise ValueError(
                f"pull scheduler {self.pull_scheduler.name!r} has no alpha knob"
            )
        setter(new_alpha)
        if self.pull_queue.indexed_for(self.pull_scheduler):
            self.pull_queue.attach_scorer(self.pull_scheduler)

    def reconfigure_bandwidth(self, capacities: list[float]) -> None:
        """Install new per-class bandwidth reservations (control plane).

        Delegates to :meth:`~repro.sim.bandwidth_pool.BandwidthPool.reconfigure`:
        in-flight transmissions keep their held bandwidth, so the change
        is atomic with respect to conservation and non-preemption.
        """
        self.pool.reconfigure(capacities)

    # -- diagnostics -----------------------------------------------------------------
    @property
    def pending_push_requests(self) -> int:
        """Requests currently parked waiting for a push broadcast."""
        return sum(len(waiters) for waiters in self._push_waiters.values())

    @property
    def pending_pull_requests(self) -> int:
        """Requests currently queued in the pull system."""
        return self.pull_queue.total_requests

    @property
    def in_flight_pull_requests(self) -> int:
        """Requests riding on pull transmissions currently on air."""
        return self._in_flight_requests
