"""Replicated simulation runs and cross-replication aggregation.

Independent replications (different seeds) are the textbook way to put
confidence intervals on DES output.  :func:`run_replications` executes
``n`` independent runs of one configuration; :class:`ReplicatedResult`
aggregates the per-run summaries (means and 95 % CIs of every headline
metric).

Replications are pure functions of ``(config, seed)`` and therefore
embarrassingly parallel: both drivers accept ``n_jobs`` and fan the runs
out over a :class:`~repro.sim.parallel.ParallelExecutor`.  Per-run seeds
are derived up front with :func:`spawn_seeds`, so serial and parallel
execution produce bit-for-bit identical results.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence

import numpy as np

from ..core.config import HybridConfig
from .metrics import SimulationResult
from .parallel import ParallelExecutor
from .server import PullMode
from .system import Engine, HybridSystem

__all__ = [
    "run_single",
    "run_traced",
    "run_replications",
    "run_until_precision",
    "spawn_seeds",
    "ReplicatedResult",
]


def spawn_seeds(base_seed: int, n: int) -> list[int]:
    """Derive ``n`` independent replication seeds from ``base_seed``.

    Uses ``numpy.random.SeedSequence(base_seed).spawn(n)`` so the derived
    stream families are statistically independent by construction — the
    earlier ``base_seed + i`` convention risked overlapping families for
    adjacent base seeds.  The derivation is deterministic and
    prefix-stable: ``spawn_seeds(s, k)`` is a prefix of
    ``spawn_seeds(s, m)`` for ``k <= m``, which is what lets the
    sequential-stopping driver pre-derive the whole seed schedule.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    children = np.random.SeedSequence(int(base_seed)).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]


def run_single(
    config: HybridConfig,
    seed: int = 0,
    horizon: float = 5_000.0,
    warmup: float | None = None,
    pull_mode: PullMode = "serial",
    trace_path: str | Path | None = None,
    engine: Engine = "reference",
    slo=None,
) -> SimulationResult:
    """Run one replication of ``config``.

    ``warmup`` defaults to 10 % of the horizon.  When ``trace_path`` is
    given, the run records a full event trace
    (:class:`~repro.obs.TraceRecorder`) and writes it there as JSONL;
    results are bit-identical with tracing on or off.

    ``engine="fast"`` selects the flat-calendar fast core (statistically
    equivalent, not bit-identical; incompatible with ``trace_path``).

    ``slo`` (a :class:`~repro.control.SLOSpec`) attaches the closed-loop
    controller (:func:`~repro.control.build_controlled_system`) with
    default knob bounds and hysteresis, observing ``horizon / 40``-wide
    windows; ``slo=None`` is the exact uncontrolled code path.
    """
    if warmup is None:
        warmup = 0.1 * horizon
    tracer = None
    if trace_path is not None:
        if engine != "reference":
            raise ValueError("trace recording requires engine='reference'")
        from ..obs import TraceRecorder

        tracer = TraceRecorder()
    if slo is not None:
        unknown = set(slo.class_names) - set(config.class_names())
        if unknown:
            raise ValueError(
                f"SLO names classes {sorted(unknown)} not in the config's "
                f"{list(config.class_names())}"
            )
        from ..control import build_controlled_system

        system, _loop = build_controlled_system(
            config,
            slo,
            seed=seed,
            warmup=warmup,
            pull_mode=pull_mode,
            engine=engine,
            window=horizon / 40.0,
            tracer=tracer,
        )
    else:
        system = HybridSystem(
            config, seed=seed, warmup=warmup, pull_mode=pull_mode, tracer=tracer,
            engine=engine,
        )
    result = system.run(horizon)
    if tracer is not None:
        from ..obs import write_trace

        write_trace(tracer.trace(), trace_path)
    return result


def run_traced(
    config: HybridConfig,
    seed: int = 0,
    horizon: float = 5_000.0,
    warmup: float | None = None,
    pull_mode: PullMode = "serial",
    gamma_snapshots: bool = True,
    profiler=None,
):
    """Run one replication with in-memory tracing.

    Returns ``(result, trace)`` — the usual
    :class:`~repro.sim.metrics.SimulationResult` plus the recorded
    :class:`~repro.obs.Trace`.  An optional
    :class:`~repro.obs.PhaseProfiler` collects per-phase wall time.
    """
    from ..obs import TraceRecorder

    if warmup is None:
        warmup = 0.1 * horizon
    tracer = TraceRecorder(gamma_snapshots=gamma_snapshots)
    system = HybridSystem(
        config,
        seed=seed,
        warmup=warmup,
        pull_mode=pull_mode,
        tracer=tracer,
        profiler=profiler,
    )
    result = system.run(horizon)
    return result, tracer.trace()


def _replication_task(task: tuple) -> SimulationResult:
    """Module-level worker payload: one replication (picklable for pools).

    The optional eighth element is an SLO spec (older checkpoint drivers
    enqueue 7-tuples, so it stays optional).
    """
    config, seed, horizon, warmup, pull_mode, trace_path, engine, *rest = task
    return run_single(
        config,
        seed=seed,
        horizon=horizon,
        warmup=warmup,
        pull_mode=pull_mode,
        trace_path=trace_path,
        engine=engine,
        slo=rest[0] if rest else None,
    )


def _mean_ci(values: Sequence[float], level: float = 0.95) -> tuple[float, float]:
    """Mean and half-width of a Student-t CI, ignoring NaNs."""
    # Lazy import: only CI aggregation needs scipy, so pool workers (which
    # only simulate) and simulation-only users never pay its import cost.
    from scipy import stats as _sstats

    x = np.asarray([v for v in values if not math.isnan(v)], dtype=float)
    if x.size == 0:
        return (math.nan, math.nan)
    if x.size == 1:
        return (float(x[0]), math.nan)
    half = float(
        _sstats.t.ppf(0.5 + level / 2.0, x.size - 1) * x.std(ddof=1) / math.sqrt(x.size)
    )
    return (float(x.mean()), half)


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of several independent replications of one configuration."""

    runs: tuple[SimulationResult, ...]
    #: Set by :func:`run_until_precision`: ``True`` if the target relative
    #: half-width was reached, ``False`` if the run budget (``max_runs``)
    #: was exhausted first, ``None`` for fixed-size replication sets.
    precision_met: bool | None = None
    #: Per-run JSONL trace files (seed order) when the replication driver
    #: ran with ``trace_dir``; ``None`` otherwise.  The same directory
    #: also holds the merged stream (``trace-merged.jsonl``) and the run
    #: manifest (``manifest.json``).
    trace_paths: tuple[str, ...] | None = None
    #: Runs that exhausted their retry budget under a resilient sweep
    #: (tuple of :class:`~repro.resilience.QuarantinedRun`).  Quarantined
    #: runs are excluded from every aggregate above but always listed in
    #: :meth:`summary` — a sweep never silently drops a seed.
    quarantine: tuple = ()

    def __post_init__(self) -> None:
        if not self.runs:
            raise ValueError("need at least one run")

    @property
    def num_runs(self) -> int:
        """Number of replications aggregated."""
        return len(self.runs)

    @property
    def class_names(self) -> list[str]:
        """Service-class labels (from the first run)."""
        return list(self.runs[0].per_class_delay)

    # -- aggregated metrics -----------------------------------------------------
    def delay(self, class_name: str) -> tuple[float, float]:
        """(mean, CI half-width) of one class's mean delay across runs."""
        return _mean_ci([r.per_class_delay[class_name] for r in self.runs])

    def pull_delay(self, class_name: str) -> tuple[float, float]:
        """(mean, CI half-width) of one class's mean *pull* delay."""
        return _mean_ci([r.per_class_pull_delay[class_name] for r in self.runs])

    def cost(self, class_name: str) -> tuple[float, float]:
        """(mean, CI half-width) of one class's prioritized cost."""
        return _mean_ci([r.per_class_cost[class_name] for r in self.runs])

    def blocking(self, class_name: str) -> tuple[float, float]:
        """(mean, CI half-width) of one class's blocking fraction."""
        return _mean_ci([r.per_class_blocking[class_name] for r in self.runs])

    def overall_delay(self) -> tuple[float, float]:
        """(mean, CI half-width) of the overall mean delay."""
        return _mean_ci([r.overall_delay for r in self.runs])

    def total_cost(self) -> tuple[float, float]:
        """(mean, CI half-width) of the total prioritized cost."""
        return _mean_ci([r.total_prioritized_cost for r in self.runs])

    def per_class_delays(self) -> Mapping[str, float]:
        """Class → mean delay point estimates."""
        return {name: self.delay(name)[0] for name in self.class_names}

    def summary(self) -> str:
        """Human-readable digest across replications."""
        lines = [f"{self.num_runs} replications"]
        if self.precision_met is not None:
            lines[0] += (
                " (precision target met)"
                if self.precision_met
                else " (run budget exhausted before precision target)"
            )
        overall, half = self.overall_delay()
        total_c, total_ch = self.total_cost()
        lines.append(
            f"overall delay {overall:.2f} ± {half:.2f}; "
            f"total cost {total_c:.2f} ± {total_ch:.2f}"
        )
        for name in self.class_names:
            d, dh = self.delay(name)
            c, ch = self.cost(name)
            b, bh = self.blocking(name)
            lines.append(
                f"  class {name}: delay {d:8.2f} ± {dh:5.2f}  "
                f"cost {c:8.2f} ± {ch:5.2f}  blocking {b:6.2%} ± {bh:6.2%}"
            )
        delivered = sum(r.uplink_delivered for r in self.runs)
        dropped = sum(r.uplink_dropped for r in self.runs)
        abandoned = sum(r.uplink_abandoned for r in self.runs)
        if dropped or abandoned:
            lines.append(
                f"uplink: delivered={delivered} dropped={dropped} abandoned={abandoned}"
            )
        reneged = sum(r.reneged_requests for r in self.runs)
        shed = sum(r.shed_requests for r in self.runs)
        if reneged or shed:
            line = f"degradation: reneged={reneged} shed={shed}"
            rejected = sum(r.overload_rejections for r in self.runs)
            if rejected:
                line += f" (overload-rejected={rejected})"
            lines.append(line + " (totals across runs)")
        if self.quarantine:
            lines.append(
                f"quarantined: {len(self.quarantine)} run(s) excluded from the "
                "aggregates after repeated failure"
            )
            for entry in self.quarantine:
                lines.append(f"  {entry.describe()}")
        return "\n".join(lines)


def run_replications(
    config: HybridConfig,
    num_runs: int = 5,
    horizon: float = 5_000.0,
    warmup: float | None = None,
    base_seed: int = 0,
    pull_mode: PullMode = "serial",
    n_jobs: int = 1,
    trace_dir: str | Path | None = None,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    resilience=None,
    engine: Engine = "reference",
    slo=None,
) -> ReplicatedResult:
    """Run ``num_runs`` independent replications of ``config``.

    Per-run seeds come from :func:`spawn_seeds`, so every replication has
    a provably independent random-stream family.  (Compatibility note:
    before PR 2 seeds were ``base_seed, base_seed+1, ...``; the spawn
    derivation yields different — statistically safer — streams, so
    replicated numbers differ from that era while any fixed ``base_seed``
    remains exactly reproducible.)

    ``n_jobs`` fans the runs out over a process pool (``-1`` = all
    cores); results are identical for every ``n_jobs``.

    ``trace_dir`` arms full event tracing: each replication (worker
    processes included) writes its own JSONL trace into the directory,
    and the driver merges them into one ordered, seed-attributed stream
    (``trace-merged.jsonl``) plus a run manifest (``manifest.json``).
    Results stay bit-identical with tracing on or off and for every
    ``n_jobs``.

    ``checkpoint_dir`` arms crash-safe sweeps: every completed
    replication is persisted atomically
    (:class:`~repro.resilience.CheckpointStore`), and ``resume=True``
    skips the runs already on disk — the resumed aggregate is
    bit-identical to an uninterrupted sweep because runs are pure
    functions of ``(config, seed)``.  A checkpoint of a *different*
    sweep (config hash, base seed, horizon, warm-up or pull mode
    mismatch) refuses to resume with
    :class:`~repro.resilience.CheckpointMismatch`.

    ``resilience`` (a :class:`~repro.resilience.ResilienceConfig`) arms
    fault-tolerant execution: per-run timeouts, crash retries, and a
    quarantine list on the returned aggregate.  With both
    ``checkpoint_dir`` and ``resilience`` unset the driver takes the
    exact legacy code path, so default calls stay bit-identical to
    earlier releases.

    ``slo`` attaches the closed-loop controller to every replication
    (see :func:`run_single`); the spec is recorded in the checkpoint
    manifest, but resume-mismatch detection keys on the config hash and
    sweep geometry only — do not resume a controlled checkpoint with a
    different spec.
    """
    if num_runs < 1:
        raise ValueError(f"num_runs must be >= 1, got {num_runs}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")
    if trace_dir is not None and engine != "reference":
        raise ValueError("trace_dir requires engine='reference'")
    if checkpoint_dir is not None or resilience is not None:
        if trace_dir is not None:
            raise ValueError(
                "trace_dir cannot be combined with checkpointed/resilient sweeps; "
                "record traces in a plain run_replications call"
            )
        return _run_replications_resilient(
            config,
            num_runs=num_runs,
            horizon=horizon,
            warmup=warmup,
            base_seed=base_seed,
            pull_mode=pull_mode,
            n_jobs=n_jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            resilience=resilience,
            engine=engine,
            slo=slo,
        )
    seeds = spawn_seeds(base_seed, num_runs)
    trace_paths: Optional[list[Path]] = None
    if trace_dir is not None:
        trace_dir = Path(trace_dir)
        trace_dir.mkdir(parents=True, exist_ok=True)
        trace_paths = [
            trace_dir / f"trace-run{index:03d}-seed{seed}.jsonl"
            for index, seed in enumerate(seeds)
        ]
    tasks = [
        (
            config,
            seed,
            horizon,
            warmup,
            pull_mode,
            None if trace_paths is None else trace_paths[index],
            engine,
            slo,
        )
        for index, seed in enumerate(seeds)
    ]
    with ParallelExecutor(n_jobs) as executor:
        runs = tuple(executor.map(_replication_task, tasks))
    if trace_paths is None:
        return ReplicatedResult(runs=runs)
    from ..obs import build_manifest, merge_trace_files, write_manifest, write_merged

    write_merged(merge_trace_files(trace_paths), trace_dir / "trace-merged.jsonl")
    write_manifest(
        build_manifest(
            config=config,
            base_seed=base_seed,
            seeds=seeds,
            horizon=horizon,
            warmup=warmup,
            pull_mode=pull_mode,
            extra={"num_runs": num_runs, "n_jobs": n_jobs},
        ),
        trace_dir / "manifest.json",
    )
    return ReplicatedResult(
        runs=runs, trace_paths=tuple(str(path) for path in trace_paths)
    )


def _open_checkpoint(
    checkpoint_dir, config, base_seed, seeds, horizon, warmup, pull_mode, resume, extra
):
    """Create/verify a sweep checkpoint store; ``None`` when not armed."""
    if checkpoint_dir is None:
        return None
    # Lazy import: repro.resilience imports sim.metrics, so a top-level
    # import here would be circular.
    from ..resilience import CheckpointStore

    store = CheckpointStore(checkpoint_dir)
    store.open(
        config,
        base_seed=base_seed,
        seeds=seeds,
        horizon=horizon,
        warmup=warmup,
        pull_mode=pull_mode,
        resume=resume,
        extra=extra,
    )
    return store


def _run_replications_resilient(
    config: HybridConfig,
    num_runs: int,
    horizon: float,
    warmup: float | None,
    base_seed: int,
    pull_mode: PullMode,
    n_jobs: int,
    checkpoint_dir,
    resume: bool,
    resilience,
    engine: Engine = "reference",
    slo=None,
) -> ReplicatedResult:
    """Checkpointed / fault-tolerant body of :func:`run_replications`."""
    from ..resilience import ResilienceConfig, ResilientExecutor

    seeds = spawn_seeds(base_seed, num_runs)
    store = _open_checkpoint(
        checkpoint_dir,
        config,
        base_seed,
        seeds,
        horizon,
        warmup,
        pull_mode,
        resume,
        extra={
            "num_runs": num_runs,
            "n_jobs": n_jobs,
            "engine": engine,
            "slo": None if slo is None else slo.to_dict(),
        },
    )
    by_seed: dict[int, SimulationResult] = {}
    if store is not None and resume:
        for seed in sorted(store.completed_seeds() & set(seeds)):
            loaded = store.load(seed)
            if loaded is not None:
                by_seed[seed] = loaded
    todo = [seed for seed in seeds if seed not in by_seed]
    quarantine: tuple = ()
    if todo:
        executor = ResilientExecutor(
            n_jobs=n_jobs,
            resilience=resilience if resilience is not None else ResilienceConfig(),
        )
        on_result = None if store is None else store.save
        outcome = executor.run(
            _replication_task,
            [
                (config, seed, horizon, warmup, pull_mode, None, engine, slo)
                for seed in todo
            ],
            keys=todo,
            on_result=on_result,
        )
        for seed, value in zip(todo, outcome.results):
            if value is not None:
                by_seed[seed] = value
        quarantine = outcome.quarantined
    runs = tuple(by_seed[seed] for seed in seeds if seed in by_seed)
    if not runs:
        raise RuntimeError(
            f"every replication was quarantined ({len(quarantine)} of "
            f"{num_runs}); first failure: {quarantine[0].describe()}"
        )
    return ReplicatedResult(runs=runs, quarantine=quarantine)


def run_until_precision(
    config: HybridConfig,
    rel_halfwidth: float = 0.05,
    metric: str = "overall_delay",
    min_runs: int = 3,
    max_runs: int = 30,
    horizon: float = 5_000.0,
    warmup: float | None = None,
    base_seed: int = 0,
    pull_mode: PullMode = "serial",
    n_jobs: int = 1,
    checkpoint_dir: str | Path | None = None,
    resume: bool = False,
    resilience=None,
    engine: Engine = "reference",
) -> ReplicatedResult:
    """Add replications until the CI half-width is small enough.

    The classic sequential stopping rule: after ``min_runs`` pilot
    replications, keep adding one until the 95 % confidence half-width of
    ``metric`` is below ``rel_halfwidth`` of its mean (or ``max_runs`` is
    reached).  The returned aggregate's ``precision_met`` flag records
    which happened: ``True`` when the target was reached, ``False`` when
    the run budget ran out first.

    With ``n_jobs > 1`` the pilots and every subsequent batch of
    ``n_jobs`` replications run in parallel, but the stopping rule is
    still evaluated one run at a time in seed order (surplus batch
    results are discarded), so the returned aggregate is bit-for-bit
    identical for every ``n_jobs``.

    Parameters
    ----------
    metric:
        ``"overall_delay"``, ``"total_cost"``, or a per-class selector
        ``"delay:<class>"``, ``"cost:<class>"`` or ``"blocking:<class>"``
        (e.g. ``"delay:A"``, ``"blocking:C"``).
    checkpoint_dir, resume, resilience:
        Crash-safe / fault-tolerant sweep controls, exactly as in
        :func:`run_replications`.  Because the stopping rule consumes
        runs strictly in seed order, a resumed sequential sweep stops at
        the same run and returns a bit-identical aggregate.  Seeds whose
        runs are quarantined are skipped by the stopping rule and listed
        on the result.  Both unset → the exact legacy code path.
    """
    if not 0 < rel_halfwidth < 1:
        raise ValueError(f"rel_halfwidth must be in (0,1), got {rel_halfwidth}")
    if not 1 <= min_runs <= max_runs:
        raise ValueError(f"need 1 <= min_runs <= max_runs, got {min_runs}, {max_runs}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True requires checkpoint_dir")

    _per_class = {"delay": ReplicatedResult.delay, "cost": ReplicatedResult.cost,
                  "blocking": ReplicatedResult.blocking}

    def precision(agg: ReplicatedResult) -> tuple[float, float]:
        if metric == "overall_delay":
            return agg.overall_delay()
        if metric == "total_cost":
            return agg.total_cost()
        kind, _, class_name = metric.partition(":")
        if class_name and kind in _per_class:
            if class_name not in agg.class_names:
                raise ValueError(
                    f"unknown class {class_name!r} in metric {metric!r}; "
                    f"classes are {agg.class_names}"
                )
            return _per_class[kind](agg, class_name)
        raise ValueError(f"unknown metric {metric!r}")

    if checkpoint_dir is not None or resilience is not None:
        return _run_until_precision_resilient(
            config,
            precision=precision,
            rel_halfwidth=rel_halfwidth,
            metric=metric,
            min_runs=min_runs,
            max_runs=max_runs,
            horizon=horizon,
            warmup=warmup,
            base_seed=base_seed,
            pull_mode=pull_mode,
            n_jobs=n_jobs,
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            resilience=resilience,
            engine=engine,
        )

    tasks = [
        (config, seed, horizon, warmup, pull_mode, None, engine)
        for seed in spawn_seeds(base_seed, max_runs)
    ]
    with ParallelExecutor(n_jobs) as executor:
        runs: list[SimulationResult] = list(
            executor.map(_replication_task, tasks[:min_runs])
        )
        # Batch results computed ahead of the stopping rule but not yet
        # consumed by it (kept so the rule still sees runs one at a time).
        buffered: deque[SimulationResult] = deque()
        next_task = min_runs
        while True:
            aggregate = ReplicatedResult(runs=tuple(runs))
            mean, half = precision(aggregate)
            if (
                not math.isnan(half)
                and mean != 0
                and half / abs(mean) <= rel_halfwidth
            ):
                return ReplicatedResult(runs=tuple(runs), precision_met=True)
            if len(runs) >= max_runs:
                return ReplicatedResult(runs=tuple(runs), precision_met=False)
            if not buffered:
                batch = tasks[next_task : next_task + executor.n_jobs]
                buffered.extend(executor.map(_replication_task, batch))
                next_task += len(batch)
            runs.append(buffered.popleft())


def _run_until_precision_resilient(
    config: HybridConfig,
    precision,
    rel_halfwidth: float,
    metric: str,
    min_runs: int,
    max_runs: int,
    horizon: float,
    warmup: float | None,
    base_seed: int,
    pull_mode: PullMode,
    n_jobs: int,
    checkpoint_dir,
    resume: bool,
    resilience,
    engine: Engine = "reference",
) -> ReplicatedResult:
    """Checkpointed / fault-tolerant body of :func:`run_until_precision`.

    The stopping rule still consumes runs one at a time in seed order,
    so for a given config the stop point — and therefore the returned
    aggregate — is identical whether the sweep ran uninterrupted or was
    resumed from any checkpoint prefix.
    """
    from ..resilience import ResilienceConfig, ResilientExecutor

    seeds = spawn_seeds(base_seed, max_runs)
    store = _open_checkpoint(
        checkpoint_dir,
        config,
        base_seed,
        seeds,
        horizon,
        warmup,
        pull_mode,
        resume,
        extra={"max_runs": max_runs, "metric": metric, "n_jobs": n_jobs,
               "engine": engine},
    )
    executor = ResilientExecutor(
        n_jobs=n_jobs,
        resilience=resilience if resilience is not None else ResilienceConfig(),
    )
    available: dict[int, SimulationResult] = {}
    if store is not None and resume:
        for seed in sorted(store.completed_seeds() & set(seeds)):
            loaded = store.load(seed)
            if loaded is not None:
                available[seed] = loaded
    quarantine: list = []
    quarantined_seeds: set[int] = set()
    on_result = None if store is None else store.save
    consumed = 0

    def next_result() -> SimulationResult | None:
        """Next run in seed order, simulating a batch on demand.

        Returns ``None`` when the seed schedule is exhausted; seeds that
        end up quarantined are skipped.
        """
        nonlocal consumed
        while consumed < len(seeds):
            seed = seeds[consumed]
            if seed in available:
                consumed += 1
                return available.pop(seed)
            if seed in quarantined_seeds:
                consumed += 1
                continue
            batch = [
                s
                for s in seeds[consumed:]
                if s not in available and s not in quarantined_seeds
            ][: executor.n_jobs]
            outcome = executor.run(
                _replication_task,
                [(config, s, horizon, warmup, pull_mode, None, engine) for s in batch],
                keys=batch,
                on_result=on_result,
            )
            for s, value in zip(batch, outcome.results):
                if value is not None:
                    available[s] = value
            for entry in outcome.quarantined:
                quarantine.append(entry)
                quarantined_seeds.add(entry.seed)
        return None

    runs: list[SimulationResult] = []
    exhausted = False
    while len(runs) < min_runs:
        result = next_result()
        if result is None:
            exhausted = True
            break
        runs.append(result)
    if not runs:
        raise RuntimeError(
            f"every replication was quarantined ({len(quarantine)} of "
            f"{max_runs}); first failure: {quarantine[0].describe()}"
        )
    while True:
        aggregate = ReplicatedResult(runs=tuple(runs))
        mean, half = precision(aggregate)
        if (
            len(runs) >= min_runs
            and not math.isnan(half)
            and mean != 0
            and half / abs(mean) <= rel_halfwidth
        ):
            return ReplicatedResult(
                runs=tuple(runs), precision_met=True, quarantine=tuple(quarantine)
            )
        if exhausted or len(runs) >= max_runs:
            return ReplicatedResult(
                runs=tuple(runs), precision_met=False, quarantine=tuple(quarantine)
            )
        result = next_result()
        if result is None:
            exhausted = True
            continue
        runs.append(result)
