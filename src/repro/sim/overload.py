"""Server-side overload controller: class-aware admission to the pull queue.

Runtime half of :class:`~repro.core.overload.OverloadConfig`.  The
controller sits in front of the bounded pull queue and decides, per
incoming request that would open a *new* queue entry, whether the
request's service class is still admitted at the current occupancy.
Folding into an existing entry is always allowed — it costs no queue
slot and satisfies an extra client for free.

Admission limits come from
:func:`~repro.core.overload.admission_limits`: rank 0 (Class A) may fill
the whole queue, the lowest rank is refused once occupancy reaches
``threshold * capacity``, intermediate ranks interpolate.  Because the
limits are monotonically non-increasing in rank, a refused class implies
every less important class is refused too — the A > B > C ordering of
the paper survives saturation by construction.

The controller is deterministic and draws no randomness, so arming it
never perturbs the simulator's random streams; with the inert default
config it is never constructed at all and results are bit-identical to
the pre-overload code path.
"""

from __future__ import annotations

from ..core.overload import OverloadConfig, admission_limits

__all__ = ["OverloadController"]


class OverloadController:
    """Decides pull-queue admission per service class under load.

    Parameters
    ----------
    config:
        The armed overload configuration (``config.active`` must hold).
    capacity:
        The pull queue's entry capacity (``faults.queue_capacity``).
    num_classes:
        Number of service classes (rank order).
    """

    def __init__(self, config: OverloadConfig, capacity: int, num_classes: int) -> None:
        if not config.active:
            raise ValueError("OverloadController needs an armed OverloadConfig")
        self.config = config
        self.capacity = int(capacity)
        #: Per-rank occupancy limits; a new entry of rank ``r`` is
        #: admitted iff the queue currently holds fewer than
        #: ``limits[r]`` entries.
        self.limits: tuple[int, ...] = admission_limits(
            config.threshold, capacity, num_classes
        )
        #: Total admission refusals decided by this controller.
        self.rejections = 0
        #: Refusals per class rank.
        self.rejections_by_rank = [0] * num_classes

    def admits(self, class_rank: int, occupancy: int) -> bool:
        """Whether a new entry of ``class_rank`` is admitted right now.

        Counts the refusal when the answer is ``False``.
        """
        if occupancy < self.limits[class_rank]:
            return True
        self.rejections += 1
        self.rejections_by_rank[class_rank] += 1
        return False

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return (
            f"<OverloadController limits={self.limits} "
            f"rejections={self.rejections}>"
        )
