"""Finite-capacity uplink (back-channel) for client requests.

The asymmetric environments the paper targets give clients only "a
limited back-channel capacity to make requests" (Acharya et al. [2],
quoted in §2).  This substrate models that channel as a single-server
finite-buffer queue:

* transmitting one request takes ``1/rate`` time units;
* at most ``buffer`` requests may wait; a request arriving to a full
  buffer is *lost at the uplink* (it never reaches the server — the
  client must rely on the push cycle or retry later);
* delivered requests reach the server after their queueing + transmit
  delay, so heavy uplink contention also *ages* the demand the pull
  scheduler sees.

An infinite ``rate`` short-circuits the channel (the paper's §5 setup,
which models the uplink as ideal).
"""

from __future__ import annotations

import math
from typing import Callable

from ..des import Environment, Store
from ..des.monitor import Counter
from ..workload.arrivals import Request

__all__ = ["UplinkChannel"]


class UplinkChannel:
    """Single-server finite-buffer request channel.

    Parameters
    ----------
    env:
        Simulation environment.
    deliver:
        Callback invoked with each request that survives the uplink
        (normally ``server.submit``).
    rate:
        Requests transmitted per time unit (``inf`` = ideal channel).
    buffer:
        Waiting-room size (excluding the request in transmission).
    injector:
        Optional :class:`~repro.sim.faults.FaultInjector`; when armed,
        each offer may additionally be corrupted in transit (random-access
        collisions), rejected exactly like a buffer overflow so clients
        can retry.
    """

    def __init__(
        self,
        env: Environment,
        deliver: Callable[[Request], None],
        rate: float = math.inf,
        buffer: int = 64,
        injector=None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"uplink rate must be > 0, got {rate}")
        if buffer < 0:
            raise ValueError(f"uplink buffer must be >= 0, got {buffer}")
        self.env = env
        self.deliver = deliver
        self.rate = float(rate)
        self.buffer = int(buffer)
        self.injector = injector
        self.delivered = Counter()
        self.dropped = Counter()
        self.corrupted = Counter()
        self.accepted = Counter()
        self._queue: Store | None = None
        if not math.isinf(self.rate):
            # +1 slot models the request currently being transmitted.
            self._queue = Store(env, capacity=self.buffer + 1)
            env.process(self._transmit_loop())

    @property
    def ideal(self) -> bool:
        """Whether the channel forwards requests instantaneously."""
        return self._queue is None

    def offer(self, request: Request) -> bool:
        """Submit a request to the uplink.

        Returns ``True`` if accepted (delivery may still be delayed),
        ``False`` if corrupted in transit or dropped at a full buffer.
        """
        if self.injector is not None and self.injector.uplink_lost():
            self.corrupted.increment()
            return False
        if self._queue is None:
            self.accepted.increment()
            self.delivered.increment()
            self.deliver(request)
            return True
        if len(self._queue.items) >= self._queue.capacity:
            self.dropped.increment()
            return False
        self.accepted.increment()
        self._queue.put(request)
        return True

    def _transmit_loop(self):
        """Serve queued requests one at a time at the channel rate."""
        assert self._queue is not None
        while True:
            request = yield self._queue.get()
            yield self.env.timeout(1.0 / self.rate)
            self.delivered.increment()
            self.deliver(request)

    @property
    def offered(self) -> int:
        """Total offers made to the channel (accepted, dropped or corrupted)."""
        return self.accepted.count + self.dropped.count + self.corrupted.count

    @property
    def in_transit(self) -> int:
        """Accepted requests not yet handed to ``deliver`` (queued or on air)."""
        return self.accepted.count - self.delivered.count

    def drop_fraction(self) -> float:
        """Fraction of offered requests lost at the uplink (buffer or channel)."""
        offered = self.offered
        lost = self.dropped.count + self.corrupted.count
        return lost / offered if offered else float("nan")
