"""Process-parallel execution of independent simulation replications.

Replications are embarrassingly parallel — each is a pure function of
``(config, seed)`` — so :class:`ParallelExecutor` fans them out over a
stdlib :class:`~concurrent.futures.ProcessPoolExecutor`.  ``n_jobs=1``
(the default everywhere) never creates a pool and runs the exact
in-process code path, so single-job results are trivially identical to
the pre-parallel implementation; for ``n_jobs > 1`` the submitted order
is preserved, which together with up-front seed derivation
(:func:`repro.sim.runner.spawn_seeds`) makes parallel and serial
execution produce bit-for-bit identical per-seed results.

Work items and results cross process boundaries, so the mapped function
must be a module-level callable and its payloads picklable (plain-data
configs and :class:`~repro.sim.metrics.SimulationResult` records are).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Optional, TypeVar

__all__ = ["ParallelExecutor", "resolve_jobs"]

_T = TypeVar("_T")
_R = TypeVar("_R")


def resolve_jobs(n_jobs: int) -> int:
    """Normalise an ``n_jobs`` request to a concrete worker count.

    ``-1`` means one worker per available core; any other value must be a
    positive integer.
    """
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ValueError(f"n_jobs must be >= 1 (or -1 for all cores), got {n_jobs}")
    return n_jobs


class ParallelExecutor:
    """Order-preserving map over a (lazily created) process pool.

    Parameters
    ----------
    n_jobs:
        Worker processes; ``1`` runs everything in-process (no pool is
        ever created), ``-1`` uses every available core.

    The pool is created on the first parallel :meth:`map` and reused
    across calls — batched callers like
    :func:`~repro.sim.runner.run_until_precision` pay the worker start-up
    cost once.  Use as a context manager (or call :meth:`close`) to shut
    the pool down deterministically.
    """

    def __init__(self, n_jobs: int = 1) -> None:
        self.n_jobs = resolve_jobs(n_jobs)
        self._pool: Optional[ProcessPoolExecutor] = None

    def map(self, fn: Callable[[_T], _R], tasks: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every task, returning results in task order.

        If the map is aborted — ``KeyboardInterrupt``, a worker raising,
        the pool breaking — the pool is shut down in the ``finally``
        block with ``cancel_futures=True`` so queued work is dropped and
        worker processes are reaped instead of leaking past the
        interrupt (they would otherwise keep simulating orphaned tasks).
        """
        tasks = list(tasks)
        if self.n_jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.n_jobs)
        completed = False
        try:
            results = list(self._pool.map(fn, tasks))
            completed = True
            return results
        finally:
            if not completed and self._pool is not None:
                pool, self._pool = self._pool, None
                pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the worker pool (no-op if none was created)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        state = "live" if self._pool is not None else "idle"
        return f"<ParallelExecutor n_jobs={self.n_jobs} ({state})>"
