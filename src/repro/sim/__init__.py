"""``repro.sim`` — the hybrid broadcast server simulator.

Discrete-event model of the paper's system: a server alternating flat
push broadcasts with importance-factor pull services, per-class bandwidth
admission, Poisson clients and a metrics pipeline, plus replication
helpers for confidence intervals.
"""

from .adaptive import AdaptiveCutoffController, CutoffDecision, build_adaptive_system
from .bandwidth_pool import BandwidthPool
from .client import FaultAwareFront, drive_arrivals, drive_trace
from .faults import (
    ConservationWatchdog,
    FaultConfig,
    FaultInjector,
    InvariantViolation,
)
from .metrics import MetricsCollector, SimulationResult
from .parallel import ParallelExecutor, resolve_jobs
from .preemptive import PreemptiveHybridServer
from .qos import DelayRecorder, QoSReport, jain_fairness
from .runner import (
    ReplicatedResult,
    run_replications,
    run_single,
    run_traced,
    run_until_precision,
    spawn_seeds,
)
from .fastpath import FastArrivalDriver, FastHybridServer
from .server import HybridServer, PullMode
from .system import Engine, HybridSystem
from .uplink import UplinkChannel

__all__ = [
    "AdaptiveCutoffController",
    "CutoffDecision",
    "build_adaptive_system",
    "BandwidthPool",
    "drive_arrivals",
    "drive_trace",
    "FaultAwareFront",
    "FaultConfig",
    "FaultInjector",
    "ConservationWatchdog",
    "InvariantViolation",
    "MetricsCollector",
    "SimulationResult",
    "PreemptiveHybridServer",
    "DelayRecorder",
    "QoSReport",
    "jain_fairness",
    "HybridServer",
    "PullMode",
    "HybridSystem",
    "Engine",
    "FastHybridServer",
    "FastArrivalDriver",
    "UplinkChannel",
    "ParallelExecutor",
    "resolve_jobs",
    "ReplicatedResult",
    "run_replications",
    "run_single",
    "run_traced",
    "run_until_precision",
    "spawn_seeds",
]
