"""Wiring of the full hybrid broadcast system and single-run entry point.

:class:`HybridSystem` assembles catalog, population, schedulers, bandwidth
pools, metrics and the server process from a :class:`HybridConfig`, and
:meth:`HybridSystem.run` executes one replication.  Runs are pure
functions of ``(config, seed)``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from typing import Literal

from ..core.config import HybridConfig
from ..des import Environment, RandomStreams
from ..des.fastengine import FastEnvironment
from ..schedulers.registry import make_pull_scheduler, make_push_scheduler
from ..workload.arrivals import ArrivalProcess
from ..workload.batched import BatchedArrivals
from ..workload.population import PopulationArrivals
from ..workload.trace import RequestTrace
from .bandwidth_pool import BandwidthPool
from .client import FaultAwareFront, drive_arrivals, drive_trace
from .fastpath import FastArrivalDriver, FastHybridServer
from .faults import ConservationWatchdog, FaultInjector
from .metrics import MetricsCollector, SimulationResult
from .server import HybridServer, PullMode
from .uplink import UplinkChannel

__all__ = ["HybridSystem", "Engine"]

Engine = Literal["reference", "fast", "population"]


class _UplinkFront:
    """Adapter giving the request drivers a ``submit`` that goes via uplink."""

    def __init__(self, uplink: UplinkChannel) -> None:
        self._uplink = uplink

    def submit(self, request) -> None:
        self._uplink.offer(request)


class HybridSystem:
    """One fully wired instance of the hybrid scheduling system.

    Parameters
    ----------
    config:
        The system description.
    seed:
        Root seed of all stochastic behaviour in this replication.
    warmup:
        Simulated time before which arriving requests are excluded from
        statistics (transient removal).
    pull_mode:
        Serial (analysis-faithful) or concurrent pull service; see
        :class:`~repro.sim.server.HybridServer`.
    trace:
        Optional pre-generated request trace to replay instead of live
        Poisson arrivals (for common-random-number comparisons).
    record_qos:
        Retain raw per-request delays for :meth:`qos_report`
        (percentiles, jitter, fairness).
    arrivals:
        Optional custom arrival source (any iterable of
        :class:`~repro.workload.arrivals.Request`, e.g. a
        :class:`~repro.workload.nonstationary.PhasedArrivalProcess`);
        mutually exclusive with ``trace``.
    server_cls, server_kwargs:
        Server implementation hook — e.g.
        :class:`~repro.sim.preemptive.PreemptiveHybridServer` with
        ``{"preemption_threshold": 0.1}``.
    tracer:
        Optional :class:`~repro.obs.TraceRecorder` capturing every
        scheduling decision as typed events.  Tracing consumes no
        randomness, so results are bit-identical with or without it.
        Only supported for the standard :class:`HybridServer` (custom
        server classes override the instrumented methods).
    profiler:
        Optional :class:`~repro.obs.PhaseProfiler` collecting per-phase
        wall-time counters (scheduler selections, metrics
        finalisation).
    engine:
        ``"reference"`` (default) runs the generator-process DES core;
        ``"fast"`` runs the flat-calendar
        :class:`~repro.des.fastengine.FastEnvironment` with
        :class:`~repro.sim.fastpath.FastHybridServer` and vectorised
        arrival pre-generation.  Fast runs are statistically equivalent
        but not bit-identical to reference runs (random streams are
        consumed in blocks) and do not support ``tracer``/``profiler``/
        custom ``server_cls``; see ``docs/performance.md``.
        ``"population"`` runs the counter-folded
        :class:`~repro.scale.server.PopulationHybridServer` over exact
        aggregated per-(item, class) arrival streams — per-event cost
        independent of ``num_clients``, for million-client scenarios.
        Statistically exact but not bit-identical to the per-client
        engines; client-recovery faults, tracing, QoS recording and
        custom servers are unsupported.  See ``docs/scale.md``.
    """

    def __init__(
        self,
        config: HybridConfig,
        seed: int = 0,
        warmup: float = 0.0,
        pull_mode: PullMode = "serial",
        trace: Optional[RequestTrace] = None,
        record_qos: bool = False,
        arrivals: Optional[object] = None,
        server_cls: type[HybridServer] = HybridServer,
        server_kwargs: Optional[dict] = None,
        tracer=None,
        profiler=None,
        engine: Engine = "reference",
    ) -> None:
        if engine not in ("reference", "fast", "population"):
            raise ValueError(
                f"unknown engine {engine!r}; use 'reference', 'fast' or 'population'"
            )
        if tracer is not None and server_cls is not HybridServer:
            raise ValueError(
                "tracing instruments HybridServer's decision points; custom "
                f"server classes ({server_cls.__name__}) override them and "
                "would record an incomplete trace"
            )
        if engine != "reference":
            # The fast and population engines swap in their own server
            # state machines; hooks that instrument or replace
            # HybridServer need the reference engine (both engine servers
            # also reject tracer/profiler themselves).
            if server_cls is not HybridServer or server_kwargs:
                raise ValueError(
                    f"engine={engine!r} uses its own server implementation; "
                    "custom server classes/kwargs require engine='reference'"
                )
        if engine == "population" and trace is not None:
            raise ValueError(
                "the population engine folds arrivals and cannot replay "
                "per-request traces; use engine='reference' or 'fast'"
            )
        self.config = config
        self.seed = int(seed)
        self.warmup = float(warmup)
        self.tracer = tracer
        self.profiler = profiler
        self.engine: Engine = engine

        self.env = Environment() if engine == "reference" else FastEnvironment()
        self.streams = RandomStreams(seed=seed)
        self.catalog = config.build_catalog()
        self.population = config.build_population()
        self.metrics = MetricsCollector(
            class_names=config.class_names(),
            class_priorities=list(config.class_priorities()),
            warmup=warmup,
            record_qos=record_qos,
        )
        self.pool = BandwidthPool(config.class_bandwidth())
        self.push_scheduler = make_push_scheduler(
            config.push_scheduler, self.catalog, config.cutoff
        )
        self.pull_scheduler = make_pull_scheduler(config.pull_scheduler, alpha=config.alpha)
        self.injector = (
            FaultInjector(config.faults, self.streams) if config.faults.channel_faults else None
        )
        if engine == "population":
            # Imported lazily: repro.scale imports repro.sim submodules,
            # so a top-level import here would cycle through the package
            # __init__ while it is still executing.
            from ..scale.server import PopulationHybridServer

            impl = PopulationHybridServer
        elif engine == "fast":
            impl = FastHybridServer
        else:
            impl = server_cls
        self.server = impl(
            env=self.env,
            catalog=self.catalog,
            config=config,
            push_scheduler=self.push_scheduler,
            pull_scheduler=self.pull_scheduler,
            pool=self.pool,
            metrics=self.metrics,
            streams=self.streams,
            pull_mode=pull_mode,
            faults=self.injector,
            tracer=tracer,
            profiler=profiler,
            **(server_kwargs or {}),
        )
        from ..obs.manifest import config_hash

        #: Content hash of ``config`` — stamped on traces, checkpoints
        #: and watchdog violations so any artifact names its exact run.
        self.config_hash = config_hash(config)
        if tracer is not None:
            tracer.meta.update(
                seed=self.seed,
                warmup=self.warmup,
                pull_mode=pull_mode,
                cutoff=config.cutoff,
                num_items=config.num_items,
                class_names=config.class_names(),
                pull_scheduler=config.pull_scheduler,
                push_scheduler=config.push_scheduler,
                config_hash=self.config_hash,
            )
        self.uplink = UplinkChannel(
            env=self.env,
            deliver=self.server.submit,
            rate=config.uplink_rate,
            buffer=config.uplink_buffer,
            injector=self.injector,
        )
        self.front: Optional[FaultAwareFront] = None
        if config.faults.client_recovery:
            self.front = FaultAwareFront(
                env=self.env,
                server=self.server,
                uplink=self.uplink,
                faults=config.faults,
                metrics=self.metrics,
                streams=self.streams,
            )
            self.uplink.deliver = self.front.on_delivered
            self.front.tracer = tracer
            front = self.front
        else:
            front = self.server if self.uplink.ideal else _UplinkFront(self.uplink)
        self.watchdog = ConservationWatchdog(
            env=self.env,
            server=self.server,
            metrics=self.metrics,
            uplink=self.uplink,
            front=self.front,
            seed=self.seed,
            config_hash=self.config_hash,
            interval=config.faults.watchdog_interval if config.faults.active else None,
        )
        if trace is not None and arrivals is not None:
            raise ValueError("pass either a trace or an arrivals source, not both")
        if trace is not None:
            self.driver = drive_trace(self.env, front, trace)
        elif engine == "fast" and arrivals is None:
            # Vectorised chunked pre-generation; this is where the fast
            # engine's arrival-path speedup lives.
            batched = BatchedArrivals(
                catalog=self.catalog,
                population=self.population,
                rate=config.arrival_rate,
                rng=self.streams.stream("arrivals"),
                priority_weighted=config.priority_weighted_demand,
            )
            if front is self.server:
                # Ideal uplink, no client front: the server drains the
                # chunks itself at its queue-touch points — zero calendar
                # records per arrival (see FastHybridServer.attach_arrivals).
                self.server.attach_arrivals(batched)
                self.driver = None
            else:
                # Arrivals pass through the uplink/fault front: one flat
                # calendar record per arrival keeps delivery timing exact.
                self.driver = FastArrivalDriver(self.env, front, batched)
        elif engine == "population" and arrivals is None:
            # Exact aggregated per-(item, class) streams; the client
            # population is never materialised (superposition of Poisson
            # is Poisson — see repro.workload.population).
            aggregated = PopulationArrivals(
                catalog=self.catalog,
                population=self.population,
                rate=config.arrival_rate,
                rng=self.streams.stream("arrivals"),
                priority_weighted=config.priority_weighted_demand,
            )
            if front is self.server:
                # Ideal uplink: the server drains struct-of-arrays blocks
                # at its queue-touch points — no Request objects at all.
                self.server.attach_arrivals(aggregated)
                self.driver = None
            else:
                # A non-ideal uplink needs per-request delivery records;
                # PopulationArrivals also speaks Request chunks.
                self.driver = FastArrivalDriver(self.env, front, aggregated)
        else:
            # Custom arrival sources stay on the generator driver — they
            # run unchanged on either engine, just without vectorisation.
            if arrivals is None:
                arrivals = ArrivalProcess(
                    catalog=self.catalog,
                    population=self.population,
                    rate=config.arrival_rate,
                    rng=self.streams.stream("arrivals"),
                    priority_weighted=config.priority_weighted_demand,
                )
            self.driver = drive_arrivals(self.env, front, arrivals)

    def run(self, horizon: float) -> SimulationResult:
        """Advance the simulation to ``horizon`` and summarise.

        Can be called once per system instance (state is not reset).
        A final conservation audit always runs at the horizon (the
        watchdog also checks periodically while faults are active); an
        imbalance raises
        :class:`~repro.sim.faults.InvariantViolation`.
        """
        if horizon <= self.warmup:
            raise ValueError(f"horizon {horizon} must exceed warmup {self.warmup}")
        if self.tracer is not None:
            self.tracer.meta["horizon"] = float(horizon)
        if self.profiler is not None:
            with self.profiler.phase("sim.run"):
                self.env.run(until=horizon)
            self.watchdog.check()
            with self.profiler.phase("metrics.result"):
                result = self.metrics.result(horizon=horizon, seed=self.seed)
        else:
            self.env.run(until=horizon)
            if self.engine != "reference":
                # Admit buffered arrivals between the last service event
                # and the horizon so end-of-run accounting matches the
                # reference engine (which processes every arrival event).
                self.server.finalize(horizon)
            self.watchdog.check()
            result = self.metrics.result(horizon=horizon, seed=self.seed)
        return replace(
            result,
            uplink_delivered=self.uplink.delivered.count,
            uplink_dropped=self.uplink.dropped.count + self.uplink.corrupted.count,
        )

    def qos_report(self):
        """Tail/jitter/fairness report; requires ``record_qos=True``.

        Returns a :class:`~repro.sim.qos.QoSReport`.
        """
        if self.metrics.qos_recorder is None:
            raise RuntimeError("construct the system with record_qos=True")
        return self.metrics.qos_recorder.report()
