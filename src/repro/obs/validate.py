"""Machine-checkable invariants over recorded traces.

The paper's claims are trajectory claims; :class:`TraceValidator` turns
three of them into proofs over any recorded trace:

* **Conservation** — every request that arrived at the server is, by
  trace end, in exactly one terminal state (satisfied, blocked, reneged,
  shed) or still traceably live (queued, parked, or riding an on-air
  transmission): ``arrived == satisfied + blocked + reneged + shed +
  live``, and no request is terminated twice.
* **Non-preemption** — in serial pull mode the channel alternates: no
  pull transmission overlaps a push slot (and no two push slots
  overlap).  Concurrent mode relaxes the pull-vs-push check by design.
* **γ tie-break** — at every pull selection the served entry has the
  maximal score over the whole queue, with ties broken toward the
  smaller item id (the deterministic order Eq. 1 induces).  Proven from
  the :class:`~repro.obs.events.GammaSnapshot` recorded at decision
  time, for any registered pull scheduler.
* **Reconfiguration audit** — every ``config_change`` installs legal
  knobs (α ∈ [0, 1], cutoff inside the catalog, shares monotone
  non-increasing summing to ≤ 1), the old/new chain is continuous, and
  after a ``controller_degraded`` the next change is the failsafe
  installing exactly the advertised fallback; no controller-sourced
  change may follow a degrade until an operator reset.  Conservation
  and non-preemption are checked over the *whole* trace, so they hold
  across every reconfiguration boundary by construction.

Violations raise :class:`TraceInvariantError` (or are returned in a
:class:`ValidationReport` under ``strict=False``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .recorder import Trace

__all__ = ["TraceInvariantError", "ValidationReport", "TraceValidator"]

#: Registered event kinds this validator deliberately does not examine
#: (trace-exhaustiveness contract, RL017).  ``request_retried`` is a
#: client-side uplink note emitted *before* the request ever arrives at
#: the server, so it predates the conservation ledger; ``pull_dropped``
#: is the item-level annotation of a bandwidth refusal whose per-request
#: consequences are separately recorded as terminal ``request_blocked``
#: events (which conservation does count); ``cutoff_changed`` is the
#: scheduler-local echo of a ``config_change``, which *is* audited.
EVENT_KINDS_PASSED: tuple[str, ...] = (
    "cutoff_changed",
    "pull_dropped",
    "request_retried",
)

_TERMINAL_KINDS = {
    "request_satisfied": "satisfied",
    "request_blocked": "blocked",
    "request_reneged": "reneged",
    "request_shed": "shed",
}


class TraceInvariantError(AssertionError):
    """A recorded trace violates a checked invariant."""


@dataclass
class ValidationReport:
    """Outcome of one validation pass.

    ``ok`` is true when no violation was found; ``violations`` lists
    human-readable descriptions otherwise.  The request census mirrors
    the conservation identity.
    """

    arrived: int = 0
    satisfied: int = 0
    blocked: int = 0
    reneged: int = 0
    shed: int = 0
    live: int = 0
    selections_checked: int = 0
    reconfigs_checked: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def summary(self) -> str:
        """One-paragraph digest of the pass."""
        head = (
            f"arrived={self.arrived} satisfied={self.satisfied} "
            f"blocked={self.blocked} reneged={self.reneged} shed={self.shed} "
            f"live={self.live}; gamma selections checked={self.selections_checked}; "
            f"reconfigurations audited={self.reconfigs_checked}"
        )
        if self.ok:
            return f"trace OK: {head}"
        lines = [f"trace INVALID: {head}", *(f"  - {v}" for v in self.violations)]
        return "\n".join(lines)


class TraceValidator:
    """Replays a recorded trace and proves the invariants above.

    Parameters
    ----------
    trace:
        The trace to validate (typed events, as produced by
        :class:`~repro.obs.recorder.TraceRecorder` or
        :func:`~repro.obs.recorder.read_trace`).
    pull_mode:
        ``"serial"`` or ``"concurrent"``; defaults to the trace
        metadata, then to ``"serial"``.
    """

    #: Maximum violations reported before the scan stops elaborating.
    MAX_REPORTED = 20

    def __init__(self, trace: Trace, pull_mode: str | None = None) -> None:
        self.trace = trace
        self.pull_mode = pull_mode or trace.meta.get("pull_mode", "serial")
        if self.pull_mode not in ("serial", "concurrent"):
            raise ValueError(f"unknown pull mode {self.pull_mode!r}")

    def validate(self, strict: bool = True) -> ValidationReport:
        """Run every check; raise on violations unless ``strict=False``."""
        report = ValidationReport()
        if self.trace.dropped:
            report.violations.append(
                f"trace truncated by ring buffer ({self.trace.dropped} events "
                "dropped): conservation cannot be proven — record unbounded"
            )
        else:
            self._check_conservation(report)
        self._check_monotonic_time(report)
        self._check_non_preemption(report)
        self._check_gamma_tiebreak(report)
        self._check_queue_lengths(report)
        self._check_config_changes(report)
        if strict and not report.ok:
            raise TraceInvariantError(report.summary())
        return report

    # -- individual checks -------------------------------------------------------
    def _note(self, report: ValidationReport, message: str) -> None:
        if len(report.violations) < self.MAX_REPORTED:
            report.violations.append(message)

    def _check_conservation(self, report: ValidationReport) -> None:
        arrived: set[int] = set()
        terminal: dict[int, str] = {}
        for event in self.trace.events:
            kind = event.kind
            if kind == "request_arrived":
                if event.req in arrived:
                    self._note(report, f"request {event.req} arrived twice")
                arrived.add(event.req)
            elif kind in _TERMINAL_KINDS:
                outcome = _TERMINAL_KINDS[kind]
                if event.req not in arrived:
                    self._note(
                        report,
                        f"request {event.req} {outcome} at t={event.time:g} "
                        "without a recorded arrival",
                    )
                previous = terminal.get(event.req)
                if previous is not None:
                    self._note(
                        report,
                        f"request {event.req} terminated twice "
                        f"({previous}, then {outcome} at t={event.time:g})",
                    )
                terminal[event.req] = outcome
                setattr(report, outcome, getattr(report, outcome) + 1)
        report.arrived = len(arrived)
        report.live = len(arrived) - len(terminal)
        total = report.satisfied + report.blocked + report.reneged + report.shed
        if report.arrived != total + report.live:
            self._note(
                report,
                f"conservation broken: arrived={report.arrived} != "
                f"terminal={total} + live={report.live}",
            )
        # Cross-check: every non-corrupted pull transmission satisfied
        # exactly the requests it carried.
        for event in self.trace.of_kind("pull_served"):
            if event.corrupted:
                continue
            for req in event.requests:
                if terminal.get(req) != "satisfied":
                    self._note(
                        report,
                        f"pull tx of item {event.item_id} at t={event.time:g} "
                        f"carried request {req} but no satisfaction was recorded",
                    )

    def _check_monotonic_time(self, report: ValidationReport) -> None:
        # Events are recorded at emission time: interval events
        # (push_broadcast, pull_served) are emitted when the transmission
        # *completes*, stamped with its start in ``time`` and its finish
        # in ``end`` — so the monotone quantity is ``end`` when present.
        last = float("-inf")
        for event in self.trace.events:
            emitted = getattr(event, "end", event.time)
            if emitted < last:
                self._note(
                    report,
                    f"time ran backwards: {event.kind} emitted at "
                    f"t={emitted:g} after t={last:g}",
                )
            last = max(last, emitted)

    def _check_non_preemption(self, report: ValidationReport) -> None:
        pushes = [
            (e.time, e.end, e.item_id) for e in self.trace.of_kind("push_broadcast")
        ]
        for (s1, e1, i1), (s2, e2, i2) in zip(pushes, pushes[1:]):
            if s2 < e1:
                self._note(
                    report,
                    f"push slots overlap: item {i1} [{s1:g},{e1:g}] and "
                    f"item {i2} [{s2:g},{e2:g}]",
                )
        if self.pull_mode != "serial":
            return
        pulls = [(e.time, e.end, e.item_id) for e in self.trace.of_kind("pull_served")]
        # Serial mode: one channel — merge both interval lists and require
        # zero positive-measure overlap anywhere.
        intervals = sorted(
            [(s, e, "push", i) for s, e, i in pushes]
            + [(s, e, "pull", i) for s, e, i in pulls]
        )
        for (s1, e1, k1, i1), (s2, e2, k2, i2) in zip(intervals, intervals[1:]):
            if s2 < e1:
                self._note(
                    report,
                    f"non-preemption broken: {k1} of item {i1} [{s1:g},{e1:g}] "
                    f"overlaps {k2} of item {i2} [{s2:g},{e2:g}]",
                )

    def _check_gamma_tiebreak(self, report: ValidationReport) -> None:
        for event in self.trace.of_kind("gamma_snapshot"):
            report.selections_checked += 1
            scores = dict(event.scores)
            served = scores.get(event.served_item)
            if served is None:
                self._note(
                    report,
                    f"gamma snapshot at t={event.time:g} serves item "
                    f"{event.served_item} absent from the queue snapshot",
                )
                continue
            for item_id, score in event.scores:
                if item_id == event.served_item:
                    continue
                if score > served:
                    self._note(
                        report,
                        f"selection at t={event.time:g} served item "
                        f"{event.served_item} (γ={served:g}) but item "
                        f"{item_id} scored higher (γ={score:g})",
                    )
                elif score == served and item_id < event.served_item:
                    self._note(
                        report,
                        f"tie-break broken at t={event.time:g}: served item "
                        f"{event.served_item} but item {item_id} ties at "
                        f"γ={score:g} with a smaller id",
                    )

    def _check_queue_lengths(self, report: ValidationReport) -> None:
        for event in self.trace.of_kind("queue_sampled"):
            if event.length < 0:
                self._note(
                    report,
                    f"negative queue length {event.length} at t={event.time:g}",
                )

    def _check_config_changes(self, report: ValidationReport) -> None:
        """The reconfiguration audit (see the module docstring)."""
        num_items = self.trace.meta.get("num_items")
        previous = None
        # Failsafe protocol state: after a controller_degraded, the next
        # config_change must be its failsafe; controller-sourced changes
        # stay forbidden until an operator change re-arms the loop.
        pending_fallback = None
        latched = False
        for event in self.trace.events:
            if event.kind == "controller_degraded":
                pending_fallback = event
                latched = True
                continue
            if event.kind != "config_change":
                continue
            report.reconfigs_checked += 1
            where = f"config_change seq={event.seq} at t={event.time:g}"
            if event.source not in ("controller", "failsafe", "operator"):
                self._note(
                    report,
                    f"{where}: unknown source {event.source!r} (expected "
                    "controller/failsafe/operator)",
                )
            if previous is not None and event.seq != previous.seq + 1:
                self._note(
                    report,
                    f"{where}: sequence gap after seq={previous.seq} — a "
                    "reconfiguration is missing from the trace",
                )
            if not 0.0 <= event.new_alpha <= 1.0:
                self._note(
                    report,
                    f"{where}: alpha {event.new_alpha:g} outside [0, 1]",
                )
            if event.new_cutoff < 0 or (
                num_items is not None and event.new_cutoff > int(num_items)
            ):
                limit = num_items if num_items is not None else "catalog size"
                self._note(
                    report,
                    f"{where}: cutoff {event.new_cutoff} outside [0, {limit}]",
                )
            shares = event.new_shares
            if any(s < -1e-9 for s in shares):
                self._note(report, f"{where}: negative bandwidth share in {shares}")
            if any(
                shares[i] < shares[i + 1] - 1e-9 for i in range(len(shares) - 1)
            ):
                self._note(
                    report,
                    f"{where}: shares {tuple(round(s, 6) for s in shares)} invert "
                    "the A>B>C priority order (monotone guardrail breached)",
                )
            if sum(shares) > 1.0 + 1e-9:
                self._note(
                    report,
                    f"{where}: shares sum to {sum(shares):g} > 1 "
                    "(over-committed downlink)",
                )
            if previous is not None and (
                event.old_cutoff != previous.new_cutoff
                or event.old_alpha != previous.new_alpha
                or tuple(event.old_shares) != tuple(previous.new_shares)
            ):
                self._note(
                    report,
                    f"{where}: old knobs do not chain from seq={previous.seq} "
                    "(an unrecorded reconfiguration happened in between)",
                )
            if pending_fallback is not None:
                fb = pending_fallback
                if event.source != "failsafe":
                    self._note(
                        report,
                        f"{where}: first change after controller_degraded "
                        f"(t={fb.time:g}) must be the failsafe, got source "
                        f"{event.source!r}",
                    )
                elif (
                    event.new_cutoff != fb.fallback_cutoff
                    or event.new_alpha != fb.fallback_alpha
                    or tuple(event.new_shares) != tuple(fb.fallback_shares)
                ):
                    self._note(
                        report,
                        f"{where}: failsafe installed cutoff={event.new_cutoff} "
                        f"alpha={event.new_alpha:g} shares={event.new_shares} "
                        f"but the degrade advertised cutoff={fb.fallback_cutoff} "
                        f"alpha={fb.fallback_alpha:g} shares={fb.fallback_shares}",
                    )
                pending_fallback = None
            elif latched and event.source == "controller":
                self._note(
                    report,
                    f"{where}: controller-sourced change after a degrade — the "
                    "failsafe latch must hold until an operator reset",
                )
            if latched and event.source == "operator":
                latched = False
            previous = event
