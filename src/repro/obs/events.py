"""Typed trace events emitted by the instrumented simulator.

Every scheduling decision of the hybrid server maps to exactly one event
type, so a recorded trace is a complete, replayable account of *why* a
run produced its aggregate numbers: request life-cycle transitions
(arrived → satisfied / blocked / reneged / shed), channel activity
(push slots, pull transmissions), policy snapshots (γ scores at each
selection, Eq. 1) and control-plane changes (cut-off re-optimisation).

Events are plain frozen dataclasses with a stable ``kind`` tag; they
round-trip losslessly through the JSON dictionaries used by the JSONL
trace files (:mod:`repro.obs.recorder`).

Request identity
----------------
:class:`~repro.workload.arrivals.Request` objects carry no id, so the
recorder assigns each distinct request object a small integer ``req``
on first sight; all life-cycle events reference that id.  Ids are only
meaningful within one trace.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

__all__ = [
    "TraceEventError",
    "RequestArrived",
    "RequestSatisfied",
    "RequestBlocked",
    "RequestReneged",
    "RequestShed",
    "RequestRetried",
    "PushBroadcast",
    "PullServed",
    "PullDropped",
    "QueueSampled",
    "CutoffChanged",
    "ConfigChange",
    "ControllerDegraded",
    "GammaSnapshot",
    "EVENT_TYPES",
    "event_to_dict",
    "event_from_dict",
]


class TraceEventError(ValueError):
    """Raised for malformed trace records (unknown kind, bad fields)."""


@dataclass(frozen=True, slots=True)
class RequestArrived:
    """A request reached the server (post-uplink).

    ``time`` is server-side arrival; ``gen_time`` the client-side
    generation instant (they differ under a non-ideal uplink).  Delay
    statistics are measured from ``gen_time``.
    """

    kind: ClassVar[str] = "request_arrived"
    time: float
    req: int
    item_id: int
    client_id: int
    class_rank: int
    priority: float
    gen_time: float


@dataclass(frozen=True, slots=True)
class RequestSatisfied:
    """A request was satisfied (terminal). ``delay = time - gen_time``."""

    kind: ClassVar[str] = "request_satisfied"
    time: float
    req: int
    item_id: int
    class_rank: int
    via_push: bool
    delay: float


@dataclass(frozen=True, slots=True)
class RequestBlocked:
    """A request was dropped at bandwidth admission (terminal)."""

    kind: ClassVar[str] = "request_blocked"
    time: float
    req: int
    item_id: int
    class_rank: int


@dataclass(frozen=True, slots=True)
class RequestReneged:
    """A request was abandoned by its client past the deadline (terminal)."""

    kind: ClassVar[str] = "request_reneged"
    time: float
    req: int
    item_id: int
    class_rank: int


@dataclass(frozen=True, slots=True)
class RequestShed:
    """A request was sacrificed by the bounded pull queue (terminal)."""

    kind: ClassVar[str] = "request_shed"
    time: float
    req: int
    item_id: int
    class_rank: int


@dataclass(frozen=True, slots=True)
class RequestRetried:
    """A client re-offered a request after a lost uplink attempt."""

    kind: ClassVar[str] = "request_retried"
    time: float
    req: int
    item_id: int
    class_rank: int
    attempt: int


@dataclass(frozen=True, slots=True)
class PushBroadcast:
    """One push slot occupied the channel over ``[time, end]``.

    ``satisfied`` lists the request ids decoded from this slot (empty
    when the slot was corrupted or nobody was waiting).
    """

    kind: ClassVar[str] = "push_broadcast"
    time: float
    end: float
    item_id: int
    satisfied: tuple[int, ...]
    corrupted: bool


@dataclass(frozen=True, slots=True)
class PullServed:
    """One pull transmission occupied its stream over ``[time, end]``.

    ``gamma`` is the selection score of the served entry at decision
    time (Eq. 1 for the importance scheduler); ``class_rank`` the class
    whose bandwidth pool was charged ``demand``.  A corrupted
    transmission satisfies nobody — its ``requests`` re-enter the queue
    or renege, which later events record.
    """

    kind: ClassVar[str] = "pull_served"
    time: float
    end: float
    item_id: int
    gamma: float
    class_rank: int
    demand: float
    requests: tuple[int, ...]
    corrupted: bool


@dataclass(frozen=True, slots=True)
class PullDropped:
    """A selected pull entry was refused bandwidth and dropped whole."""

    kind: ClassVar[str] = "pull_dropped"
    time: float
    item_id: int
    class_rank: int
    demand: float
    requests: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class QueueSampled:
    """The pull queue changed to ``length`` distinct items at ``time``."""

    kind: ClassVar[str] = "queue_sampled"
    time: float
    length: int


@dataclass(frozen=True, slots=True)
class CutoffChanged:
    """The cut-off point ``K`` was re-optimised at runtime (§3)."""

    kind: ClassVar[str] = "cutoff_changed"
    time: float
    old_cutoff: int
    new_cutoff: int


@dataclass(frozen=True, slots=True)
class ConfigChange:
    """The control plane installed a new knob state (K, α, shares).

    ``seq`` numbers the changes of one run from 1 so the validator can
    audit continuity: event ``n+1``'s ``old_*`` fields must equal event
    ``n``'s ``new_*`` fields, and the shares must always satisfy the
    monotone guardrail (non-increasing in rank, sum ≤ 1).  ``source``
    is ``"controller"`` (a closed-loop decision), ``"failsafe"`` (the
    watchdog reverting to last-known-good) or ``"operator"`` (a manual
    reconfiguration); ``reason`` is the controller's decision label.
    """

    kind: ClassVar[str] = "config_change"
    time: float
    seq: int
    source: str
    reason: str
    old_cutoff: int
    new_cutoff: int
    old_alpha: float
    new_alpha: float
    old_shares: tuple[float, ...]
    new_shares: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class ControllerDegraded:
    """The controller watchdog latched into failsafe.

    ``reason`` names the trip (``nan-observation:<class>``,
    ``nan-knob``, ``oscillation``, ``stalled``); the ``fallback_*``
    fields are the last-known-good knob state being restored.  The
    first ``config_change`` at or after this instant must carry
    ``source="failsafe"`` and install exactly that state — audited by
    the trace validator.
    """

    kind: ClassVar[str] = "controller_degraded"
    time: float
    reason: str
    fallback_cutoff: int
    fallback_alpha: float
    fallback_shares: tuple[float, ...]


@dataclass(frozen=True, slots=True)
class GammaSnapshot:
    """Scores of every queued entry at one pull selection.

    ``scores`` holds ``(item_id, score)`` pairs for the whole queue as
    the scheduler valued them at decision time; ``served_item`` is the
    entry the scheduler picked.  The trace validator proves the pick is
    the maximum with the smaller-id tie-break from exactly this record.
    """

    kind: ClassVar[str] = "gamma_snapshot"
    time: float
    served_item: int
    scores: tuple[tuple[int, float], ...]


#: Registry of every event type by its stable ``kind`` tag.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        RequestArrived,
        RequestSatisfied,
        RequestBlocked,
        RequestReneged,
        RequestShed,
        RequestRetried,
        PushBroadcast,
        PullServed,
        PullDropped,
        QueueSampled,
        CutoffChanged,
        ConfigChange,
        ControllerDegraded,
        GammaSnapshot,
    )
}


def event_to_dict(event) -> dict:
    """JSON-ready dictionary for one event (``kind`` + all fields)."""
    record = {"kind": event.kind}
    for f in fields(event):
        record[f.name] = getattr(event, f.name)
    return record


def _revive(value):
    """JSON arrays come back as lists; events store them as tuples."""
    if isinstance(value, list):
        return tuple(_revive(v) for v in value)
    return value


def event_from_dict(record: dict):
    """Rebuild a typed event from its dictionary form.

    Unknown ``kind`` tags or mismatched fields raise
    :class:`TraceEventError` (a ``ValueError``), so corrupt trace files
    fail loudly instead of half-loading.
    """
    kind = record.get("kind")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        raise TraceEventError(f"unknown trace event kind {kind!r}")
    payload = {k: _revive(v) for k, v in record.items() if k != "kind"}
    try:
        return cls(**payload)
    except TypeError as exc:
        raise TraceEventError(f"malformed {kind!r} record: {exc}") from exc
