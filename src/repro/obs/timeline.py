"""Per-class QoS timelines reconstructed from a recorded trace.

Aggregates in :class:`~repro.sim.metrics.SimulationResult` say *what* a
run produced; the timelines here show *when*: the horizon is split into
equal windows and each window gets

* the time-weighted pull-queue length,
* the mean selection score γ of the entries served in it,
* the time-weighted bandwidth-pool occupancy per service class,
* per-class delay percentiles (p50/p95) of the requests satisfied in it.

Every timeline converts to a
:class:`~repro.experiments.tables.FigureData`, so the existing
:func:`~repro.experiments.ascii_plot.ascii_plot` renders them in any
terminal or CI log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .recorder import Trace

if TYPE_CHECKING:  # imported lazily at runtime to avoid a cycle with repro.sim
    from ..experiments.tables import FigureData

__all__ = ["TraceTimelines", "build_timelines", "render_timelines"]

#: Registered event kinds the timelines deliberately ignore (RL017).
#: The windowed series need exactly three inputs: queue length samples,
#: pull selections (for γ and bandwidth occupancy) and satisfactions
#: (for delay percentiles).  Arrival/terminal lifecycle events, push
#: slots and control-plane events carry no per-window signal these
#: series plot; a new series must remove its kind from this list.
EVENT_KINDS_PASSED: tuple[str, ...] = (
    "config_change",
    "controller_degraded",
    "cutoff_changed",
    "gamma_snapshot",
    "pull_dropped",
    "push_broadcast",
    "request_arrived",
    "request_blocked",
    "request_reneged",
    "request_retried",
    "request_shed",
)


@dataclass
class TraceTimelines:
    """Windowed time series of one trace (see module docstring).

    ``centers`` holds the window mid-points; every series aligns with it.
    Windows without observations carry ``nan`` (rendered as gaps).
    """

    centers: list[float]
    window: float
    queue_length: list[float]
    served_gamma: list[float]
    pool_occupancy: dict[str, list[float]] = field(default_factory=dict)
    delay_p50: dict[str, list[float]] = field(default_factory=dict)
    delay_p95: dict[str, list[float]] = field(default_factory=dict)

    def figure(self, metric: str) -> "FigureData":
        """One timeline as a figure: ``queue`` | ``gamma`` | ``pool`` | ``delay``."""
        from ..experiments.tables import FigureData

        fig = FigureData(title=f"timeline: {metric}", x_label="time")
        if metric == "queue":
            fig.title = "timeline: pull-queue length (time-weighted per window)"
            fig.add("queue", self.centers, self.queue_length)
        elif metric == "gamma":
            fig.title = "timeline: mean γ of served entries"
            fig.add("gamma", self.centers, self.served_gamma)
        elif metric == "pool":
            fig.title = "timeline: bandwidth-pool occupancy per class"
            for name, series in self.pool_occupancy.items():
                fig.add(name, self.centers, series)
        elif metric == "delay":
            fig.title = "timeline: per-class delay p95"
            for name, series in self.delay_p95.items():
                fig.add(name, self.centers, series)
        else:
            raise ValueError(
                f"unknown timeline metric {metric!r}; "
                "use 'queue', 'gamma', 'pool' or 'delay'"
            )
        return fig

    def to_dict(self) -> dict:
        """JSON-ready representation (for export pipelines)."""
        return {
            "window": self.window,
            "centers": list(self.centers),
            "queue_length": list(self.queue_length),
            "served_gamma": list(self.served_gamma),
            "pool_occupancy": {k: list(v) for k, v in self.pool_occupancy.items()},
            "delay_p50": {k: list(v) for k, v in self.delay_p50.items()},
            "delay_p95": {k: list(v) for k, v in self.delay_p95.items()},
        }


def _class_names(trace: Trace) -> list[str]:
    names = trace.meta.get("class_names")
    if names:
        return list(names)
    ranks = {
        event.class_rank
        for event in trace.events
        if hasattr(event, "class_rank")
    }
    return [f"class-{rank}" for rank in sorted(ranks)]


def build_timelines(trace: Trace, num_windows: int = 24) -> TraceTimelines:
    """Split the trace horizon into windows and aggregate each (see module doc)."""
    if num_windows < 1:
        raise ValueError(f"num_windows must be >= 1, got {num_windows}")
    horizon = trace.meta.get("horizon")
    if horizon is None:
        horizon = max((getattr(e, "end", e.time) for e in trace.events), default=1.0)
    horizon = float(horizon)
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    width = horizon / num_windows
    edges = [i * width for i in range(num_windows + 1)]
    centers = [(edges[i] + edges[i + 1]) / 2 for i in range(num_windows)]
    names = _class_names(trace)

    # Queue length: integrate the piecewise-constant level per window.
    queue_area = [0.0] * num_windows
    level, last = 0.0, 0.0
    samples = sorted(trace.of_kind("queue_sampled"), key=lambda e: e.time)
    for event in [*samples, None]:
        until = horizon if event is None else min(event.time, horizon)
        _accumulate_interval(queue_area, last, until, level, edges)
        if event is None:
            break
        level, last = float(event.length), min(event.time, horizon)
    queue_length = [area / width for area in queue_area]

    # γ of served entries: mean per window of the transmission start.
    gamma_sum = [0.0] * num_windows
    gamma_n = [0] * num_windows
    served = trace.of_kind("pull_served")
    for event in served:
        index = _window_of(event.time, width, num_windows)
        if index is not None and not math.isnan(event.gamma):
            gamma_sum[index] += event.gamma
            gamma_n[index] += 1
    served_gamma = [
        gamma_sum[i] / gamma_n[i] if gamma_n[i] else math.nan
        for i in range(num_windows)
    ]

    # Bandwidth-pool occupancy: demand held over the transmission span,
    # time-weighted per window and charged class.
    occupancy = {name: [0.0] * num_windows for name in names}
    for event in served:
        name = names[event.class_rank] if event.class_rank < len(names) else None
        if name is None:
            continue
        _accumulate_interval(
            occupancy[name], event.time, min(event.end, horizon), event.demand, edges
        )
    pool_occupancy = {
        name: [area / width for area in series] for name, series in occupancy.items()
    }

    # Per-class delay percentiles of the satisfactions in each window.
    delays: dict[str, list[list[float]]] = {
        name: [[] for _ in range(num_windows)] for name in names
    }
    for event in trace.of_kind("request_satisfied"):
        if event.class_rank >= len(names):
            continue
        index = _window_of(event.time, width, num_windows)
        if index is not None:
            delays[names[event.class_rank]][index].append(event.delay)
    delay_p50 = {
        name: [_pct(bucket, 50) for bucket in buckets]
        for name, buckets in delays.items()
    }
    delay_p95 = {
        name: [_pct(bucket, 95) for bucket in buckets]
        for name, buckets in delays.items()
    }

    return TraceTimelines(
        centers=centers,
        window=width,
        queue_length=queue_length,
        served_gamma=served_gamma,
        pool_occupancy=pool_occupancy,
        delay_p50=delay_p50,
        delay_p95=delay_p95,
    )


def render_timelines(
    trace: Trace,
    metrics: tuple[str, ...] = ("queue", "gamma", "pool", "delay"),
    num_windows: int = 24,
    width: int = 72,
    height: int = 12,
) -> str:
    """ASCII-render the requested timelines of one trace."""
    from ..experiments.ascii_plot import ascii_plot

    timelines = build_timelines(trace, num_windows=num_windows)
    charts = [
        ascii_plot(timelines.figure(metric), width=width, height=height)
        for metric in metrics
    ]
    return "\n\n".join(charts)


def _window_of(time: float, width: float, num_windows: int):
    """Window index of an instant, or None outside the horizon."""
    if time < 0:
        return None
    index = int(time / width)
    if index >= num_windows:
        # The horizon boundary itself belongs to the last window.
        return num_windows - 1 if time <= width * num_windows else None
    return index


def _accumulate_interval(
    areas: list[float], start: float, end: float, level: float, edges: list[float]
) -> None:
    """Add ``level``'s area over ``[start, end]`` into the window bins."""
    if end <= start or level == 0.0:
        return
    num_windows = len(areas)
    width = edges[1] - edges[0]
    first = max(int(start / width), 0)
    for index in range(first, num_windows):
        lo, hi = edges[index], edges[index + 1]
        if lo >= end:
            break
        overlap = min(end, hi) - max(start, lo)
        if overlap > 0:
            areas[index] += level * overlap


def _pct(values: list[float], q: float) -> float:
    if not values:
        return math.nan
    return float(np.percentile(values, q))
