"""Run manifests: the provenance record written next to every artifact.

A manifest answers "what exactly produced this file?": a content hash of
the full :class:`~repro.core.config.HybridConfig`, the seed schedule
(base seed and the SeedSequence-spawned per-run seeds), run parameters,
and the software versions involved.  Two artifacts with equal config
hashes and seeds are claims about the same experiment; differing hashes
explain a diff before any event-level comparison is needed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import platform
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

__all__ = [
    "config_hash",
    "package_versions",
    "build_manifest",
    "write_manifest",
    "read_manifest",
    "manifest_mismatches",
]


def config_hash(config) -> str:
    """SHA-256 over the canonical JSON form of a config dataclass.

    Stable across processes and sessions: keys are sorted and
    non-JSON-native values (e.g. ``inf`` deadlines) serialise via
    ``str``.
    """
    payload = dataclasses.asdict(config)
    canonical = json.dumps(payload, sort_keys=True, default=str, allow_nan=True)
    return hashlib.sha256(canonical.encode()).hexdigest()


def package_versions() -> dict[str, str]:
    """Versions of the packages whose behaviour shapes results."""
    versions: dict[str, str] = {"python": platform.python_version()}
    for name in ("numpy", "scipy"):
        module = sys.modules.get(name)
        if module is None:
            try:
                module = __import__(name)
            except ImportError:  # pragma: no cover - both are hard deps
                continue
        versions[name] = getattr(module, "__version__", "unknown")
    try:
        from .. import __version__ as repro_version

        versions["repro"] = repro_version
    except ImportError:  # pragma: no cover - package always importable here
        pass
    return versions


def build_manifest(
    config=None,
    base_seed: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    horizon: Optional[float] = None,
    warmup: Optional[float] = None,
    pull_mode: Optional[str] = None,
    extra: Optional[dict] = None,
) -> dict:
    """Assemble a manifest dictionary for one run or artifact set.

    Every argument is optional so the same schema covers single traced
    runs, replication sweeps and whole figure-export batches; ``extra``
    merges caller-specific fields (e.g. experiment scale) at top level.
    """
    manifest: dict = {
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "packages": package_versions(),
        "platform": platform.platform(),
    }
    if config is not None:
        manifest["config_hash"] = config_hash(config)
        manifest["config"] = json.loads(
            json.dumps(dataclasses.asdict(config), default=str, allow_nan=True)
        )
    if base_seed is not None:
        manifest["base_seed"] = int(base_seed)
    if seeds is not None:
        manifest["seeds"] = [int(seed) for seed in seeds]
    if horizon is not None:
        manifest["horizon"] = float(horizon)
    if warmup is not None:
        manifest["warmup"] = float(warmup)
    if pull_mode is not None:
        manifest["pull_mode"] = str(pull_mode)
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(manifest: dict, path: str | Path) -> Path:
    """Persist a manifest as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=str))
    return path


def read_manifest(path: str | Path) -> dict:
    """Load a manifest written by :func:`write_manifest`."""
    return json.loads(Path(path).read_text())


def manifest_mismatches(manifest: dict, **expected) -> list[str]:
    """Compare provenance fields of ``manifest`` against expected values.

    Returns one human-readable line per mismatching key (empty list =
    full agreement).  Used by consumers that must *refuse* to mix
    artifacts from different experiments — e.g. the sweep checkpoint
    store, which rejects a resume when the stored ``config_hash``
    disagrees with the config being resumed.
    """
    problems = []
    for key, want in expected.items():
        have = manifest.get(key)
        if have != want:
            problems.append(f"{key}: checkpoint has {have!r}, run requests {want!r}")
    return problems
