"""``repro.obs`` — observability: tracing, timelines, profiling, manifests.

A zero-overhead-when-disabled telemetry layer threaded through the
simulator:

* :class:`TraceRecorder` + typed events — every scheduling decision as
  a replayable JSONL stream;
* :class:`TraceValidator` — machine-checked trajectory invariants
  (conservation, non-preemption, the Eq. 1 γ tie-break);
* :func:`build_timelines` — per-class windowed QoS time series rendered
  by the ASCII plotter;
* :class:`PhaseProfiler` — per-phase wall-time counters;
* :func:`build_manifest` — provenance records (config hash, seed
  schedule, package versions) written next to artifacts;
* :func:`diff_traces` — first-divergence comparison of two runs.
"""

from .diff import TraceDiff, diff_traces
from .events import (
    EVENT_TYPES,
    ConfigChange,
    ControllerDegraded,
    CutoffChanged,
    GammaSnapshot,
    PullDropped,
    PullServed,
    PushBroadcast,
    QueueSampled,
    RequestArrived,
    RequestBlocked,
    RequestReneged,
    RequestRetried,
    RequestSatisfied,
    RequestShed,
    TraceEventError,
    event_from_dict,
    event_to_dict,
)
from .manifest import (
    build_manifest,
    config_hash,
    package_versions,
    read_manifest,
    write_manifest,
)
from .profiling import PhaseProfiler
from .recorder import (
    Trace,
    TraceRecorder,
    merge_trace_files,
    merge_traces,
    read_merged,
    read_trace,
    write_merged,
    write_trace,
)
from .timeline import TraceTimelines, build_timelines, render_timelines
from .validate import TraceInvariantError, TraceValidator, ValidationReport

__all__ = [
    "EVENT_TYPES",
    "ConfigChange",
    "ControllerDegraded",
    "CutoffChanged",
    "GammaSnapshot",
    "PullDropped",
    "PullServed",
    "PushBroadcast",
    "QueueSampled",
    "RequestArrived",
    "RequestBlocked",
    "RequestReneged",
    "RequestRetried",
    "RequestSatisfied",
    "RequestShed",
    "TraceEventError",
    "event_from_dict",
    "event_to_dict",
    "Trace",
    "TraceRecorder",
    "write_trace",
    "read_trace",
    "merge_traces",
    "merge_trace_files",
    "write_merged",
    "read_merged",
    "TraceValidator",
    "TraceInvariantError",
    "ValidationReport",
    "TraceTimelines",
    "build_timelines",
    "render_timelines",
    "PhaseProfiler",
    "build_manifest",
    "config_hash",
    "package_versions",
    "write_manifest",
    "read_manifest",
    "TraceDiff",
    "diff_traces",
]
