"""Event-level comparison of two recorded traces.

Two runs of the same ``(config, seed)`` must produce identical traces;
:func:`diff_traces` pinpoints the first event where they diverge and
summarises per-kind count deltas — far more actionable than comparing
end-of-run aggregates.  Metadata differences (seed, config hash) are
reported first since they usually *explain* an event divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .events import event_to_dict
from .recorder import Trace

__all__ = ["TraceDiff", "diff_traces"]

#: The diff is kind-agnostic *by construction* — events compare as whole
#: dicts and count deltas group by whatever ``kind`` they carry — so
#: every registered kind is deliberately "passed" here (RL017).  A new
#: event kind must be added to this list: that forced edit is the prompt
#: to check the dict comparison still covers its payload.
EVENT_KINDS_PASSED: tuple[str, ...] = (
    "config_change",
    "controller_degraded",
    "cutoff_changed",
    "gamma_snapshot",
    "pull_dropped",
    "pull_served",
    "push_broadcast",
    "queue_sampled",
    "request_arrived",
    "request_blocked",
    "request_reneged",
    "request_retried",
    "request_satisfied",
    "request_shed",
)

#: Metadata keys worth comparing between two traces.
_META_KEYS = ("seed", "config_hash", "pull_mode", "horizon", "warmup")


@dataclass
class TraceDiff:
    """Outcome of comparing two traces.

    ``first_divergence`` is the index of the first differing event
    (``None`` when the streams are identical up to the shorter length).
    """

    identical: bool
    meta_diffs: list[str] = field(default_factory=list)
    first_divergence: int | None = None
    divergence_detail: str | None = None
    count_deltas: dict[str, tuple[int, int]] = field(default_factory=dict)
    lengths: tuple[int, int] = (0, 0)

    def summary(self) -> str:
        """Human-readable digest of the comparison."""
        if self.identical:
            return f"traces identical ({self.lengths[0]} events)"
        lines = [f"traces differ ({self.lengths[0]} vs {self.lengths[1]} events)"]
        for diff in self.meta_diffs:
            lines.append(f"  meta: {diff}")
        if self.first_divergence is not None:
            lines.append(f"  first divergence at event {self.first_divergence}:")
            lines.append(f"    {self.divergence_detail}")
        for kind, (a, b) in sorted(self.count_deltas.items()):
            lines.append(f"  count {kind}: {a} vs {b}")
        return "\n".join(lines)


def diff_traces(left: Trace, right: Trace) -> TraceDiff:
    """Compare two traces event-by-event (see module docstring)."""
    meta_diffs = []
    for key in _META_KEYS:
        a, b = left.meta.get(key), right.meta.get(key)
        if a != b:
            meta_diffs.append(f"{key}: {a!r} vs {b!r}")

    first = None
    detail = None
    for index, (a, b) in enumerate(zip(left.events, right.events)):
        da, db = event_to_dict(a), event_to_dict(b)
        if da != db:
            first = index
            changed = sorted(
                k for k in set(da) | set(db) if da.get(k) != db.get(k)
            )
            detail = f"{da.get('kind')}: " + "; ".join(
                f"{k}={da.get(k)!r} vs {db.get(k)!r}" for k in changed
            )
            break
    if first is None and len(left.events) != len(right.events):
        first = min(len(left.events), len(right.events))
        longer = left if len(left.events) > len(right.events) else right
        detail = (
            f"one trace ends; the other continues with "
            f"{longer.events[first].kind} at t={longer.events[first].time:g}"
        )

    counts_left, counts_right = left.counts(), right.counts()
    deltas = {
        kind: (counts_left.get(kind, 0), counts_right.get(kind, 0))
        for kind in sorted(set(counts_left) | set(counts_right))
        if counts_left.get(kind, 0) != counts_right.get(kind, 0)
    }
    identical = not meta_diffs and first is None
    return TraceDiff(
        identical=identical,
        meta_diffs=meta_diffs,
        first_divergence=first,
        divergence_detail=detail,
        count_deltas=deltas,
        lengths=(len(left.events), len(right.events)),
    )
