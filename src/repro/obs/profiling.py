"""Lightweight per-phase wall-time profiling for simulation runs.

:class:`PhaseProfiler` accumulates call counts and wall-clock time per
named phase (push selection, pull selection, metrics finalisation, fault
machinery...).  It is a *nullable* hook exactly like the trace recorder:
the simulator carries ``profiler=None`` by default and pays nothing; an
installed profiler costs one ``perf_counter`` pair per instrumented
call.

Profilers from parallel workers merge with :meth:`PhaseProfiler.merge`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["PhaseProfiler"]


class PhaseProfiler:
    """Accumulates ``(calls, seconds)`` per named phase."""

    def __init__(self) -> None:
        self._calls: dict[str, int] = {}
        self._seconds: dict[str, float] = {}

    @contextmanager
    def phase(self, name: str):
        """Context manager timing one occurrence of ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    def observe(self, name: str, seconds: float) -> None:
        """Record one occurrence of ``name`` lasting ``seconds``."""
        self._calls[name] = self._calls.get(name, 0) + 1
        self._seconds[name] = self._seconds.get(name, 0.0) + float(seconds)

    def calls(self, name: str) -> int:
        """Occurrences recorded for ``name`` (0 if never seen)."""
        return self._calls.get(name, 0)

    def seconds(self, name: str) -> float:
        """Total wall time recorded for ``name``."""
        return self._seconds.get(name, 0.0)

    @property
    def phases(self) -> list[str]:
        """Phase names seen so far, insertion-ordered."""
        return list(self._calls)

    def as_dict(self) -> dict[str, dict[str, float]]:
        """``{phase: {"calls": n, "seconds": s}}`` (JSON-ready)."""
        return {
            name: {"calls": self._calls[name], "seconds": self._seconds[name]}
            for name in self._calls
        }

    def merge(self, other: "PhaseProfiler") -> "PhaseProfiler":
        """Return a new profiler combining this one with ``other``."""
        merged = PhaseProfiler()
        for source in (self, other):
            for name in source._calls:
                merged._calls[name] = merged._calls.get(name, 0) + source._calls[name]
                merged._seconds[name] = (
                    merged._seconds.get(name, 0.0) + source._seconds[name]
                )
        return merged

    def report(self) -> str:
        """Fixed-width table of phases sorted by total time, descending."""
        if not self._calls:
            return "no phases recorded"
        rows = sorted(self._seconds.items(), key=lambda kv: -kv[1])
        total = sum(self._seconds.values()) or 1.0
        lines = [f"{'phase':<24} {'calls':>10} {'seconds':>10} {'share':>7}"]
        for name, seconds in rows:
            lines.append(
                f"{name:<24} {self._calls[name]:>10} {seconds:>10.4f} "
                f"{seconds / total:>6.1%}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<PhaseProfiler {len(self._calls)} phases>"
