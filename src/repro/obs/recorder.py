"""Trace recording, persistence (JSONL) and cross-run merging.

:class:`TraceRecorder` is the nullable hook the simulator carries: when
no recorder is installed the fast path is untouched; when one is, every
scheduling decision lands here as a typed event
(:mod:`repro.obs.events`).  Events are buffered in memory (optionally a
bounded ring) and/or streamed straight to a JSONL file, one JSON object
per line, with a metadata header line carrying seed, pull mode, config
hash and class names.

Parallel replications each record their own file;
:func:`merge_trace_files` folds them into one ordered, seed-attributed
stream (sorted by ``(time, seed, seq)``) for cross-run inspection.
"""

from __future__ import annotations

import json
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .events import event_from_dict, event_to_dict

__all__ = [
    "TraceRecorder",
    "Trace",
    "write_trace",
    "read_trace",
    "merge_traces",
    "merge_trace_files",
    "write_merged",
    "read_merged",
]

_META_KIND = "trace_meta"


@dataclass
class Trace:
    """One run's recorded event stream plus its metadata header.

    ``dropped`` counts events displaced by a bounded ring buffer; a
    non-zero value marks the trace as truncated (the validator refuses
    conservation proofs on truncated traces).
    """

    meta: dict = field(default_factory=dict)
    events: list = field(default_factory=list)
    dropped: int = 0

    @property
    def seed(self) -> Optional[int]:
        """Seed of the run that produced this trace (from the header)."""
        return self.meta.get("seed")

    def counts(self) -> dict[str, int]:
        """Event count per kind (diagnostic digest)."""
        return dict(_Counter(event.kind for event in self.events))

    def of_kind(self, kind: str) -> list:
        """All events of one kind, in recorded order."""
        return [event for event in self.events if event.kind == kind]

    def summary(self) -> str:
        """Human-readable digest of the trace."""
        lines = [
            f"trace: {len(self.events)} events"
            + (f" (+{self.dropped} dropped by ring buffer)" if self.dropped else "")
        ]
        for key in ("seed", "pull_mode", "config_hash", "horizon", "warmup"):
            if key in self.meta:
                lines.append(f"  {key}: {self.meta[key]}")
        for kind, count in sorted(self.counts().items()):
            lines.append(f"  {kind:<20} {count}")
        return "\n".join(lines)


class TraceRecorder:
    """Collects trace events from one simulation run.

    Parameters
    ----------
    capacity:
        ``None`` (default) buffers every event; a positive integer keeps
        only the newest ``capacity`` events (ring buffer) and counts the
        displaced ones in :attr:`dropped`.
    stream:
        Optional path: events are additionally appended to this JSONL
        file as they occur (the metadata header is written on
        :meth:`close`, prefixed, by rewriting — use :func:`write_trace`
        for one-shot persistence instead when possible).
    gamma_snapshots:
        Record a :class:`~repro.obs.events.GammaSnapshot` of the whole
        queue at every pull selection.  Exact but O(queue) per service —
        disable for very long runs where only life-cycle events matter.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        stream: str | Path | None = None,
        gamma_snapshots: bool = True,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.capacity = capacity
        self.gamma_snapshots = bool(gamma_snapshots)
        self.meta: dict = {}
        self.dropped = 0
        self._seq = 0
        self._buffer: deque = deque(maxlen=capacity)
        self._req_ids: dict[int, int] = {}
        self._req_pins: list = []
        self._next_req_id = 0
        self._entry_gamma: dict[int, float] = {}
        self._stream_path = Path(stream) if stream is not None else None
        self._stream_handle = None
        if self._stream_path is not None:
            self._stream_path.parent.mkdir(parents=True, exist_ok=True)
            self._stream_handle = self._stream_path.open("w")

    # -- identity ----------------------------------------------------------------
    def rid(self, request) -> int:
        """Stable per-trace integer id for one request object.

        The request is also pinned (a reference is kept) so CPython
        cannot recycle its memory address for a later request — ``id()``
        reuse would silently alias two distinct requests in the trace.
        """
        key = id(request)
        found = self._req_ids.get(key)
        if found is None:
            found = self._next_req_id
            self._req_ids[key] = found
            self._req_pins.append(request)
            self._next_req_id += 1
        return found

    def note_gamma(self, entry, gamma: float) -> None:
        """Remember the selection score of an entry now entering service."""
        self._entry_gamma[id(entry)] = float(gamma)

    def take_gamma(self, entry) -> float:
        """Retrieve (and forget) the selection score noted for ``entry``."""
        return self._entry_gamma.pop(id(entry), float("nan"))

    # -- event intake ------------------------------------------------------------
    def emit(self, event) -> None:
        """Record one event (buffer and/or stream)."""
        if self.capacity is not None and len(self._buffer) == self.capacity:
            self.dropped += 1
        self._buffer.append(event)
        self._seq += 1
        if self._stream_handle is not None:
            json.dump(event_to_dict(event), self._stream_handle)
            self._stream_handle.write("\n")

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def events(self) -> list:
        """The buffered events, oldest first."""
        return list(self._buffer)

    # -- output ------------------------------------------------------------------
    def trace(self) -> Trace:
        """Freeze the buffer into a :class:`Trace`."""
        return Trace(meta=dict(self.meta), events=self.events, dropped=self.dropped)

    def close(self) -> None:
        """Flush and close the stream file (rewriting it with the header)."""
        if self._stream_handle is not None:
            self._stream_handle.close()
            self._stream_handle = None
            # The header (meta) is only complete after the run; rewrite
            # the streamed file with it prepended.
            write_trace(self.trace(), self._stream_path)

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        cap = self.capacity if self.capacity is not None else "∞"
        return f"<TraceRecorder {len(self._buffer)} events (cap {cap})>"


# -- persistence ---------------------------------------------------------------
def write_trace(trace: Trace, path: str | Path) -> Path:
    """Write one trace as JSONL (header line + one event per line)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {"kind": _META_KIND, "dropped": trace.dropped, **trace.meta}
    with path.open("w") as handle:
        json.dump(header, handle)
        handle.write("\n")
        for event in trace.events:
            json.dump(event_to_dict(event), handle)
            handle.write("\n")
    return path


def read_trace(path: str | Path) -> Trace:
    """Load a JSONL trace written by :func:`write_trace`."""
    path = Path(path)
    meta: dict = {}
    dropped = 0
    events = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == _META_KIND:
                record.pop("kind")
                dropped = int(record.pop("dropped", 0))
                meta = record
                continue
            events.append(event_from_dict(record))
    return Trace(meta=meta, events=events, dropped=dropped)


# -- merging -------------------------------------------------------------------
def merge_traces(traces: Sequence[Trace]) -> list[dict]:
    """Merge per-run traces into one ordered, seed-attributed stream.

    Every record is the event's dictionary form annotated with the
    originating run's ``seed`` and its position ``seq`` within that
    run.  The merged stream is sorted by ``(time, seed, seq)`` — a total
    order that interleaves concurrent runs deterministically while
    preserving each run's own causal order.
    """
    records: list[dict] = []
    for trace in traces:
        seed = trace.seed
        for seq, event in enumerate(trace.events):
            record = event_to_dict(event)
            record["seed"] = seed
            record["seq"] = seq
            records.append(record)
    records.sort(key=lambda r: (r["time"], _seed_key(r["seed"]), r["seq"]))
    return records


def _seed_key(seed) -> tuple[int, int]:
    # None seeds (untagged traces) sort first, stably.
    return (0, 0) if seed is None else (1, int(seed))


def merge_trace_files(paths: Iterable[str | Path]) -> list[dict]:
    """Load several JSONL traces and merge them (see :func:`merge_traces`)."""
    return merge_traces([read_trace(path) for path in paths])


def write_merged(records: list[dict], path: str | Path) -> Path:
    """Persist a merged stream as JSONL, one record per line."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for record in records:
            json.dump(record, handle)
            handle.write("\n")
    return path


def read_merged(path: str | Path) -> list[dict]:
    """Load a merged stream written by :func:`write_merged`."""
    with Path(path).open() as handle:
        return [json.loads(line) for line in handle if line.strip()]
