"""Knob state, per-knob bounds/rate limits and the monotone share guardrail.

The controller tunes three knobs: the push/pull cutoff ``K``, the Eq. 1
importance weight ``α`` and the per-class bandwidth shares.  Every
proposed move passes through this module, which enforces

* **bounds** — each knob stays inside its configured interval;
* **rate limits** — no knob moves more than one configured step per
  reconfiguration (the anti-thrash half of hysteresis);
* **the monotone guardrail** — applied shares are always non-increasing
  in rank (``A ≥ B ≥ C``), each at least the configured floor, summing to
  at most the budget.  :func:`project_shares` either returns a vector
  satisfying all three properties or falls back to the current (already
  valid) shares — so an invalid share vector is *unreachable*, which is
  what the Hypothesis guardrail suite pins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["KnobState", "KnobBounds", "project_shares", "clamp_step"]

_EPS = 1e-9


@dataclass(frozen=True)
class KnobState:
    """One complete knob assignment: cutoff K, α and bandwidth shares."""

    cutoff: int
    alpha: float
    shares: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.cutoff < 0:
            raise ValueError(f"cutoff must be >= 0, got {self.cutoff}")
        if math.isnan(self.alpha) or not 0 <= self.alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not self.shares:
            raise ValueError("shares must be non-empty")
        for share in self.shares:
            if math.isnan(share) or share < 0:
                raise ValueError(f"shares must be >= 0, got {self.shares}")

    @property
    def finite(self) -> bool:
        """NaN/inf watchdog predicate over every knob value."""
        values = (float(self.cutoff), self.alpha, *self.shares)
        return all(math.isfinite(v) for v in values)

    def monotone(self, tolerance: float = _EPS) -> bool:
        """Whether shares are non-increasing in rank (A ≥ B ≥ C)."""
        return all(
            self.shares[i] >= self.shares[i + 1] - tolerance
            for i in range(len(self.shares) - 1)
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form for status endpoints and trace metadata."""
        return {
            "cutoff": self.cutoff,
            "alpha": self.alpha,
            "shares": list(self.shares),
        }


@dataclass(frozen=True)
class KnobBounds:
    """Per-knob intervals, maximum step sizes and the share guardrail.

    ``share_budget`` caps the sum of the applied shares (≤ 1 — the
    remainder of the downlink is the push channel's, exactly as in
    :class:`~repro.core.config.HybridConfig`).
    """

    cutoff_min: int = 0
    cutoff_max: int = 100
    cutoff_step: int = 5
    alpha_min: float = 0.0
    alpha_max: float = 1.0
    alpha_step: float = 0.1
    share_floor: float = 0.02
    share_step: float = 0.05
    share_budget: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.cutoff_min <= self.cutoff_max:
            raise ValueError(
                f"need 0 <= cutoff_min <= cutoff_max, got "
                f"[{self.cutoff_min}, {self.cutoff_max}]"
            )
        if self.cutoff_step < 1:
            raise ValueError(f"cutoff_step must be >= 1, got {self.cutoff_step}")
        if not 0 <= self.alpha_min <= self.alpha_max <= 1:
            raise ValueError(
                f"need 0 <= alpha_min <= alpha_max <= 1, got "
                f"[{self.alpha_min}, {self.alpha_max}]"
            )
        if not 0 < self.alpha_step <= 1:
            raise ValueError(f"alpha_step must be in (0, 1], got {self.alpha_step}")
        if not 0 <= self.share_floor < 1:
            raise ValueError(f"share_floor must be in [0, 1), got {self.share_floor}")
        if not 0 < self.share_step <= 1:
            raise ValueError(f"share_step must be in (0, 1], got {self.share_step}")
        if not 0 < self.share_budget <= 1:
            raise ValueError(f"share_budget must be in (0, 1], got {self.share_budget}")

    def admits(self, knobs: KnobState) -> bool:
        """Whether a knob state lies inside every bound and guardrail."""
        if not knobs.finite:
            return False
        if not self.cutoff_min <= knobs.cutoff <= self.cutoff_max:
            return False
        if not self.alpha_min - _EPS <= knobs.alpha <= self.alpha_max + _EPS:
            return False
        if not knobs.monotone():
            return False
        if any(s < self.share_floor - _EPS for s in knobs.shares):
            return False
        return sum(knobs.shares) <= self.share_budget + _EPS


def clamp_step(current: float, proposed: float, step: float, lo: float, hi: float) -> float:
    """Bound one scalar move: at most ``step`` from ``current``, inside ``[lo, hi]``.

    The rate limit applies first, the interval second, so a knob pinned
    at a bound can still step back inside it.
    """
    limited = min(max(proposed, current - step), current + step)
    return min(max(limited, lo), hi)


def _isotonic_non_increasing(values: list[float]) -> list[float]:
    """Project onto the non-increasing cone (pool-adjacent-violators).

    Classic PAVA with equal weights: adjacent blocks that violate the
    ordering merge into their mean, which is the Euclidean projection.
    """
    blocks: list[tuple[float, int]] = []  # (block mean, block size)
    for value in values:
        mean, size = value, 1
        # A *smaller* predecessor violates non-increasing order: merge.
        while blocks and blocks[-1][0] < mean - _EPS:
            prev_mean, prev_size = blocks.pop()
            mean = (mean * size + prev_mean * prev_size) / (size + prev_size)
            size += prev_size
        blocks.append((mean, size))
    flat: list[float] = []
    for mean, size in blocks:
        flat.extend([mean] * size)
    return flat


def project_shares(
    current: tuple[float, ...], proposed: tuple[float, ...], bounds: KnobBounds
) -> tuple[float, ...]:
    """The monotone guardrail: make a share proposal safe, or refuse it.

    The pipeline — isotonic projection onto the non-increasing cone,
    per-class rate limit (``median(current±step, proposed)``, which
    preserves monotonicity because the median is monotone in its
    arguments), floor lift, budget rescale — ends with an explicit
    validity check.  If any step left the vector invalid the *current*
    (valid by induction) shares are returned unchanged, so the guardrail
    can never emit an inverted or over-budget vector.
    """
    if len(proposed) != len(current):
        return current
    if any(math.isnan(s) or math.isinf(s) for s in proposed):
        return current
    ordered = _isotonic_non_increasing(list(proposed))
    step = bounds.share_step
    limited = [
        min(max(p, c - step), c + step) for p, c in zip(ordered, current)
    ]
    floored = [max(s, bounds.share_floor) for s in limited]
    total = sum(floored)
    if total > bounds.share_budget:
        scale = bounds.share_budget / total
        floored = [s * scale for s in floored]
    candidate = tuple(floored)
    probe = KnobState(cutoff=bounds.cutoff_min, alpha=bounds.alpha_min, shares=candidate)
    if not probe.monotone():
        return current
    if any(s < bounds.share_floor - _EPS for s in candidate):
        return current
    if sum(candidate) > bounds.share_budget + _EPS:
        return current
    return candidate
