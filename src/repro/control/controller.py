"""The closed-loop SLO controller: windowed QoS in, bounded knob moves out.

:class:`SLOController` is a *pure* deterministic policy object — no
wall-clock, no randomness, no simulator imports — so the same instance
drives the DES engines (:mod:`repro.control.loop`), the live service
(:mod:`repro.service.core`) and offline trace replay (``repro control
replay``).  Hosts feed it one :class:`WindowObservation` per control
window and apply whatever :class:`Decision.applied` asks for.

Hardening, in the order the update runs:

1. **NaN watchdog** — a window reporting non-finite statistics *despite
   having data* degrades the controller immediately.
2. **Hysteresis** — violations must persist ``engage_windows``
   consecutive windows before any move; after a move the controller
   holds still for ``cooldown_windows`` (per-knob rate limits on top of
   that live in :mod:`repro.control.knobs`).  Together these bound the
   reconfiguration rate to ``1 / (cooldown_windows + 1)`` changes per
   window — pinned by the Hypothesis suite.
3. **Oscillation watchdog** — ``flip_limit`` direction reversals of the
   cutoff within its recent-move memory means the controller is hunting
   across a workload boundary; it degrades rather than thrash.
4. **Failsafe** — degrading latches the controller: it reverts to the
   last knob state that met every SLO (initially the baseline) and
   refuses further moves until :meth:`SLOController.reset`.  Hosts emit
   ``ControllerDegraded`` + a ``source="failsafe"`` ``ConfigChange``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .knobs import KnobBounds, KnobState, clamp_step, project_shares
from .slo import SLOError, SLOSpec

__all__ = [
    "ClassWindow",
    "WindowObservation",
    "ControlSettings",
    "Decision",
    "SLOController",
    "find_violations",
]


@dataclass(frozen=True)
class ClassWindow:
    """One class's QoS inside one control window.

    ``delay_mean``/``delay_p95`` are statistics of the requests satisfied
    in the window (``nan`` when none were — that is *absence of
    evidence*, not corruption, and never trips the NaN watchdog).
    ``blocking`` is the blocked fraction of the window's ``arrivals``.
    """

    arrivals: int
    satisfied: int
    blocked: int
    delay_mean: float
    delay_p95: float
    blocking: float

    @property
    def corrupt(self) -> bool:
        """Non-finite statistics despite data: the NaN-watchdog predicate."""
        if self.arrivals < 0 or self.satisfied < 0 or self.blocked < 0:
            return True
        if self.satisfied > 0 and not (
            math.isfinite(self.delay_mean) and math.isfinite(self.delay_p95)
        ):
            return True
        if self.arrivals > 0 and not math.isfinite(self.blocking):
            return True
        return False


@dataclass(frozen=True)
class WindowObservation:
    """Windowed per-class QoS, the controller's only input."""

    window: int
    time: float
    classes: tuple[tuple[str, ClassWindow], ...]

    def for_class(self, name: str) -> ClassWindow:
        for label, stats in self.classes:
            if label == name:
                return stats
        raise KeyError(f"class {name!r} not observed; have {[n for n, _ in self.classes]}")


@dataclass(frozen=True)
class ControlSettings:
    """Hysteresis and watchdog tuning of one controller instance."""

    engage_windows: int = 2
    release_windows: int = 4
    cooldown_windows: int = 2
    flip_limit: int = 3
    flip_memory: int = 8

    def __post_init__(self) -> None:
        if self.engage_windows < 1:
            raise ValueError(f"engage_windows must be >= 1, got {self.engage_windows}")
        if self.release_windows < 1:
            raise ValueError(f"release_windows must be >= 1, got {self.release_windows}")
        if self.cooldown_windows < 0:
            raise ValueError(f"cooldown_windows must be >= 0, got {self.cooldown_windows}")
        if self.flip_limit < 1:
            raise ValueError(f"flip_limit must be >= 1, got {self.flip_limit}")
        if self.flip_memory < 2 * self.flip_limit:
            raise ValueError(
                f"flip_memory must be >= 2*flip_limit, got {self.flip_memory}"
            )


@dataclass(frozen=True)
class Decision:
    """What the controller concluded for one window.

    ``applied`` is the complete knob state to install (``None`` = hold
    everything).  ``violations`` lists the ``class:metric`` pairs over
    target this window; ``degraded`` marks a failsafe/latched decision.
    """

    window: int
    time: float
    applied: Optional[KnobState]
    reason: str
    violations: tuple[str, ...] = ()
    degraded: bool = False


def find_violations(spec: SLOSpec, obs: WindowObservation) -> tuple[str, ...]:
    """The ``class:metric`` pairs of ``obs`` that exceed their SLO targets.

    The controller's violation predicate, exposed so experiments can
    score *uncontrolled* runs with exactly the same yardstick.  Classes
    outside the spec are unconstrained; non-finite statistics (no data
    in the window) never count as violations.
    """
    found: list[str] = []
    for name, stats in obs.classes:
        try:
            slo = spec.for_class(name)
        except SLOError:
            continue
        if (
            slo.delay_mean is not None
            and math.isfinite(stats.delay_mean)
            and stats.delay_mean > slo.delay_mean
        ):
            found.append(f"{name}:delay_mean")
        if (
            slo.delay_p95 is not None
            and math.isfinite(stats.delay_p95)
            and stats.delay_p95 > slo.delay_p95
        ):
            found.append(f"{name}:delay_p95")
        if (
            slo.blocking is not None
            and math.isfinite(stats.blocking)
            and stats.blocking > slo.blocking
        ):
            found.append(f"{name}:blocking")
    return tuple(found)


@dataclass
class _Streaks:
    """Mutable hysteresis counters (one violation streak, one clean)."""

    violating: int = 0
    clean: int = 0
    cooldown: int = 0


class SLOController:
    """Deterministic feedback policy over declarative SLO targets.

    Parameters
    ----------
    spec:
        Per-class targets; class order must match ``baseline.shares``.
    bounds:
        Knob intervals, step limits and the share guardrail.
    baseline:
        The static configuration the run started with — the initial
        last-known-good state the failsafe reverts to.
    settings:
        Hysteresis/watchdog tuning.
    """

    def __init__(
        self,
        spec: SLOSpec,
        bounds: KnobBounds,
        baseline: KnobState,
        settings: ControlSettings = ControlSettings(),
    ) -> None:
        if len(spec.class_names) != len(baseline.shares):
            raise ValueError(
                f"spec names {list(spec.class_names)} do not align with "
                f"{len(baseline.shares)} baseline shares"
            )
        if not bounds.admits(baseline):
            raise ValueError(
                f"baseline {baseline} violates bounds/guardrail {bounds}"
            )
        self.spec = spec
        self.bounds = bounds
        self.settings = settings
        self.baseline = baseline
        self._knobs = baseline
        self._last_good = baseline
        self._streaks = _Streaks()
        self._moves: list[int] = []  # cutoff step signs, oscillation memory
        self._degraded = False
        self._degraded_reason: Optional[str] = None
        self._changes = 0
        self._windows = 0
        #: Full decision log, one entry per observed window.
        self.decisions: list[Decision] = []

    # -- introspection ---------------------------------------------------------
    @property
    def knobs(self) -> KnobState:
        """The knob state the controller currently wants installed."""
        return self._knobs

    @property
    def degraded(self) -> bool:
        """Whether the watchdog latched the controller into failsafe."""
        return self._degraded

    @property
    def degraded_reason(self) -> Optional[str]:
        return self._degraded_reason

    @property
    def changes(self) -> int:
        """Number of knob states this controller has asked hosts to apply."""
        return self._changes

    @property
    def windows(self) -> int:
        """Number of windows observed (plus stall notifications)."""
        return self._windows

    def status(self) -> dict[str, object]:
        """JSON-ready status for ``/control`` and ``repro control``."""
        return {
            "degraded": self._degraded,
            "degraded_reason": self._degraded_reason,
            "windows": self._windows,
            "changes": self._changes,
            "knobs": self._knobs.to_dict(),
            "last_good": self._last_good.to_dict(),
            "baseline": self.baseline.to_dict(),
            "violation_streak": self._streaks.violating,
            "clean_streak": self._streaks.clean,
            "cooldown": self._streaks.cooldown,
        }

    # -- the update ------------------------------------------------------------
    def observe(self, obs: WindowObservation) -> Decision:
        """Consume one window and decide; see the module docstring order."""
        self._windows += 1
        if self._degraded:
            decision = Decision(
                window=obs.window,
                time=obs.time,
                applied=None,
                reason=f"latched:{self._degraded_reason}",
                degraded=True,
            )
            self.decisions.append(decision)
            return decision

        for name, stats in obs.classes:
            if stats.corrupt:
                return self._degrade(obs, f"nan-observation:{name}")

        violations = self._violations(obs)
        streaks = self._streaks
        if violations:
            streaks.violating += 1
            streaks.clean = 0
        else:
            streaks.clean += 1
            streaks.violating = 0
            # A fully clean window proves the current knobs meet every
            # SLO: remember them as the failsafe target.
            self._last_good = self._knobs

        if streaks.cooldown > 0:
            streaks.cooldown -= 1
            decision = Decision(
                window=obs.window,
                time=obs.time,
                applied=None,
                reason="cooldown",
                violations=violations,
            )
            self.decisions.append(decision)
            return decision

        if violations and streaks.violating >= self.settings.engage_windows:
            return self._tighten(obs, violations)
        if not violations and streaks.clean >= self.settings.release_windows:
            return self._relax(obs)

        decision = Decision(
            window=obs.window,
            time=obs.time,
            applied=None,
            reason="hold",
            violations=violations,
        )
        self.decisions.append(decision)
        return decision

    def note_stall(self, window: int, time: float) -> Decision:
        """Host-side watchdog: the control loop missed its heartbeat.

        Degrades exactly like an in-band watchdog trip, so a killed or
        hung controller task fails safe to the last-known-good knobs.
        """
        self._windows += 1
        if self._degraded:
            decision = Decision(
                window=window,
                time=time,
                applied=None,
                reason=f"latched:{self._degraded_reason}",
                degraded=True,
            )
            self.decisions.append(decision)
            return decision
        return self._degrade(
            WindowObservation(window=window, time=time, classes=()), "stalled"
        )

    def reset(self) -> None:
        """Re-arm a degraded controller from its last-known-good state.

        An operator action (``POST /control/reset``), never automatic —
        a controller that degraded once must not silently resume.
        """
        self._degraded = False
        self._degraded_reason = None
        self._streaks = _Streaks()
        self._moves = []
        self._knobs = self._last_good

    # -- internals -------------------------------------------------------------
    def _violations(self, obs: WindowObservation) -> tuple[str, ...]:
        return find_violations(self.spec, obs)

    def _degrade(self, obs: WindowObservation, reason: str) -> Decision:
        self._degraded = True
        self._degraded_reason = reason
        fallback = self._last_good
        applied = fallback if fallback != self._knobs else None
        self._knobs = fallback
        decision = Decision(
            window=obs.window,
            time=obs.time,
            applied=applied,
            reason=f"failsafe:{reason}",
            degraded=True,
        )
        self.decisions.append(decision)
        return decision

    def _propose(self, violations: tuple[str, ...]) -> KnobState:
        """Deterministic escalation policy for a persistent violation set.

        * any ``blocking`` violation → grow the push set (cutoff up) so
          fewer items compete for pull bandwidth, and shift share toward
          the blocked classes;
        * delay-only violations → shrink the push set (cutoff down, a
          shorter broadcast cycle) and shift share toward the slow
          classes;
        * α steps toward priority (down) when the *top* class is among
          the violators, toward stretch (up) when only lower classes are
          — always one bounded step, always inside the guardrail.
        """
        bounds = self.bounds
        current = self._knobs
        names = self.spec.class_names
        violators = {v.split(":", 1)[0] for v in violations}
        blocking = any(v.endswith(":blocking") for v in violations)

        if blocking:
            cutoff = min(current.cutoff + bounds.cutoff_step, bounds.cutoff_max)
        else:
            cutoff = max(current.cutoff - bounds.cutoff_step, bounds.cutoff_min)

        if names and names[0] in violators:
            alpha_target = current.alpha - bounds.alpha_step
        elif violators:
            alpha_target = current.alpha + bounds.alpha_step
        else:
            alpha_target = current.alpha
        alpha = clamp_step(
            current.alpha, alpha_target, bounds.alpha_step, bounds.alpha_min, bounds.alpha_max
        )

        donors = [i for i, name in enumerate(names) if name not in violators]
        takers = [i for i, name in enumerate(names) if name in violators]
        proposal = list(current.shares)
        if takers and donors:
            give = bounds.share_step * len(takers) / len(donors)
            for i in donors:
                proposal[i] -= give
            for i in takers:
                proposal[i] += bounds.share_step
        shares = project_shares(current.shares, tuple(proposal), bounds)
        return KnobState(cutoff=cutoff, alpha=alpha, shares=shares)

    def _tighten(self, obs: WindowObservation, violations: tuple[str, ...]) -> Decision:
        proposed = self._propose(violations)
        if not proposed.finite or not self.bounds.admits(proposed):
            return self._degrade(obs, "nan-knob")
        if proposed == self._knobs:
            decision = Decision(
                window=obs.window,
                time=obs.time,
                applied=None,
                reason="saturated",
                violations=violations,
            )
            self.decisions.append(decision)
            return decision
        direction = (proposed.cutoff > self._knobs.cutoff) - (
            proposed.cutoff < self._knobs.cutoff
        )
        if direction and self._oscillating(direction):
            return self._degrade(obs, "oscillation")
        return self._apply(obs, proposed, "tighten:" + ",".join(violations), violations)

    def _relax(self, obs: WindowObservation) -> Decision:
        """Step every knob one bounded move back toward the baseline."""
        bounds = self.bounds
        current = self._knobs
        base = self.baseline
        if current == base:
            decision = Decision(
                window=obs.window, time=obs.time, applied=None, reason="steady"
            )
            self.decisions.append(decision)
            return decision
        cutoff = int(
            clamp_step(
                float(current.cutoff),
                float(base.cutoff),
                float(bounds.cutoff_step),
                float(bounds.cutoff_min),
                float(bounds.cutoff_max),
            )
        )
        alpha = clamp_step(
            current.alpha, base.alpha, bounds.alpha_step, bounds.alpha_min, bounds.alpha_max
        )
        shares = project_shares(current.shares, base.shares, bounds)
        proposed = KnobState(cutoff=cutoff, alpha=alpha, shares=shares)
        if proposed == current:
            decision = Decision(
                window=obs.window, time=obs.time, applied=None, reason="steady"
            )
            self.decisions.append(decision)
            return decision
        # Relaxation is rate-limited and monotone toward baseline, so it
        # is exempt from the oscillation memory (it cannot hunt).
        return self._apply(obs, proposed, "relax", ())

    def _apply(
        self,
        obs: WindowObservation,
        proposed: KnobState,
        reason: str,
        violations: tuple[str, ...],
    ) -> Decision:
        direction = (proposed.cutoff > self._knobs.cutoff) - (
            proposed.cutoff < self._knobs.cutoff
        )
        if direction:
            self._moves.append(direction)
            if len(self._moves) > self.settings.flip_memory:
                del self._moves[0]
        self._knobs = proposed
        self._changes += 1
        self._streaks.cooldown = self.settings.cooldown_windows
        self._streaks.violating = 0
        self._streaks.clean = 0
        decision = Decision(
            window=obs.window,
            time=obs.time,
            applied=proposed,
            reason=reason,
            violations=violations,
        )
        self.decisions.append(decision)
        return decision

    def _oscillating(self, next_direction: int) -> bool:
        """Would recording ``next_direction`` cross the flip limit?"""
        moves = [*self._moves, next_direction][-self.settings.flip_memory :]
        flips = sum(
            1 for a, b in zip(moves, moves[1:]) if a != b
        )
        return flips >= self.settings.flip_limit
