"""Declarative per-class SLO specifications for the closed-loop controller.

An SLO spec names, for each service class, the ceilings the control plane
must defend: windowed mean delay, windowed 95th-percentile delay and
windowed blocking fraction.  Every ceiling is optional — an omitted (or
infinite) target places no constraint, so a spec built by
:meth:`SLOSpec.unbounded` makes the controller a provable no-op (pinned by
the bit-identity property suite).

Specs round-trip through plain JSON dictionaries::

    {"classes": {"A": {"delay_p95": 30.0, "blocking": 0.02},
                 "B": {"delay_p95": 60.0},
                 "C": {"blocking": 0.10}}}

so operators hand the same file to ``repro control``, ``repro sweep
--slo`` and ``repro serve --slo``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

__all__ = ["SLOError", "ClassSLO", "SLOSpec", "load_slo"]


class SLOError(ValueError):
    """Raised for malformed SLO specifications."""


def _check_ceiling(name: str, value: Optional[float]) -> Optional[float]:
    if value is None:
        return None
    ceiling = float(value)
    if math.isnan(ceiling) or ceiling <= 0:
        raise SLOError(f"{name} ceiling must be > 0 (or omitted), got {value!r}")
    if math.isinf(ceiling):
        return None  # an infinite ceiling is no ceiling
    return ceiling


@dataclass(frozen=True)
class ClassSLO:
    """Ceilings for one service class; ``None`` means unconstrained.

    ``delay_mean`` and ``delay_p95`` bound the windowed delay statistics
    of satisfied requests; ``blocking`` bounds the windowed fraction of
    arrivals refused at bandwidth admission.
    """

    delay_mean: Optional[float] = None
    delay_p95: Optional[float] = None
    blocking: Optional[float] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "delay_mean", _check_ceiling("delay_mean", self.delay_mean))
        object.__setattr__(self, "delay_p95", _check_ceiling("delay_p95", self.delay_p95))
        blocking = _check_ceiling("blocking", self.blocking)
        if blocking is not None and blocking > 1:
            raise SLOError(f"blocking ceiling is a fraction in (0, 1], got {blocking}")
        object.__setattr__(self, "blocking", blocking)

    @property
    def unbounded(self) -> bool:
        """True when this class carries no constraint at all."""
        return self.delay_mean is None and self.delay_p95 is None and self.blocking is None

    def to_dict(self) -> dict[str, float]:
        """JSON-ready form; unconstrained dimensions are omitted."""
        record: dict[str, float] = {}
        if self.delay_mean is not None:
            record["delay_mean"] = self.delay_mean
        if self.delay_p95 is not None:
            record["delay_p95"] = self.delay_p95
        if self.blocking is not None:
            record["blocking"] = self.blocking
        return record

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "ClassSLO":
        """Build from a JSON dictionary; unknown keys fail loudly."""
        unknown = set(record) - {"delay_mean", "delay_p95", "blocking"}
        if unknown:
            raise SLOError(
                f"unknown SLO fields {sorted(unknown)}; "
                "expected delay_mean / delay_p95 / blocking"
            )
        return cls(
            delay_mean=record.get("delay_mean"),
            delay_p95=record.get("delay_p95"),
            blocking=record.get("blocking"),
        )


@dataclass(frozen=True)
class SLOSpec:
    """Per-class SLO targets, rank order (index 0 = most important class)."""

    targets: tuple[tuple[str, ClassSLO], ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise SLOError("an SLO spec needs at least one class")
        names = [name for name, _ in self.targets]
        if len(set(names)) != len(names):
            raise SLOError(f"duplicate class names in SLO spec: {names}")

    @property
    def class_names(self) -> tuple[str, ...]:
        """Class labels in rank order."""
        return tuple(name for name, _ in self.targets)

    def for_class(self, name: str) -> ClassSLO:
        """The targets of one class (:class:`SLOError` if unknown)."""
        for label, slo in self.targets:
            if label == name:
                return slo
        raise SLOError(f"class {name!r} not in SLO spec {list(self.class_names)}")

    @property
    def unbounded(self) -> bool:
        """True when no class carries any constraint (controller no-op)."""
        return all(slo.unbounded for _, slo in self.targets)

    @classmethod
    def unbounded_for(cls, class_names: tuple[str, ...] | list[str]) -> "SLOSpec":
        """A spec with infinitely wide targets for every named class."""
        return cls(targets=tuple((name, ClassSLO()) for name in class_names))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the format ``from_dict`` accepts)."""
        return {"classes": {name: slo.to_dict() for name, slo in self.targets}}

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "SLOSpec":
        """Build from a JSON dictionary; see the module docstring format."""
        classes = record.get("classes")
        if not isinstance(classes, Mapping) or not classes:
            raise SLOError('an SLO spec needs a non-empty "classes" mapping')
        targets = tuple(
            (str(name), ClassSLO.from_dict(fields)) for name, fields in classes.items()
        )
        return cls(targets=targets)


def load_slo(path: str | Path) -> SLOSpec:
    """Read an SLO spec from a JSON file; errors carry the file name."""
    try:
        record = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SLOError(f"cannot read SLO spec {path}: {exc}") from exc
    try:
        return SLOSpec.from_dict(record)
    except SLOError as exc:
        raise SLOError(f"{path}: {exc}") from exc
