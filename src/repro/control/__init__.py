"""``repro.control`` — the closed-loop SLO control plane.

Declarative per-class SLO targets (:mod:`~repro.control.slo`), bounded
knobs with a provable monotone guardrail (:mod:`~repro.control.knobs`),
a pure hysteretic feedback controller with NaN/stall/oscillation
watchdogs and last-known-good failsafe
(:mod:`~repro.control.controller`), and the DES bridge that retunes any
of the three engines online (:mod:`~repro.control.loop`).

The live service twin lives in :mod:`repro.service.core`; both hosts
drive the *same* controller object, so every property the Hypothesis
suite pins for the simulator holds verbatim in production.
"""

from .controller import (
    ClassWindow,
    ControlSettings,
    Decision,
    SLOController,
    WindowObservation,
    find_violations,
)
from .knobs import KnobBounds, KnobState, clamp_step, project_shares
from .loop import (
    ControlLoop,
    MetricsWindower,
    WindowRecorder,
    build_controlled_system,
    default_bounds,
    empirical_percentile,
    observations_from_trace,
)
from .slo import ClassSLO, SLOError, SLOSpec, load_slo

__all__ = [
    "ClassSLO",
    "ClassWindow",
    "ControlLoop",
    "ControlSettings",
    "Decision",
    "KnobBounds",
    "KnobState",
    "MetricsWindower",
    "SLOController",
    "SLOError",
    "SLOSpec",
    "WindowObservation",
    "WindowRecorder",
    "build_controlled_system",
    "clamp_step",
    "default_bounds",
    "empirical_percentile",
    "find_violations",
    "load_slo",
    "observations_from_trace",
    "project_shares",
]
