"""DES-side control loop: windowed metrics in, engine reconfigurations out.

:class:`ControlLoop` runs as a simulation process on any of the three
engines (reference, fast, population): every ``window`` simulated time
units it differences the run's :class:`~repro.sim.metrics.MetricsCollector`
into a :class:`~repro.control.controller.WindowObservation`, feeds the
pure :class:`~repro.control.controller.SLOController` and applies whatever
knob state the decision asks for through the engines' reconfiguration
hooks (``reconfigure_cutoff`` / ``reconfigure_alpha`` /
``reconfigure_bandwidth``).

Windowed delay statistics come from exact moment deltas of the per-class
tallies (count/Σx/Σx² subtraction), so the observation path is identical
on all three engines; the windowed p95 is the Gaussian tail estimate
``mean + 1.645·σ`` of those moments.  The live service layer observes
*empirical* percentiles instead — see ``docs/control.md`` for the engine
support matrix.

Atomic apply: a knob state is installed between simulation events, with
no time passing, so a reconfiguration can never interleave with a
transmission.  The population engine additionally refuses cutoff moves
while a push slot is on air; the loop defers the whole knob state to the
next window boundary in that case (``pending`` in the status), keeping
the application all-or-nothing.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Iterator, Optional

from ..obs.events import ConfigChange, ControllerDegraded
from .controller import ClassWindow, ControlSettings, Decision, SLOController, WindowObservation
from .knobs import KnobBounds, KnobState
from .slo import SLOSpec

if TYPE_CHECKING:
    from ..sim.system import HybridSystem

__all__ = [
    "ControlLoop",
    "MetricsWindower",
    "WindowRecorder",
    "build_controlled_system",
    "default_bounds",
    "empirical_percentile",
    "observations_from_trace",
]

#: One-sided Gaussian 95% quantile for the moment-based p95 estimate.
_Z95 = 1.6448536269514722


def _tally_moments(tally: Any) -> tuple[int, float, float]:
    """``(n, Σx, Σx²)`` of one :class:`~repro.des.monitor.Tally`."""
    n = int(tally.count)
    if n == 0:
        return 0, 0.0, 0.0
    mean = float(tally.mean)
    if n == 1:
        return 1, mean, mean * mean
    m2 = float(tally.variance) * (n - 1)
    total = mean * n
    return n, total, m2 + n * mean * mean


def _window_stats(
    before: tuple[int, float, float], after: tuple[int, float, float]
) -> tuple[int, float, float]:
    """``(n, mean, p95-estimate)`` of the observations between snapshots."""
    n = after[0] - before[0]
    if n <= 0:
        return 0, math.nan, math.nan
    total = after[1] - before[1]
    sq_total = after[2] - before[2]
    mean = total / n
    if n == 1:
        return 1, mean, mean
    variance = max(sq_total - total * mean, 0.0) / (n - 1)
    return n, mean, mean + _Z95 * math.sqrt(variance)


class MetricsWindower:
    """Windowed per-class QoS differenced from a system's metrics.

    The *measurement instrument* shared by :class:`ControlLoop` (which
    feeds a controller) and :class:`WindowRecorder` (which only records):
    each :meth:`observe` call differences the run's
    :class:`~repro.sim.metrics.MetricsCollector` moment tallies against
    the previous call and emits one
    :class:`~repro.control.controller.WindowObservation`.  Identical on
    all three engines — the per-window p95 is the Gaussian tail estimate
    of the moment deltas.
    """

    def __init__(self, system: "HybridSystem") -> None:
        self.system = system
        self._names = list(system.config.class_names())
        collector = system.metrics
        self._prev_delay = {
            name: _tally_moments(collector.delay_by_class[name]) for name in self._names
        }
        self._prev_counts = {
            name: (
                collector.arrivals_by_class[name].count,
                collector.blocked_by_class[name].count,
            )
            for name in self._names
        }
        self._windows_seen = 0

    def observe(self) -> WindowObservation:
        """One window: difference the tallies since the previous call."""
        collector = self.system.metrics
        classes: list[tuple[str, ClassWindow]] = []
        for name in self._names:
            now_delay = _tally_moments(collector.delay_by_class[name])
            satisfied, mean, p95 = _window_stats(self._prev_delay[name], now_delay)
            arrivals_now = collector.arrivals_by_class[name].count
            blocked_now = collector.blocked_by_class[name].count
            arrivals_prev, blocked_prev = self._prev_counts[name]
            arrivals = arrivals_now - arrivals_prev
            blocked = blocked_now - blocked_prev
            blocking = blocked / arrivals if arrivals > 0 else math.nan
            classes.append(
                (
                    name,
                    ClassWindow(
                        arrivals=arrivals,
                        satisfied=satisfied,
                        blocked=blocked,
                        delay_mean=mean,
                        delay_p95=p95,
                        blocking=blocking,
                    ),
                )
            )
            self._prev_delay[name] = now_delay
            self._prev_counts[name] = (arrivals_now, blocked_now)
        obs = WindowObservation(
            window=self._windows_seen,
            time=float(self.system.env.now),
            classes=tuple(classes),
        )
        self._windows_seen += 1
        return obs


class WindowRecorder:
    """Passive windowed QoS observer — the controller-less twin.

    Attaches the same :class:`MetricsWindower` instrument to a system
    *without* a controller, recording one observation per window into
    :attr:`observations`.  Experiments use it to score static (and
    oracle) runs for SLO attainment with exactly the yardstick the
    closed-loop run is measured by
    (:func:`~repro.control.controller.find_violations` over the same
    windowing), so a comparison never mixes measurement methods.
    """

    def __init__(self, system: "HybridSystem", window: float) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        self.window = float(window)
        self.observations: list[WindowObservation] = []
        self._windower = MetricsWindower(system)
        self._env = system.env
        self._process = system.env.process(self._run())

    def _run(self) -> Iterator[Any]:
        while True:
            yield self._env.timeout(self.window)
            self.observations.append(self._windower.observe())


class ControlLoop:
    """Closed-loop retuning of one :class:`~repro.sim.system.HybridSystem`.

    Parameters
    ----------
    system:
        The (not yet run) system to control; any engine.
    controller:
        The pure policy object; its baseline must match the system's
        static configuration.
    window:
        Control window in simulated time units.
    """

    def __init__(
        self,
        system: "HybridSystem",
        controller: SLOController,
        window: float,
    ) -> None:
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        config = system.config
        baseline = controller.baseline
        shares = tuple(spec.bandwidth_share for spec in config.class_specs)
        if (
            baseline.cutoff != config.cutoff
            or baseline.alpha != config.alpha
            or any(abs(a - b) > 1e-9 for a, b in zip(baseline.shares, shares))
        ):
            raise ValueError(
                f"controller baseline {baseline} does not match the system "
                f"config (cutoff={config.cutoff}, alpha={config.alpha}, "
                f"shares={shares})"
            )
        self.system = system
        self.controller = controller
        self.window = float(window)
        self.applied = baseline
        self.seq = 0
        #: Knob state whose installation was deferred past an on-air
        #: push slot (population engine); retried next boundary.
        self.pending: Optional[tuple[KnobState, str, str]] = None
        self._windower = MetricsWindower(system)
        self._process = system.env.process(self._run())

    # -- observation -----------------------------------------------------------
    def _observe(self) -> WindowObservation:
        return self._windower.observe()

    # -- the process -----------------------------------------------------------
    def _run(self) -> Iterator[Any]:
        while True:
            yield self.system.env.timeout(self.window)
            self._tick()

    def _tick(self) -> None:
        if self.pending is not None:
            knobs, source, reason = self.pending
            self.pending = None
            self._apply(knobs, source, reason)
        was_degraded = self.controller.degraded
        decision = self.controller.observe(self._observe())
        if decision.degraded and not was_degraded:
            self._emit_degraded(decision)
        if decision.applied is not None:
            source = "failsafe" if decision.degraded else "controller"
            self._apply(decision.applied, source, decision.reason)

    # -- application -----------------------------------------------------------
    def _emit_degraded(self, decision: Decision) -> None:
        fallback = decision.applied if decision.applied is not None else self.applied
        tracer = self.system.tracer
        if tracer is not None:
            tracer.emit(
                ControllerDegraded(
                    time=float(self.system.env.now),
                    reason=self.controller.degraded_reason or "unknown",
                    fallback_cutoff=fallback.cutoff,
                    fallback_alpha=fallback.alpha,
                    fallback_shares=fallback.shares,
                )
            )

    def _apply(self, knobs: KnobState, source: str, reason: str) -> None:
        if knobs == self.applied:
            return
        system = self.system
        server = system.server
        old = self.applied
        if knobs.cutoff != old.cutoff:
            # Population engine: moving the split mid-slot is refused;
            # defer the whole state so the apply stays all-or-nothing.
            sealed = getattr(server, "_push_sealed", None)
            if sealed is not None:
                self.pending = (knobs, source, reason)
                return
            from ..schedulers.registry import make_push_scheduler

            push = make_push_scheduler(
                system.config.push_scheduler, system.catalog, knobs.cutoff
            )
            server.reconfigure_cutoff(knobs.cutoff, push)
            system.push_scheduler = push
        if knobs.alpha != old.alpha:
            server.reconfigure_alpha(knobs.alpha)
        if tuple(knobs.shares) != tuple(old.shares):
            total = float(system.config.total_bandwidth)
            server.reconfigure_bandwidth([s * total for s in knobs.shares])
        self.applied = knobs
        self.seq += 1
        tracer = system.tracer
        if tracer is not None:
            tracer.emit(
                ConfigChange(
                    time=float(system.env.now),
                    seq=self.seq,
                    source=source,
                    reason=reason,
                    old_cutoff=old.cutoff,
                    new_cutoff=knobs.cutoff,
                    old_alpha=old.alpha,
                    new_alpha=knobs.alpha,
                    old_shares=old.shares,
                    new_shares=knobs.shares,
                )
            )

    def status(self) -> dict[str, object]:
        """Loop + controller status (mirrors the service ``/control``)."""
        record = self.controller.status()
        record.update(
            applied=self.applied.to_dict(),
            seq=self.seq,
            window=self.window,
            pending=self.pending is not None,
        )
        return record


def default_bounds(
    config: Any, pull_mode: str = "serial", alpha_tunable: bool = True
) -> KnobBounds:
    """Sensible knob bounds derived from one :class:`HybridConfig`.

    The cutoff may roam the whole catalog (floor 1 in concurrent pull
    mode, which needs a non-empty push set); α is frozen at the config
    value when the pull scheduler has no alpha knob; the share budget is
    exactly what the static config already committed.
    """
    num_items = int(config.num_items)
    shares = tuple(float(spec.bandwidth_share) for spec in config.class_specs)
    alpha = float(config.alpha)
    return KnobBounds(
        cutoff_min=1 if pull_mode == "concurrent" else 0,
        cutoff_max=num_items,
        cutoff_step=max(1, num_items // 20),
        alpha_min=0.0 if alpha_tunable else alpha,
        alpha_max=1.0 if alpha_tunable else alpha,
        alpha_step=0.1,
        share_floor=min(0.02, min(shares)),
        share_step=0.05,
        share_budget=float(sum(shares)),
    )


def build_controlled_system(
    config: Any,
    slo: SLOSpec,
    seed: int = 0,
    warmup: float = 0.0,
    pull_mode: str = "serial",
    engine: str = "reference",
    window: float = 100.0,
    bounds: Optional[KnobBounds] = None,
    settings: Optional[ControlSettings] = None,
    tracer: Any = None,
    arrivals: Any = None,
    record_qos: bool = False,
) -> tuple["HybridSystem", ControlLoop]:
    """A :class:`HybridSystem` with a closed-loop controller attached.

    Returns ``(system, loop)``; run with ``system.run(horizon)`` and read
    the decision log from ``loop.controller.decisions``.
    """
    from ..sim.system import HybridSystem

    system = HybridSystem(
        config,
        seed=seed,
        warmup=warmup,
        pull_mode=pull_mode,  # type: ignore[arg-type]
        arrivals=arrivals,
        tracer=tracer,
        engine=engine,  # type: ignore[arg-type]
        record_qos=record_qos,
    )
    alpha_tunable = hasattr(system.pull_scheduler, "set_alpha")
    if bounds is None:
        bounds = default_bounds(config, pull_mode=pull_mode, alpha_tunable=alpha_tunable)
    baseline = KnobState(
        cutoff=int(config.cutoff),
        alpha=float(config.alpha),
        shares=tuple(float(spec.bandwidth_share) for spec in config.class_specs),
    )
    controller = SLOController(
        spec=slo,
        bounds=bounds,
        baseline=baseline,
        settings=settings if settings is not None else ControlSettings(),
    )
    loop = ControlLoop(system, controller, window=window)
    return system, loop


def empirical_percentile(values: list[float], q: float) -> float:
    """Linear-interpolation percentile (numpy's default method).

    Shared by trace replay and the live service's observation path, both
    of which hold every delay sample of a window (unlike the engines'
    moment-based estimate).
    """
    if not values:
        return math.nan
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def observations_from_trace(trace: Any, num_windows: int = 24) -> list[WindowObservation]:
    """Windowed observations reconstructed from a recorded trace.

    The offline twin of the live observation path: ``repro control
    replay`` feeds these to a controller to show the decisions it *would*
    have taken on a recorded run.  Delay percentiles here are empirical
    (the trace has every satisfaction), unlike the engines' moment-based
    estimate.
    """
    if num_windows < 1:
        raise ValueError(f"num_windows must be >= 1, got {num_windows}")
    horizon = trace.meta.get("horizon")
    if horizon is None:
        horizon = max(
            (float(getattr(e, "end", e.time)) for e in trace.events), default=1.0
        )
    horizon = float(horizon)
    names = [str(n) for n in trace.meta.get("class_names", [])]
    if not names:
        ranks = {
            int(e.class_rank) for e in trace.events if hasattr(e, "class_rank")
        }
        names = [f"class-{rank}" for rank in sorted(ranks)]
    width = horizon / num_windows

    def window_of(time: float) -> int:
        index = int(time / width)
        return min(max(index, 0), num_windows - 1)

    arrivals = [[0] * num_windows for _ in names]
    blocked = [[0] * num_windows for _ in names]
    delays: list[list[list[float]]] = [
        [[] for _ in range(num_windows)] for _ in names
    ]
    for event in trace.events:
        kind = event.kind
        if kind == "request_arrived":
            if event.class_rank < len(names):
                arrivals[event.class_rank][window_of(event.time)] += 1
        elif kind == "request_blocked":
            if event.class_rank < len(names):
                blocked[event.class_rank][window_of(event.time)] += 1
        elif kind == "request_satisfied":
            if event.class_rank < len(names):
                delays[event.class_rank][window_of(event.time)].append(
                    float(event.delay)
                )
    observations: list[WindowObservation] = []
    for index in range(num_windows):
        classes: list[tuple[str, ClassWindow]] = []
        for rank, name in enumerate(names):
            samples = delays[rank][index]
            arrived = arrivals[rank][index]
            blocked_n = blocked[rank][index]
            classes.append(
                (
                    name,
                    ClassWindow(
                        arrivals=arrived,
                        satisfied=len(samples),
                        blocked=blocked_n,
                        delay_mean=(
                            sum(samples) / len(samples) if samples else math.nan
                        ),
                        delay_p95=empirical_percentile(samples, 95.0),
                        blocking=blocked_n / arrived if arrived > 0 else math.nan,
                    ),
                )
            )
        observations.append(
            WindowObservation(
                window=index, time=(index + 1) * width, classes=tuple(classes)
            )
        )
    return observations
