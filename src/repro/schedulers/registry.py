"""Name-based factories for pull and push schedulers.

The :class:`~repro.core.config.HybridConfig` refers to schedulers by
string name; this registry turns those names into policy objects.  Third
parties can register additional policies via :func:`register_pull` /
:func:`register_push`.
"""

from __future__ import annotations

from typing import Callable

from ..workload.items import ItemCatalog
from .base import PullScheduler, PushScheduler
from .broadcast_disks import BroadcastDisksScheduler
from .fcfs import FCFSScheduler
from .flat import FlatScheduler
from .importance_factor import ExpectedImportanceScheduler, ImportanceFactorScheduler
from .mrf import MRFScheduler
from .priority import PriorityScheduler
from .rxw import RxWScheduler
from .srr import SquareRootRuleScheduler
from .stretch import StretchScheduler

__all__ = [
    "make_pull_scheduler",
    "make_push_scheduler",
    "register_pull",
    "register_push",
    "pull_scheduler_names",
    "push_scheduler_names",
]

#: Pull factories take the Eq. 1 weight ``alpha`` (ignored by baselines).
_PULL_FACTORIES: dict[str, Callable[[float], PullScheduler]] = {
    "importance": lambda alpha: ImportanceFactorScheduler(alpha=alpha),
    "importance-normalized": lambda alpha: ImportanceFactorScheduler(alpha=alpha, normalize=True),
    "importance-expected": lambda alpha: ExpectedImportanceScheduler(alpha=alpha),
    "fcfs": lambda alpha: FCFSScheduler(),
    "mrf": lambda alpha: MRFScheduler(),
    "stretch": lambda alpha: StretchScheduler(),
    "rxw": lambda alpha: RxWScheduler(),
    "priority": lambda alpha: PriorityScheduler(),
}

#: Push factories take ``(catalog, cutoff)``.
_PUSH_FACTORIES: dict[str, Callable[[ItemCatalog, int], PushScheduler]] = {
    "flat": FlatScheduler,
    "disks": BroadcastDisksScheduler,
    "srr": SquareRootRuleScheduler,
}


def make_pull_scheduler(name: str, alpha: float = 0.75) -> PullScheduler:
    """Instantiate a pull scheduler by registry name.

    ``alpha`` is forwarded to the importance-factor family and ignored by
    the single-criterion baselines.
    """
    try:
        factory = _PULL_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown pull scheduler {name!r}; known: {sorted(_PULL_FACTORIES)}"
        ) from None
    return factory(alpha)


def make_push_scheduler(name: str, catalog: ItemCatalog, cutoff: int) -> PushScheduler:
    """Instantiate a push scheduler by registry name."""
    try:
        factory = _PUSH_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown push scheduler {name!r}; known: {sorted(_PUSH_FACTORIES)}"
        ) from None
    return factory(catalog, cutoff)


def register_pull(name: str, factory: Callable[[float], PullScheduler]) -> None:
    """Register a custom pull-scheduler factory under ``name``."""
    if name in _PULL_FACTORIES:
        raise ValueError(f"pull scheduler {name!r} already registered")
    _PULL_FACTORIES[name] = factory


def register_push(name: str, factory: Callable[[ItemCatalog, int], PushScheduler]) -> None:
    """Register a custom push-scheduler factory under ``name``."""
    if name in _PUSH_FACTORIES:
        raise ValueError(f"push scheduler {name!r} already registered")
    _PUSH_FACTORIES[name] = factory


def pull_scheduler_names() -> list[str]:
    """All registered pull scheduler names."""
    return sorted(_PULL_FACTORIES)


def push_scheduler_names() -> list[str]:
    """All registered push scheduler names."""
    return sorted(_PUSH_FACTORIES)
