"""RxW pull scheduling (Aksoy & Franklin 1999) — baseline.

Serves the item maximising ``R_i × W_i``: pending-request count times the
waiting time of the oldest pending request.  The classic compromise
between MRF (throughput) and FCFS (fairness) for large-scale on-demand
broadcast; the paper cites it as related work [3].
"""

from __future__ import annotations

from .base import PendingEntry, PullScheduler

__all__ = ["RxWScheduler"]


class RxWScheduler(PullScheduler):
    """Select the entry with maximal ``R_i × W_i``."""

    name = "rxw"
    #: W_i grows with the clock between mutations: not heap-indexable.
    incremental = False

    def score(self, entry: PendingEntry, now: float) -> float:
        """Pending requests times age of the oldest request."""
        return entry.num_requests * entry.waiting_time(now)
