"""Broadcast Disks push scheduling (Acharya et al., SIGMOD 1995) — baseline.

The classic multi-disk broadcast program the paper cites as the first
popularity-aware push scheme [1]:

1. Partition the push set into ``num_disks`` "disks" by access
   probability (hottest items on disk 1).
2. Give disk ``d`` a relative spin frequency ``f_d`` (hottest fastest).
3. Split each disk into *chunks*: disk ``d`` is cut into
   ``max_chunks / f_d`` chunks where ``max_chunks = lcm`` of the ratios.
4. A *minor cycle* broadcasts one chunk from every disk; ``max_chunks``
   minor cycles form the *major cycle*, after which the program repeats.

Items on faster disks therefore recur proportionally more often,
shrinking expected wait for hot items at the cost of cold ones.
"""

from __future__ import annotations

import math
from functools import reduce
from typing import Optional, Sequence

import numpy as np

from ..workload.items import ItemCatalog
from .base import PushScheduler

__all__ = ["BroadcastDisksScheduler"]


def _lcm_all(values: Sequence[int]) -> int:
    return reduce(math.lcm, values, 1)


class BroadcastDisksScheduler(PushScheduler):
    """Acharya–Franklin broadcast-disk program over the push set.

    Parameters
    ----------
    catalog, cutoff:
        The database and push/pull split.
    num_disks:
        Number of disks (default 3, the canonical example).
    frequencies:
        Relative spin frequency per disk, fastest first (defaults to
        ``num_disks .. 1``).  Must be positive integers, non-increasing.
    """

    name = "disks"

    def __init__(
        self,
        catalog: ItemCatalog,
        cutoff: int,
        num_disks: int = 3,
        frequencies: Sequence[int] | None = None,
    ) -> None:
        super().__init__(catalog, cutoff)
        if num_disks < 1:
            raise ValueError(f"num_disks must be >= 1, got {num_disks}")
        num_disks = min(num_disks, max(cutoff, 1))
        if frequencies is None:
            frequencies = list(range(num_disks, 0, -1))
        freqs = [int(f) for f in frequencies]
        if len(freqs) != num_disks:
            raise ValueError(f"expected {num_disks} frequencies, got {len(freqs)}")
        if any(f < 1 for f in freqs):
            raise ValueError(f"frequencies must be >= 1, got {freqs}")
        if freqs != sorted(freqs, reverse=True):
            raise ValueError(f"frequencies must be non-increasing, got {freqs}")
        self.num_disks = num_disks
        self.frequencies = freqs
        self._program = self._build_program()
        self._slot = 0

    # -- program construction --------------------------------------------------
    def _partition(self) -> list[list[int]]:
        """Split push items into disks with geometrically growing sizes.

        Hot items (low index = high Zipf probability) go to small, fast
        disks; sizes grow with disk index so the cold majority shares the
        slow disk — the shape of the original paper's example programs.
        """
        if self.cutoff == 0:
            return [[] for _ in range(self.num_disks)]
        weights = np.array([2.0**d for d in range(self.num_disks)])
        sizes = np.maximum(1, np.floor(self.cutoff * weights / weights.sum()).astype(int))
        # Fix rounding so sizes sum exactly to the push-set size.
        while sizes.sum() > self.cutoff:
            sizes[int(np.argmax(sizes))] -= 1
        sizes[-1] += self.cutoff - sizes.sum()
        disks: list[list[int]] = []
        start = 0
        for size in sizes:
            disks.append(list(range(start, start + int(size))))
            start += int(size)
        return disks

    def _build_program(self) -> list[int]:
        """Materialise one major cycle of broadcast slots."""
        disks = self._partition()
        if all(not d for d in disks):
            return []
        max_chunks = _lcm_all(self.frequencies)
        # chunking: disk d has num_chunks = max_chunks / f_d chunks.
        chunked: list[list[list[int]]] = []
        for disk, freq in zip(disks, self.frequencies):
            num_chunks = max_chunks // freq
            if not disk:
                chunked.append([[] for _ in range(num_chunks)])
                continue
            # Pad the disk so it divides evenly into chunks (classic
            # construction pads with repeats of the disk's own items).
            per_chunk = max(1, math.ceil(len(disk) / num_chunks))
            padded = list(disk)
            while len(padded) < per_chunk * num_chunks:
                padded.append(disk[len(padded) % len(disk)])
            chunked.append(
                [padded[c * per_chunk : (c + 1) * per_chunk] for c in range(num_chunks)]
            )
        program: list[int] = []
        for minor in range(max_chunks):
            for disk_chunks in chunked:
                chunk = disk_chunks[minor % len(disk_chunks)]
                program.extend(chunk)
        return program

    # -- scheduling interface -----------------------------------------------------
    def next_item(self) -> Optional[int]:
        """Next slot of the (pre-materialised) major cycle."""
        if not self._program:
            return None
        item = self._program[self._slot]
        self._slot = (self._slot + 1) % len(self._program)
        return item

    @property
    def major_cycle(self) -> list[int]:
        """One full major cycle (testing/diagnostic hook)."""
        return list(self._program)

    def broadcast_frequency(self, item_id: int) -> float:
        """Fraction of slots occupied by ``item_id`` in the major cycle."""
        if not self._program:
            return 0.0
        return self._program.count(item_id) / len(self._program)
