"""Scheduler interfaces shared by the paper's policy and all baselines.

Two independent axes, mirroring the hybrid architecture:

* :class:`PushScheduler` — decides the next item to *broadcast* from the
  push set, with no knowledge of pending requests.
* :class:`PullScheduler` — decides which entry of the pull queue to serve
  next, given full queue state.

The pull queue itself (:class:`PullQueue`) is a small aggregation
structure: one :class:`PendingEntry` per distinct requested item, carrying
the statistics every policy in the literature needs (``R_i``, ``Q_i``,
oldest arrival, item length).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterator, Optional

from ..workload.arrivals import Request
from ..workload.items import ItemCatalog

__all__ = ["PendingEntry", "PullQueue", "PullScheduler", "PushScheduler"]


@dataclass
class PendingEntry:
    """Aggregated pull-queue state for one distinct item.

    Attributes
    ----------
    item_id:
        The requested item.
    length:
        Item length ``L_i`` (broadcast units).
    probability:
        Item access probability ``P_i``.
    first_arrival:
        Arrival time of the oldest pending request (for FCFS / RxW).
    num_requests:
        ``R_i`` — number of pending requests for this item.
    total_priority:
        ``Q_i = Σ_j q_j`` over all pending requesters.
    requests:
        The pending request objects (needed for per-class delay metrics).
    """

    item_id: int
    length: float
    probability: float
    first_arrival: float
    num_requests: int = 0
    total_priority: float = 0.0
    requests: list[Request] = field(default_factory=list)

    def add(self, request: Request) -> None:
        """Fold one more pending request into the entry."""
        if request.item_id != self.item_id:
            raise ValueError(
                f"request for item {request.item_id} added to entry of item {self.item_id}"
            )
        self.num_requests += 1
        self.total_priority += request.priority
        self.first_arrival = min(self.first_arrival, request.time)
        self.requests.append(request)

    def remove(self, request: Request) -> None:
        """Withdraw one pending request (client reneged).

        Matches by object identity so equal-valued requests (e.g. a
        retried request object) cannot evict each other.
        """
        for index, pending in enumerate(self.requests):
            if pending is request:
                del self.requests[index]
                break
        else:
            raise ValueError(
                f"request for item {request.item_id} not pending in this entry"
            )
        self.num_requests -= 1
        self.total_priority -= request.priority
        if self.requests:
            self.first_arrival = min(r.time for r in self.requests)

    @property
    def stretch(self) -> float:
        """The paper's stretch value ``S_i = R_i / L_i²`` (§4.2).

        The max-request min-service-time criterion: many pending requests
        and a short item both increase urgency.
        """
        return self.num_requests / (self.length * self.length)

    def waiting_time(self, now: float) -> float:
        """Age of the oldest pending request (the ``W`` of RxW)."""
        return now - self.first_arrival


class PullQueue:
    """The server's pull queue: one :class:`PendingEntry` per distinct item.

    Requests for an item already queued fold into the existing entry (the
    eventual single broadcast satisfies all of them).
    """

    def __init__(self, catalog: ItemCatalog) -> None:
        self._catalog = catalog
        self._entries: dict[int, PendingEntry] = {}

    def add(self, request: Request) -> PendingEntry:
        """Insert ``request``, creating or updating its item's entry."""
        entry = self._entries.get(request.item_id)
        if entry is None:
            item = self._catalog[request.item_id]
            entry = PendingEntry(
                item_id=item.item_id,
                length=item.length,
                probability=item.probability,
                first_arrival=request.time,
            )
            self._entries[request.item_id] = entry
        entry.add(request)
        return entry

    def pop(self, item_id: int) -> PendingEntry:
        """Remove and return the entry for ``item_id`` (service completed)."""
        return self._entries.pop(item_id)

    def remove_request(self, request: Request) -> bool:
        """Withdraw one queued request (client reneged).

        Returns ``True`` when the request was found (its entry dissolves
        if it was the last pending requester), ``False`` when the item is
        not queued or the request is not among its requesters (already
        served, in flight, or never queued).
        """
        entry = self._entries.get(request.item_id)
        if entry is None or not any(pending is request for pending in entry.requests):
            return False
        entry.remove(request)
        if entry.num_requests == 0:
            del self._entries[request.item_id]
        return True

    def make_entry(self, request: Request) -> PendingEntry:
        """Build a transient (un-inserted) entry for ``request``.

        Used by shedding policies to score an incoming request against
        queued entries without mutating the queue.
        """
        item = self._catalog[request.item_id]
        entry = PendingEntry(
            item_id=item.item_id,
            length=item.length,
            probability=item.probability,
            first_arrival=request.time,
        )
        entry.add(request)
        return entry

    def peek(self, item_id: int) -> Optional[PendingEntry]:
        """The entry for ``item_id`` or ``None``."""
        return self._entries.get(item_id)

    def __len__(self) -> int:
        """Number of *distinct items* queued."""
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[PendingEntry]:
        return iter(self._entries.values())

    @property
    def total_requests(self) -> int:
        """Total pending requests across all entries (``Σ R_i``)."""
        return sum(e.num_requests for e in self._entries.values())


class PullScheduler(abc.ABC):
    """Strategy deciding which pull-queue entry to serve next."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    @abc.abstractmethod
    def score(self, entry: PendingEntry, now: float) -> float:
        """Urgency score of ``entry`` at time ``now`` — larger wins."""

    def select(self, queue: PullQueue, now: float) -> Optional[PendingEntry]:
        """The queue entry with the maximal score, or ``None`` if empty.

        Ties break deterministically toward the smaller item id.
        """
        best: Optional[PendingEntry] = None
        best_key: tuple[float, int] | None = None
        for entry in queue:
            key = (self.score(entry, now), -entry.item_id)
            if best_key is None or key > best_key:
                best, best_key = entry, key
        return best

    def observe_service(self, entry: PendingEntry, now: float) -> None:
        """Hook called after ``entry`` is served (for adaptive policies)."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__} ({self.name})>"


class PushScheduler(abc.ABC):
    """Strategy producing the broadcast order of the push set.

    A push scheduler is created for a specific ``(catalog, cutoff)`` pair
    and then queried item-by-item via :meth:`next_item`.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, catalog: ItemCatalog, cutoff: int) -> None:
        if not 0 <= cutoff <= len(catalog):
            raise ValueError(f"cutoff {cutoff} outside [0, {len(catalog)}]")
        self.catalog = catalog
        self.cutoff = cutoff

    @abc.abstractmethod
    def next_item(self) -> Optional[int]:
        """Id of the next item to broadcast, or ``None`` if the push set is empty."""

    def schedule_prefix(self, n: int) -> list[int]:
        """The first ``n`` broadcast slots (diagnostic/testing helper)."""
        return [item for item in (self.next_item() for _ in range(n)) if item is not None]
