"""Scheduler interfaces shared by the paper's policy and all baselines.

Two independent axes, mirroring the hybrid architecture:

* :class:`PushScheduler` — decides the next item to *broadcast* from the
  push set, with no knowledge of pending requests.
* :class:`PullScheduler` — decides which entry of the pull queue to serve
  next, given full queue state.

The pull queue itself (:class:`PullQueue`) is a small aggregation
structure: one :class:`PendingEntry` per distinct requested item, carrying
the statistics every policy in the literature needs (``R_i``, ``Q_i``,
oldest arrival, item length).

For schedulers whose scores depend only on entry state (not on the clock
and not on cross-entry normalisation — flagged ``incremental = True``),
the queue additionally maintains a *lazy max-heap index* keyed on
``(score, -item_id)``: every mutation pushes a fresh heap record and
bumps the item's version, and stale records are discarded when they
surface at the top.  :meth:`PullScheduler.select` then answers in
O(log n) amortised instead of rescanning the whole queue.
"""

from __future__ import annotations

import abc
import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

from ..workload.arrivals import Request
from ..workload.items import ItemCatalog

__all__ = ["PendingEntry", "PullQueue", "PullScheduler", "PushScheduler"]


@dataclass(slots=True)
class PendingEntry:
    """Aggregated pull-queue state for one distinct item.

    Attributes
    ----------
    item_id:
        The requested item.
    length:
        Item length ``L_i`` (broadcast units).
    probability:
        Item access probability ``P_i``.
    first_arrival:
        Arrival time of the oldest pending request (for FCFS / RxW).
    num_requests:
        ``R_i`` — number of pending requests for this item.
    total_priority:
        ``Q_i = Σ_j q_j`` over all pending requesters.
    requests:
        The pending request objects (needed for per-class delay metrics).
    """

    item_id: int
    length: float
    probability: float
    first_arrival: float
    num_requests: int = 0
    total_priority: float = 0.0
    requests: list[Request] = field(default_factory=list)

    def add(self, request: Request) -> None:
        """Fold one more pending request into the entry."""
        if request.item_id != self.item_id:
            raise ValueError(
                f"request for item {request.item_id} added to entry of item {self.item_id}"
            )
        self.num_requests += 1
        self.total_priority += request.priority
        if request.time < self.first_arrival:
            self.first_arrival = request.time
        self.requests.append(request)

    def remove(self, request: Request) -> None:
        """Withdraw one pending request (client reneged).

        Matches by object identity so equal-valued requests (e.g. a
        retried request object) cannot evict each other.
        """
        for index, pending in enumerate(self.requests):
            if pending is request:
                del self.requests[index]
                break
        else:
            raise ValueError(
                f"request for item {request.item_id} not pending in this entry"
            )
        self.num_requests -= 1
        self.total_priority -= request.priority
        if self.requests:
            self.first_arrival = min(r.time for r in self.requests)

    @property
    def stretch(self) -> float:
        """The paper's stretch value ``S_i = R_i / L_i²`` (§4.2).

        The max-request min-service-time criterion: many pending requests
        and a short item both increase urgency.
        """
        return self.num_requests / (self.length * self.length)

    def waiting_time(self, now: float) -> float:
        """Age of the oldest pending request (the ``W`` of RxW)."""
        return now - self.first_arrival


class PullQueue:
    """The server's pull queue: one :class:`PendingEntry` per distinct item.

    Requests for an item already queued fold into the existing entry (the
    eventual single broadcast satisfies all of them).

    An incremental scheduler (see :class:`PullScheduler.incremental`) can
    be attached via :meth:`attach_scorer`; the queue then keeps a lazy
    max-heap over ``(score, -item_id)`` current across every mutation so
    :meth:`peek_best` answers without a full scan.
    """

    def __init__(self, catalog: ItemCatalog) -> None:
        self._catalog = catalog
        self._entries: dict[int, PendingEntry] = {}
        self._total_requests = 0
        # Lazy max-heap index; populated only once a scorer is attached.
        self._scheduler: Optional["PullScheduler"] = None
        self._score: Optional[Callable[[PendingEntry, float], float]] = None
        self._heap: list[tuple[float, int, int]] = []
        self._versions: dict[int, int] = {}

    # -- heap index --------------------------------------------------------------
    def attach_scorer(self, scheduler: "PullScheduler") -> None:
        """Maintain a max-score heap for ``scheduler`` from now on.

        Only valid for schedulers whose score is a pure function of entry
        state (``scheduler.incremental``); time-dependent policies would
        read stale scores from the heap.
        """
        if not scheduler.incremental:
            raise ValueError(
                f"scheduler {scheduler.name!r} is not incremental; its scores "
                "change outside queue mutations and cannot be heap-indexed"
            )
        self._scheduler = scheduler
        self._score = scheduler.score
        self._heap = []
        self._versions = {}
        for entry in self._entries.values():
            self._reindex(entry)

    def detach_scorer(self) -> None:
        """Drop the heap index; selection falls back to the linear scan."""
        self._scheduler = None
        self._score = None
        self._heap = []
        self._versions = {}

    def indexed_for(self, scheduler: "PullScheduler") -> bool:
        """Whether the heap index is maintained for exactly ``scheduler``."""
        return self._scheduler is scheduler

    def _reindex(self, entry: PendingEntry) -> None:
        """Push a fresh heap record for ``entry``, superseding older ones."""
        item_id = entry.item_id
        versions = self._versions
        version = versions.get(item_id, 0) + 1
        versions[item_id] = version
        # min-heap on (-score, item_id): max score first, smaller item id
        # winning ties — the same key order as the linear scan.
        heapq.heappush(self._heap, (-self._score(entry, 0.0), item_id, version))

    def _unindex(self, item_id: int) -> None:
        """Invalidate all heap records of a removed entry (lazy deletion)."""
        if item_id in self._versions:
            self._versions[item_id] += 1

    def peek_best(self) -> Optional[PendingEntry]:
        """The max-score entry per the attached scorer, or ``None`` if empty.

        Pops dirty heap records (superseded versions, removed items) until
        a live one surfaces; that record stays on the heap so repeated
        peeks are O(1).
        """
        heap = self._heap
        while heap:
            _, item_id, version = heap[0]
            entry = self._entries.get(item_id)
            if entry is not None and version == self._versions.get(item_id):
                return entry
            heapq.heappop(heap)
        return None

    # -- mutations ---------------------------------------------------------------
    def add(self, request: Request) -> PendingEntry:
        """Insert ``request``, creating or updating its item's entry.

        The bodies of :meth:`PendingEntry.add` and :meth:`_reindex` are
        inlined — this runs once per arrival on the hot path, and the
        entry lookup by ``request.item_id`` already guarantees the
        cross-item guard those methods carry cannot fire here.
        """
        item_id = request.item_id
        entry = self._entries.get(item_id)
        if entry is None:
            item = self._catalog[item_id]
            entry = PendingEntry(
                item_id=item.item_id,
                length=item.length,
                probability=item.probability,
                first_arrival=request.time,
            )
            self._entries[item_id] = entry
        entry.num_requests += 1
        entry.total_priority += request.priority
        if request.time < entry.first_arrival:
            entry.first_arrival = request.time
        entry.requests.append(request)
        self._total_requests += 1
        score = self._score
        if score is not None:
            versions = self._versions
            version = versions.get(item_id, 0) + 1
            versions[item_id] = version
            heapq.heappush(self._heap, (-score(entry, 0.0), item_id, version))
        return entry

    def pop(self, item_id: int) -> PendingEntry:
        """Remove and return the entry for ``item_id`` (service completed)."""
        entry = self._entries.pop(item_id)
        self._total_requests -= entry.num_requests
        if self._scheduler is not None:
            self._unindex(item_id)
        return entry

    def reinsert(self, entry: PendingEntry) -> PendingEntry:
        """Return a previously popped entry to the queue (preemptive resume).

        If newer requests opened a fresh entry for the same item while
        ``entry`` was in service, the pending requests merge into it and
        the shorter remaining length wins (the receivers keep the bytes
        already transmitted).  Returns the entry now queued for the item.
        """
        existing = self._entries.get(entry.item_id)
        if existing is None:
            self._entries[entry.item_id] = entry
            queued = entry
        else:
            for request in entry.requests:
                existing.add(request)
            existing.length = min(existing.length, entry.length)
            queued = existing
        self._total_requests += entry.num_requests
        if self._scheduler is not None:
            self._reindex(queued)
        return queued

    def remove_request(self, request: Request) -> bool:
        """Withdraw one queued request (client reneged).

        Returns ``True`` when the request was found (its entry dissolves
        if it was the last pending requester), ``False`` when the item is
        not queued or the request is not among its requesters (already
        served, in flight, or never queued).
        """
        entry = self._entries.get(request.item_id)
        if entry is None or not any(pending is request for pending in entry.requests):
            return False
        entry.remove(request)
        self._total_requests -= 1
        if entry.num_requests == 0:
            del self._entries[request.item_id]
            if self._scheduler is not None:
                self._unindex(request.item_id)
        elif self._scheduler is not None:
            self._reindex(entry)
        return True

    def make_entry(self, request: Request) -> PendingEntry:
        """Build a transient (un-inserted) entry for ``request``.

        Used by shedding policies to score an incoming request against
        queued entries without mutating the queue.
        """
        item = self._catalog[request.item_id]
        entry = PendingEntry(
            item_id=item.item_id,
            length=item.length,
            probability=item.probability,
            first_arrival=request.time,
        )
        entry.add(request)
        return entry

    def peek(self, item_id: int) -> Optional[PendingEntry]:
        """The entry for ``item_id`` or ``None``."""
        return self._entries.get(item_id)

    def __len__(self) -> int:
        """Number of *distinct items* queued."""
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def __iter__(self) -> Iterator[PendingEntry]:
        return iter(self._entries.values())

    @property
    def total_requests(self) -> int:
        """Total pending requests across all entries (``Σ R_i``), O(1)."""
        return self._total_requests


class PullScheduler(abc.ABC):
    """Strategy deciding which pull-queue entry to serve next."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: ``True`` when :meth:`score` is a pure function of entry state —
    #: independent of ``now`` and of the other queued entries — so the
    #: score of an entry only changes when the queue mutates it.  Such
    #: schedulers can be served from the queue's lazy max-heap index
    #: (:meth:`PullQueue.attach_scorer`) instead of a full scan.
    incremental: bool = False

    @abc.abstractmethod
    def score(self, entry: PendingEntry, now: float) -> float:
        """Urgency score of ``entry`` at time ``now`` — larger wins."""

    def select(self, queue: PullQueue, now: float) -> Optional[PendingEntry]:
        """The queue entry with the maximal score, or ``None`` if empty.

        Ties break deterministically toward the smaller item id.  When the
        queue maintains a heap index for this scheduler the answer comes
        from the index (O(log n) amortised); otherwise a linear scan.
        """
        if queue.indexed_for(self):
            return queue.peek_best()
        best: Optional[PendingEntry] = None
        best_key: tuple[float, int] | None = None
        for entry in queue:
            key = (self.score(entry, now), -entry.item_id)
            if best_key is None or key > best_key:
                best, best_key = entry, key
        return best

    def observe_service(self, entry: PendingEntry, now: float) -> None:
        """Hook called after ``entry`` is served (for adaptive policies)."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__} ({self.name})>"


class PushScheduler(abc.ABC):
    """Strategy producing the broadcast order of the push set.

    A push scheduler is created for a specific ``(catalog, cutoff)`` pair
    and then queried item-by-item via :meth:`next_item`.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    def __init__(self, catalog: ItemCatalog, cutoff: int) -> None:
        if not 0 <= cutoff <= len(catalog):
            raise ValueError(f"cutoff {cutoff} outside [0, {len(catalog)}]")
        self.catalog = catalog
        self.cutoff = cutoff

    @abc.abstractmethod
    def next_item(self) -> Optional[int]:
        """Id of the next item to broadcast, or ``None`` if the push set is empty."""

    def schedule_prefix(self, n: int) -> list[int]:
        """The first ``n`` broadcast slots (diagnostic/testing helper)."""
        return [item for item in (self.next_item() for _ in range(n)) if item is not None]
