"""Flat (round-robin) push scheduling — the paper's broadcast policy.

Cycles through the push set ``0..K-1`` in index order, one item per slot.
Every push item appears exactly once per cycle, so a client's expected
wait for a push item is half the cycle length — the term
``(1/2)·Σ_{i≤K} L_i`` family that appears in Eq. 19.
"""

from __future__ import annotations

from typing import Optional

from ..workload.items import ItemCatalog
from .base import PushScheduler

__all__ = ["FlatScheduler"]


class FlatScheduler(PushScheduler):
    """Cyclic broadcast of the push set in fixed index order."""

    name = "flat"

    def __init__(self, catalog: ItemCatalog, cutoff: int) -> None:
        super().__init__(catalog, cutoff)
        self._next = 0

    def next_item(self) -> Optional[int]:
        """Next item in the cycle (``None`` when the push set is empty)."""
        if self.cutoff == 0:
            return None
        item = self._next
        self._next = (self._next + 1) % self.cutoff
        return item

    @property
    def position(self) -> int:
        """Index of the next slot in the current cycle (testing hook)."""
        return self._next
