"""``repro.schedulers`` — push and pull scheduling policies.

The paper's importance-factor policy plus every baseline it is defined
against: flat round-robin, broadcast disks and the square-root rule on
the push side; FCFS, MRF, stretch-optimal, RxW and pure priority on the
pull side.
"""

from .base import PendingEntry, PullQueue, PullScheduler, PushScheduler
from .broadcast_disks import BroadcastDisksScheduler
from .fcfs import FCFSScheduler
from .flat import FlatScheduler
from .importance_factor import ExpectedImportanceScheduler, ImportanceFactorScheduler
from .mrf import MRFScheduler
from .priority import PriorityScheduler
from .registry import (
    make_pull_scheduler,
    make_push_scheduler,
    pull_scheduler_names,
    push_scheduler_names,
    register_pull,
    register_push,
)
from .rxw import RxWScheduler
from .srr import SquareRootRuleScheduler
from .stretch import StretchScheduler

__all__ = [
    "PendingEntry",
    "PullQueue",
    "PullScheduler",
    "PushScheduler",
    "FlatScheduler",
    "BroadcastDisksScheduler",
    "SquareRootRuleScheduler",
    "FCFSScheduler",
    "MRFScheduler",
    "StretchScheduler",
    "RxWScheduler",
    "PriorityScheduler",
    "ImportanceFactorScheduler",
    "ExpectedImportanceScheduler",
    "make_pull_scheduler",
    "make_push_scheduler",
    "register_pull",
    "register_push",
    "pull_scheduler_names",
    "push_scheduler_names",
]
