"""Stretch-optimal pull scheduling — max-request min-service-time first.

The α = 1 extreme of the paper's Eq. 1: serve the entry maximising

    S_i = R_i / L_i²

(§4.2).  Normalising request count by the *square* of service time is the
stretch (response time / service time) heuristic for variable-length
items: short items with many waiters yield the most stretch reduction per
broadcast second.
"""

from __future__ import annotations

from .base import PendingEntry, PullScheduler

__all__ = ["StretchScheduler"]


class StretchScheduler(PullScheduler):
    """Select the entry with maximal stretch ``S_i = R_i / L_i²``."""

    name = "stretch"
    #: S_i = R_i / L_i² changes only on queue mutation.
    incremental = True

    def score(self, entry: PendingEntry, now: float) -> float:
        """The paper's stretch value."""
        return entry.stretch
