"""Pure priority pull scheduling — the α = 0 extreme of the paper's Eq. 1.

Serves the entry with the largest accumulated client priority
``Q_i = Σ_j q_j``.  Maximally deferential to important clients, but — as
the paper notes in §3 — unfair: items wanted only by many low-priority
clients can wait arbitrarily long.
"""

from __future__ import annotations

from .base import PendingEntry, PullScheduler

__all__ = ["PriorityScheduler"]


class PriorityScheduler(PullScheduler):
    """Select the entry with maximal total client priority ``Q_i``."""

    name = "priority"
    #: Q_i changes only when requests join or leave the entry.
    incremental = True

    def score(self, entry: PendingEntry, now: float) -> float:
        """Total priority of the pending requesters."""
        return entry.total_priority
