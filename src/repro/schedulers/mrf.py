"""Most-requests-first pull scheduling (baseline).

Serves the item with the most pending requests ``R_i`` — the throughput
greedy policy.  Known failure mode (motivating RxW and stretch): unpopular
items starve.
"""

from __future__ import annotations

from .base import PendingEntry, PullScheduler

__all__ = ["MRFScheduler"]


class MRFScheduler(PullScheduler):
    """Select the entry with maximal pending-request count ``R_i``."""

    name = "mrf"
    #: Kept on the scan path as the un-indexed reference baseline.
    incremental = False

    def score(self, entry: PendingEntry, now: float) -> float:
        """More pending requests ⇒ larger score."""
        return float(entry.num_requests)
