"""First-come-first-served pull scheduling (baseline).

Serves the item whose *oldest* pending request arrived earliest.  The
natural on-demand baseline: fair in arrival order, blind to popularity,
item length and client priority.
"""

from __future__ import annotations

from .base import PendingEntry, PullScheduler

__all__ = ["FCFSScheduler"]


class FCFSScheduler(PullScheduler):
    """Select the entry with the earliest first arrival."""

    name = "fcfs"
    #: The oldest arrival changes only when requests join or leave.
    incremental = True

    def score(self, entry: PendingEntry, now: float) -> float:
        """Older first arrival ⇒ larger score."""
        return -entry.first_arrival
