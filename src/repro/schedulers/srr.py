"""Square-Root-Rule push scheduling (Hameed & Vaidya 1999) — baseline.

The paper cites the SRR [5] as the optimal solution to the push-only
broadcast problem: item ``i`` should appear with equally spaced replicas
at a frequency proportional to ``sqrt(P_i / L_i)``.

We implement the standard *online* approximation: at each slot, broadcast
the item maximising

    G_i = (t − R_i)² · P_i / L_i

where ``R_i`` is the last time item ``i`` was broadcast.  This greedy rule
provably approaches the square-root spacing in steady state (Vaidya &
Hameed's own online algorithm).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..workload.items import ItemCatalog
from .base import PushScheduler

__all__ = ["SquareRootRuleScheduler"]


class SquareRootRuleScheduler(PushScheduler):
    """Online square-root-rule broadcast over the push set."""

    name = "srr"

    def __init__(self, catalog: ItemCatalog, cutoff: int) -> None:
        super().__init__(catalog, cutoff)
        # Normalise probabilities within the push set.
        probs = catalog.probabilities[:cutoff]
        mass = probs.sum()
        self._weights = (
            probs / mass / catalog.lengths[:cutoff] if mass > 0 else np.array([])
        )
        # Stagger initial "last broadcast" times so the first cycle is not
        # degenerate (all ties).
        self._last = -np.arange(1, cutoff + 1, dtype=float)
        self._clock = 0.0

    def next_item(self) -> Optional[int]:
        """Greedy slot decision maximising ``(t − R_i)² · P_i / L_i``."""
        if self.cutoff == 0:
            return None
        gaps = self._clock - self._last
        scores = gaps * gaps * self._weights
        item = int(np.argmax(scores))
        self._last[item] = self._clock
        self._clock += float(self.catalog.lengths[item])
        return item

    def empirical_frequencies(self, slots: int = 2000) -> np.ndarray:
        """Broadcast share per item over ``slots`` greedy slots.

        Diagnostic used in tests: the shares should approach the
        ``sqrt(P_i / L_i)`` law.  This consumes scheduler state; call on a
        throwaway instance.
        """
        counts = np.zeros(self.cutoff)
        for _ in range(slots):
            item = self.next_item()
            if item is None:
                break
            counts[item] += 1
        total = counts.sum()
        return counts / total if total else counts
