"""The paper's contribution: importance-factor pull scheduling.

Two variants, matching the paper's two formulations:

* :class:`ImportanceFactorScheduler` — the *online* rule of Eq. 1,

      γ_i = α·S_i + (1 − α)·Q_i,     S_i = R_i / L_i²,  Q_i = Σ_j q_j

  evaluated on observed queue state.  ``α = 1`` degenerates to
  stretch-optimal scheduling, ``α = 0`` to pure priority scheduling.

* :class:`ExpectedImportanceScheduler` — the *expected-value* rule of
  Eq. 6, which weights both terms by the expected number of copies of
  item ``i`` in the pull queue, ``E[L_pull]·p_i``:

      ϱ_i = α·E[L_pull]·p_i / L_i² + (1 − α)·E[L_pull]·p_i·Q_i

  The paper notes Eq. 6 reduces to Eq. 1 when ``E[L_pull]·p_i = 1``; a
  unit test pins that equivalence.

Because stretch and priority live on different numeric scales, a linear
blend is scale-sensitive; the optional ``normalize`` flag rescales both
terms by their current queue maxima before blending (an ablation — the
paper itself blends raw values, which remains the default).
"""

from __future__ import annotations

from .base import PendingEntry, PullQueue, PullScheduler

__all__ = ["ImportanceFactorScheduler", "ExpectedImportanceScheduler"]


class ImportanceFactorScheduler(PullScheduler):
    """Eq. 1 online importance factor ``γ_i = α·S_i + (1−α)·Q_i``.

    Parameters
    ----------
    alpha:
        Stretch weight ``α ∈ [0, 1]``.
    normalize:
        If true, divide each term by its current maximum over the queue
        before blending (scale-free ablation; default off = paper).
    """

    name = "importance"

    def __init__(self, alpha: float, normalize: bool = False) -> None:
        if not 0 <= alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._one_minus_alpha = 1.0 - self.alpha
        self.normalize = bool(normalize)
        # Raw Eq. 1 is a pure function of (R_i, L_i, Q_i) and qualifies for
        # the queue's heap index; normalisation couples entries through the
        # queue-wide maxima, so it must keep the scan.
        self.incremental = not self.normalize
        self._stretch_scale = 1.0
        self._priority_scale = 1.0

    def set_alpha(self, alpha: float) -> None:
        """Retune the stretch weight in place (control-plane knob).

        Any heap index built over the old scores is stale afterwards —
        callers must re-attach the scorer so
        :meth:`~repro.schedulers.base.PullQueue.attach_scorer` rebuilds
        every record (the servers' ``reconfigure_alpha`` does exactly
        that).
        """
        if not 0 <= alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._one_minus_alpha = 1.0 - self.alpha

    def gamma(self, entry: PendingEntry) -> float:
        """The importance factor of one entry (Eq. 1)."""
        return (
            self.alpha * entry.stretch / self._stretch_scale
            + self._one_minus_alpha * entry.total_priority / self._priority_scale
        )

    def score(self, entry: PendingEntry, now: float) -> float:
        """Eq. 1, inlined; time plays no role.

        The heap index calls this once per queue mutation, so the
        ``stretch`` property and the :meth:`gamma` dispatch are flattened
        into one expression — keep in sync with :meth:`gamma`.
        """
        return (
            self.alpha
            * (entry.num_requests / (entry.length * entry.length))
            / self._stretch_scale
            + self._one_minus_alpha * entry.total_priority / self._priority_scale
        )

    def select(self, queue: PullQueue, now: float) -> PendingEntry | None:
        """Max-γ entry; refreshes normalisation scales first if enabled."""
        if self.normalize:
            # Scales stay pinned at 1.0 whenever normalisation is off, so
            # only this branch ever needs to touch them.
            if queue:
                self._stretch_scale = max((e.stretch for e in queue), default=1.0) or 1.0
                self._priority_scale = max((e.total_priority for e in queue), default=1.0) or 1.0
            else:
                self._stretch_scale = 1.0
                self._priority_scale = 1.0
        return super().select(queue, now)


class ExpectedImportanceScheduler(ImportanceFactorScheduler):
    """Eq. 6 expected importance ``ϱ_i`` with the ``E[L_pull]·p_i`` weight.

    ``E[L_pull]`` is estimated online as an exponential moving average of
    the observed pull-queue length (distinct pending items), so the policy
    needs no analytical pre-computation.

    Parameters
    ----------
    alpha:
        Stretch weight as in Eq. 1.
    ema:
        Smoothing factor of the queue-length moving average in (0, 1].
    """

    name = "importance-expected"

    def __init__(self, alpha: float, ema: float = 0.05) -> None:
        super().__init__(alpha=alpha, normalize=False)
        # The E[L_pull] estimate drifts between selections, so scores
        # recorded at mutation time would be stale: keep the scan.
        self.incremental = False
        if not 0 < ema <= 1:
            raise ValueError(f"ema must be in (0, 1], got {ema}")
        self.ema = float(ema)
        self._expected_len = 1.0

    def gamma(self, entry: PendingEntry) -> float:
        """The expected importance factor ϱ_i (Eq. 6)."""
        weight = self._expected_len * entry.probability
        return (
            self.alpha * weight / (entry.length * entry.length)
            + (1.0 - self.alpha) * weight * entry.total_priority
        )

    def score(self, entry: PendingEntry, now: float) -> float:
        """Eq. 6 via :meth:`gamma` (the parent inlines Eq. 1 instead)."""
        return self.gamma(entry)

    def select(self, queue: PullQueue, now: float) -> PendingEntry | None:
        """Update the E[L_pull] estimate, then pick the max-ϱ entry."""
        if queue:
            self._expected_len += self.ema * (len(queue) - self._expected_len)
        return PullScheduler.select(self, queue, now)
