"""Configuration objects for the hybrid scheduling system.

:class:`HybridConfig` is the single source of truth for an experiment: it
captures every assumption of the paper's Section 5.1 with the paper's
values as defaults, and is consumed by the simulator (``repro.sim``), the
analytical models (``repro.analysis``) and the optimisers (``repro.core``).

A simulation run is a pure function of ``(HybridConfig, seed)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Literal, Sequence

import numpy as np

from ..workload.clients import ClientPopulation, ServiceClass
from ..workload.items import ItemCatalog, LengthLaw
from .faults import FaultConfig
from .overload import OverloadConfig

__all__ = ["ClassSpec", "HybridConfig", "ServiceRateConvention"]

#: How the push/pull service rates (μ₁, μ₂) are derived from the catalog.
#:
#: * ``"paper"`` — §5.1 assumption 2 verbatim: ``μ₁ = Σ_{i≤K} P_i·L_i`` and
#:   ``μ₂ = Σ_{i>K} P_i·L_i``.  These are popularity-weighted *workloads*
#:   (dimension: time), which the paper nevertheless plugs in as rates.
#: * ``"rate"`` — the dimensionally consistent reading: service *rates*
#:   are reciprocals of mean service times, ``μ₂ = 1 / E[L | pull]`` with
#:   the expectation under the conditional pull-access law, and
#:   ``μ₁ = 1 / E[L | push]`` likewise.
ServiceRateConvention = Literal["paper", "rate"]


@dataclass(frozen=True)
class ClassSpec:
    """Specification of one client service class.

    Attributes
    ----------
    name:
        Class label ("A" is the paper's premium class).
    priority:
        Weight ``q_j`` contributed to an item's total priority ``Q_i``.
        Larger = more important.
    bandwidth_share:
        Fraction of the total downlink bandwidth reserved for pull
        services attributed to this class.  Shares should sum to <= 1.
    """

    name: str
    priority: float
    bandwidth_share: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.priority <= 0:
            raise ValueError(f"class {self.name!r}: priority must be > 0")
        if not 0 < self.bandwidth_share <= 1:
            raise ValueError(f"class {self.name!r}: bandwidth share outside (0, 1]")


def _paper_class_specs() -> tuple[ClassSpec, ...]:
    """Paper defaults: A/B/C with priority ratio 3:2:1, premium-weighted bandwidth."""
    return (
        ClassSpec(name="A", priority=3.0, bandwidth_share=0.5),
        ClassSpec(name="B", priority=2.0, bandwidth_share=0.3),
        ClassSpec(name="C", priority=1.0, bandwidth_share=0.2),
    )


@dataclass(frozen=True)
class HybridConfig:
    """Full description of one hybrid-scheduling system instance.

    Defaults reproduce the paper's Section 5.1 assumptions.

    Attributes
    ----------
    num_items:
        Database size ``D`` (paper: 100).
    cutoff:
        Cut-off point ``K``: items ``0..K-1`` are pushed, the rest pulled.
    arrival_rate:
        Aggregate Poisson arrival rate ``λ'`` (paper: 5).
    theta:
        Zipf access skew (paper sweeps {0.20, 0.60, 1.0, 1.40}).
    alpha:
        Stretch-vs-priority weight in the importance factor (Eq. 1):
        ``α = 1`` is stretch-optimal, ``α = 0`` pure priority scheduling.
    min_length, max_length, mean_length, length_law:
        Item-length law (paper: 1..5, mean 2).
    num_clients:
        Total client population ``C``.
    class_specs:
        Service classes, most important first.
    population_skew:
        Zipf skew of class populations (fewest clients in Class-A).
    total_bandwidth:
        Downlink bandwidth pool partitioned among classes for pull service.
    bandwidth_demand_mean:
        Mean of the Poisson bandwidth demand per pull transmission (§3).
    pull_scheduler, push_scheduler:
        Registry names of the scheduling policies.
    rate_convention:
        How μ₁/μ₂ are derived (see :data:`ServiceRateConvention`).
    length_seed:
        Seed for the deterministic item-length draw (part of the system,
        not of a replication).
    """

    num_items: int = 100
    cutoff: int = 40
    arrival_rate: float = 5.0
    theta: float = 0.60
    alpha: float = 0.75
    min_length: int = 1
    max_length: int = 5
    mean_length: float = 2.0
    length_law: LengthLaw = "truncated_geometric"
    num_clients: int = 300
    class_specs: tuple[ClassSpec, ...] = field(default_factory=_paper_class_specs)
    population_skew: float = 1.0
    total_bandwidth: float = 20.0
    bandwidth_demand_mean: float = 4.0
    pull_scheduler: str = "importance"
    push_scheduler: str = "flat"
    rate_convention: ServiceRateConvention = "paper"
    length_seed: int = 0
    #: Uplink (back-channel) capacity in requests per broadcast unit.
    #: ``inf`` models the ideal channel the paper's evaluation assumes;
    #: finite values enable the Acharya-style limited back-channel.
    uplink_rate: float = math.inf
    #: Uplink waiting-room size (requests beyond it are lost client-side).
    uplink_buffer: int = 64
    #: If true, clients request at rates proportional to their priority
    #: weight (the §4.2 demand decomposition ``λ_i = λ·p_i·q_j``); the §5
    #: evaluation draws clients uniformly (default).
    priority_weighted_demand: bool = False
    #: Fault-injection and graceful-degradation model.  The default
    #: (all rates zero, unbounded queue, no deadlines) is inert and
    #: reproduces the paper's ideal-channel behaviour exactly.
    faults: FaultConfig = field(default_factory=FaultConfig)
    #: Server-side overload controller layered on the bounded pull
    #: queue: class-aware admission that sheds lowest-priority entries
    #: first above a queue-occupancy threshold.  The default (no
    #: threshold) is inert and reproduces pre-overload results exactly.
    overload: OverloadConfig = field(default_factory=OverloadConfig)

    def __post_init__(self) -> None:
        if self.num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {self.num_items}")
        if not 0 <= self.cutoff <= self.num_items:
            raise ValueError(f"cutoff {self.cutoff} outside [0, {self.num_items}]")
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if self.theta < 0:
            raise ValueError(f"theta must be >= 0, got {self.theta}")
        if not 0 <= self.alpha <= 1:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.num_clients < len(self.class_specs):
            raise ValueError(
                f"need >= {len(self.class_specs)} clients, got {self.num_clients}"
            )
        if not self.class_specs:
            raise ValueError("at least one service class is required")
        priorities = [s.priority for s in self.class_specs]
        if priorities != sorted(priorities, reverse=True):
            raise ValueError("class_specs must be ordered most-important (highest q) first")
        names = [s.name for s in self.class_specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names: {names}")
        share_sum = sum(s.bandwidth_share for s in self.class_specs)
        if share_sum > 1.0 + 1e-9:
            raise ValueError(f"bandwidth shares sum to {share_sum} > 1")
        if self.total_bandwidth <= 0:
            raise ValueError(f"total_bandwidth must be > 0, got {self.total_bandwidth}")
        if self.bandwidth_demand_mean < 0:
            raise ValueError("bandwidth_demand_mean must be >= 0")
        if self.uplink_rate <= 0:
            raise ValueError(f"uplink_rate must be > 0, got {self.uplink_rate}")
        if self.uplink_buffer < 0:
            raise ValueError(f"uplink_buffer must be >= 0, got {self.uplink_buffer}")
        if self.min_length < 1:
            raise ValueError(f"min_length must be >= 1, got {self.min_length}")
        if self.max_length < self.min_length:
            raise ValueError(
                f"max_length {self.max_length} below min_length {self.min_length}"
            )
        if not self.min_length <= self.mean_length <= self.max_length:
            raise ValueError(
                f"mean_length {self.mean_length} outside the length support "
                f"[{self.min_length}, {self.max_length}]; no length law can "
                "realise it"
            )
        if self.overload.active and self.faults.queue_capacity is None:
            raise ValueError(
                "overload admission control needs a bounded pull queue: set "
                "faults.queue_capacity (the admission threshold is a fraction "
                "of that capacity) or disable it with OverloadConfig()"
            )

    # -- derived objects -----------------------------------------------------
    def build_catalog(self) -> ItemCatalog:
        """Instantiate the item catalog this config describes."""
        return ItemCatalog.generate(
            num_items=self.num_items,
            theta=self.theta,
            min_length=self.min_length,
            max_length=self.max_length,
            mean_length=self.mean_length,
            length_law=self.length_law,
            rng=np.random.Generator(np.random.PCG64(self.length_seed)),
        )

    def build_population(self) -> ClientPopulation:
        """Instantiate the client population this config describes."""
        classes = [
            ServiceClass(name=s.name, priority=s.priority, rank=i)
            for i, s in enumerate(self.class_specs)
        ]
        return ClientPopulation.generate(
            num_clients=self.num_clients,
            classes=classes,
            population_skew=self.population_skew,
        )

    # -- paper quantities ---------------------------------------------------------
    def service_rates(self, catalog: ItemCatalog | None = None) -> tuple[float, float]:
        """The (μ₁, μ₂) pair under the configured convention.

        Returns
        -------
        (mu1, mu2):
            Push and pull service parameters.  See
            :data:`ServiceRateConvention` for the two interpretations.
        """
        cat = catalog if catalog is not None else self.build_catalog()
        if self.rate_convention == "paper":
            mu1 = cat.weighted_push_length(self.cutoff)
            mu2 = cat.weighted_pull_length(self.cutoff)
        else:
            push_mass = cat.push_probability(self.cutoff)
            pull_mass = cat.pull_probability(self.cutoff)
            mean_push = (
                cat.weighted_push_length(self.cutoff) / push_mass if push_mass > 0 else float("nan")
            )
            mean_pull = (
                cat.weighted_pull_length(self.cutoff) / pull_mass if pull_mass > 0 else float("nan")
            )
            mu1 = 1.0 / mean_push if mean_push and mean_push > 0 else float("nan")
            mu2 = 1.0 / mean_pull if mean_pull and mean_pull > 0 else float("nan")
        return (mu1, mu2)

    def class_names(self) -> list[str]:
        """Class labels, most important first."""
        return [s.name for s in self.class_specs]

    def class_priorities(self) -> np.ndarray:
        """Per-class priority weights, most important first."""
        return np.array([s.priority for s in self.class_specs], dtype=float)

    def class_bandwidth(self) -> np.ndarray:
        """Absolute bandwidth reserved per class (rank order)."""
        return np.array(
            [s.bandwidth_share * self.total_bandwidth for s in self.class_specs], dtype=float
        )

    # -- variation helpers ---------------------------------------------------------
    def with_cutoff(self, cutoff: int) -> "HybridConfig":
        """Copy of this config at a different cut-off point ``K``."""
        return replace(self, cutoff=cutoff)

    def with_alpha(self, alpha: float) -> "HybridConfig":
        """Copy of this config at a different stretch/priority weight ``α``."""
        return replace(self, alpha=alpha)

    def with_theta(self, theta: float) -> "HybridConfig":
        """Copy of this config at a different access skew ``θ``."""
        return replace(self, theta=theta)

    def with_faults(self, faults: FaultConfig) -> "HybridConfig":
        """Copy of this config under a different fault/degradation model."""
        return replace(self, faults=faults)

    def with_overload(self, overload: OverloadConfig) -> "HybridConfig":
        """Copy of this config under a different overload controller."""
        return replace(self, overload=overload)

    def with_bandwidth_shares(self, shares: Sequence[float]) -> "HybridConfig":
        """Copy with new per-class bandwidth shares (rank order)."""
        if len(shares) != len(self.class_specs):
            raise ValueError(f"expected {len(self.class_specs)} shares, got {len(shares)}")
        specs = tuple(
            ClassSpec(name=s.name, priority=s.priority, bandwidth_share=float(b))
            for s, b in zip(self.class_specs, shares)
        )
        return replace(self, class_specs=specs)
