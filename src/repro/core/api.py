"""Top-level convenience API — the four calls most users need.

These wrap the simulator, the analytical models and the optimisers with
the paper's defaults; everything they return is also reachable through
the underlying packages for finer control.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Sequence

from ..analysis.hybrid_delay import AnalysisMode, AnalyticalResult, analyze_hybrid
from .bandwidth import BandwidthAllocation, optimize_shares
from .config import HybridConfig
from .cutoff import (
    CutoffSweep,
    Objective,
    optimize_cutoff_analytical,
    optimize_cutoff_simulated,
)

__all__ = ["simulate_hybrid", "analyze_hybrid", "optimize_cutoff", "optimize_bandwidth"]

if TYPE_CHECKING:  # deferred at runtime: sim imports core
    from ..sim.metrics import SimulationResult


def simulate_hybrid(
    config: HybridConfig,
    seed: int = 0,
    horizon: float = 5_000.0,
    warmup: float | None = None,
    pull_mode: str = "serial",
) -> "SimulationResult":
    """Run one simulation of ``config`` and return its summary.

    Thin wrapper over :func:`repro.sim.runner.run_single`; see there for
    parameter semantics.  Returns a
    :class:`~repro.sim.metrics.SimulationResult`.
    """
    from ..sim.runner import run_single  # deferred: sim imports core

    return run_single(
        config, seed=seed, horizon=horizon, warmup=warmup, pull_mode=pull_mode
    )


def optimize_cutoff(
    config: HybridConfig,
    objective: Objective = "delay",
    method: str = "analytical",
    candidates: Sequence[int] | None = None,
    mode: AnalysisMode = "corrected",
    **sim_kwargs: Any,
) -> CutoffSweep:
    """Sweep the cut-off point ``K`` and return the optimum.

    ``method`` selects the analytical model (fast, default) or the
    simulator (``"simulated"``, forwards ``sim_kwargs`` such as
    ``horizon``/``seed``/``num_runs``).
    """
    if method == "analytical":
        return optimize_cutoff_analytical(
            config, objective=objective, candidates=candidates, mode=mode
        )
    if method == "simulated":
        return optimize_cutoff_simulated(
            config, objective=objective, candidates=candidates, **sim_kwargs
        )
    raise ValueError(f"unknown method {method!r}; use 'analytical' or 'simulated'")


def optimize_bandwidth(
    config: HybridConfig,
    weights: Sequence[float] | None = None,
    resolution: int = 20,
) -> BandwidthAllocation:
    """Optimise the per-class bandwidth partition for minimal blocking.

    Alias of :func:`repro.core.bandwidth.optimize_shares`.
    """
    return optimize_shares(config, weights=weights, resolution=resolution)
