"""The importance-factor mathematics (Eqs. 1 and 6) as pure functions.

The scheduler objects in :mod:`repro.schedulers.importance_factor` use
these same formulas on live queue state; exposing them as vectorised pure
functions makes the math unit-testable in isolation and lets analysis
code score hypothetical queue states without a simulator.
"""

from __future__ import annotations

import numpy as np

__all__ = ["stretch", "importance_factor", "expected_importance", "equivalence_weight"]


def stretch(num_requests: np.ndarray | float, length: np.ndarray | float) -> np.ndarray | float:
    """The paper's stretch value ``S_i = R_i / L_i²`` (§4.2).

    Accepts scalars or aligned arrays.  Lengths must be positive.
    """
    length_arr = np.asarray(length, dtype=float)
    if np.any(length_arr <= 0):
        raise ValueError("item lengths must be > 0")
    result = np.asarray(num_requests, dtype=float) / (length_arr * length_arr)
    return float(result) if np.isscalar(num_requests) and np.isscalar(length) else result


def importance_factor(
    alpha: float,
    stretch_value: np.ndarray | float,
    total_priority: np.ndarray | float,
) -> np.ndarray | float:
    """Eq. 1: ``γ_i = α·S_i + (1 − α)·Q_i``.

    ``α = 1`` ignores priority (stretch-optimal); ``α = 0`` ignores
    stretch (pure priority scheduling).
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    s = np.asarray(stretch_value, dtype=float)
    q = np.asarray(total_priority, dtype=float)
    result = alpha * s + (1.0 - alpha) * q
    if np.isscalar(stretch_value) and np.isscalar(total_priority):
        return float(result)
    return result


def expected_importance(
    alpha: float,
    expected_queue_length: float,
    probability: np.ndarray | float,
    length: np.ndarray | float,
    total_priority: np.ndarray | float,
) -> np.ndarray | float:
    """Eq. 6: ``ϱ_i = α·E[L]·p_i/L_i² + (1−α)·E[L]·p_i·Q_i``.

    The generalisation of Eq. 1 weighting both terms by the expected
    number of copies of item ``i`` in the pull queue, ``E[L_pull]·p_i``.
    """
    if not 0 <= alpha <= 1:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    if expected_queue_length < 0:
        raise ValueError(f"expected_queue_length must be >= 0, got {expected_queue_length}")
    p = np.asarray(probability, dtype=float)
    l = np.asarray(length, dtype=float)
    if np.any(l <= 0):
        raise ValueError("item lengths must be > 0")
    q = np.asarray(total_priority, dtype=float)
    weight = expected_queue_length * p
    result = alpha * weight / (l * l) + (1.0 - alpha) * weight * q
    scalars = all(np.isscalar(x) for x in (probability, length, total_priority))
    return float(result) if scalars else result


def equivalence_weight(expected_queue_length: float, probability: float) -> float:
    """The factor ``E[L_pull]·p_i`` whose value 1 collapses Eq. 6 to Eq. 1.

    The paper: "Equation 6 ... boils down to Equation 1 when
    ``E[L_pull]·p_i = 1``."  Exposed so the property test can assert the
    equivalence at exactly this operating point.
    """
    return expected_queue_length * probability
