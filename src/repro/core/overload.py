"""Overload-control configuration: class-aware admission under saturation.

The bounded pull queue of :class:`~repro.core.faults.FaultConfig` sheds
*after* the queue is already full — by then every class has paid the
queueing delay of a saturated buffer.  :class:`OverloadConfig` describes
the server-side admission controller (:mod:`repro.sim.overload`) that
engages *before* saturation: above a queue-occupancy threshold, new pull
entries from the lowest service classes are refused first, in strict
rank order, so the premium class keeps finding room while best-effort
admissions are thinned out.  This is the classic trunk-reservation /
layered-admission defense against flash crowds, specialised to the
paper's A > B > C service classification.

``OverloadConfig()`` (no threshold) is inert: the simulator takes
exactly the pre-overload code paths and results are bit-for-bit
identical to a system without the controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["OverloadConfig", "admission_limits"]


@dataclass(frozen=True)
class OverloadConfig:
    """Class-aware admission-control knobs (inert by default).

    Attributes
    ----------
    threshold:
        Occupancy fraction of the pull-queue capacity at which the
        *lowest* class stops being admitted.  Classes in between are cut
        off at occupancies interpolated linearly up to the full
        capacity, which is always reserved for the most important class
        (rank 0).  ``None`` disables the controller entirely.  Must lie
        in ``(0, 1]``; ``1.0`` grants every class the full capacity
        (the controller is then redundant with capacity shedding).
    """

    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.threshold is not None:
            if not math.isfinite(self.threshold):
                raise ValueError(
                    f"overload threshold must be finite, got {self.threshold}"
                )
            if not 0 < self.threshold <= 1:
                raise ValueError(
                    f"overload threshold must be in (0, 1], got {self.threshold}; "
                    "use None to disable admission control"
                )

    @property
    def active(self) -> bool:
        """Whether admission control is armed."""
        return self.threshold is not None


def admission_limits(threshold: float, capacity: int, num_classes: int) -> tuple[int, ...]:
    """Per-class queue-occupancy admission limits (rank order).

    Rank 0 (most important) may always fill the whole queue; the lowest
    rank is cut off once occupancy reaches ``threshold * capacity``;
    intermediate ranks interpolate linearly.  The limits are therefore
    monotonically non-increasing in rank, which *provably* preserves the
    paper's A > B > C ordering under saturation: whenever a class is
    refused admission, every less important class is refused too.

    A new pull entry of class rank ``r`` is admitted iff the current
    queue occupancy is strictly below ``limits[r]``.
    """
    if not 0 < threshold <= 1:
        raise ValueError(f"threshold must be in (0, 1], got {threshold}")
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    if num_classes < 1:
        raise ValueError(f"num_classes must be >= 1, got {num_classes}")
    if num_classes == 1:
        return (capacity,)
    limits = []
    for rank in range(num_classes):
        fraction = threshold + (1.0 - threshold) * (num_classes - 1 - rank) / (
            num_classes - 1
        )
        limits.append(max(1, math.ceil(capacity * fraction)))
    return tuple(limits)
