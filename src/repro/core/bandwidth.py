"""Per-class bandwidth partitioning (§3/§5: "minimizing the number of
requests dropped by assigning appropriate fraction of available
bandwidth").

In the serial service model a pull transmission for class ``c`` is
admitted iff its Poisson(``m``) bandwidth demand fits within the class's
reservation ``B_c = share_c · B``; the blocking probability is therefore
the exact Poisson tail

    P_block(c) = P[X > floor(B_c)],   X ~ Poisson(m).

:func:`blocking_probabilities` evaluates that tail;
:func:`optimize_shares` searches the simplex of share vectors for the
partition minimising priority-weighted blocking — the quantity the
paper's abstract claims can keep premium-class drops "very low".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Sequence

import numpy as np
from scipy import stats as _sstats

from .config import HybridConfig

__all__ = [
    "blocking_probabilities",
    "BandwidthAllocation",
    "optimize_shares",
    "poisson_tail",
]


def poisson_tail(mean: float, capacity: float) -> float:
    """``P[Poisson(mean) > capacity]`` — the admission-failure probability.

    ``capacity`` is compared as a real number: a demand of ``k`` units is
    admitted iff ``k <= capacity``.
    """
    if mean < 0:
        raise ValueError(f"mean must be >= 0, got {mean}")
    if capacity < 0:
        return 1.0
    if mean == 0:
        return 0.0
    return float(_sstats.poisson.sf(math.floor(capacity), mean))


def blocking_probabilities(
    shares: Sequence[float], total_bandwidth: float, demand_mean: float
) -> np.ndarray:
    """Per-class blocking probability under a share vector."""
    s = np.asarray(shares, dtype=float)
    if np.any(s < 0):
        raise ValueError(f"shares must be >= 0, got {s}")
    if total_bandwidth <= 0:
        raise ValueError(f"total_bandwidth must be > 0, got {total_bandwidth}")
    return np.asarray(
        [poisson_tail(demand_mean, share * total_bandwidth) for share in s], dtype=float
    )


@dataclass(frozen=True)
class BandwidthAllocation:
    """An optimised per-class bandwidth partition.

    Attributes
    ----------
    shares:
        Fraction of total bandwidth per class (rank order); sums to 1.
    blocking:
        Resulting per-class blocking probabilities.
    weighted_blocking:
        The optimised objective ``Σ_c w_c · P_block(c)``.
    """

    shares: np.ndarray
    blocking: np.ndarray
    weighted_blocking: float

    def apply(self, config: HybridConfig) -> HybridConfig:
        """Return ``config`` with these shares installed."""
        return config.with_bandwidth_shares(list(self.shares))


def optimize_shares(
    config: HybridConfig,
    weights: Sequence[float] | None = None,
    resolution: int = 20,
) -> BandwidthAllocation:
    """Grid-search the share simplex for minimal weighted blocking.

    Parameters
    ----------
    config:
        Supplies the class count, total bandwidth and demand mean.
    weights:
        Objective weights per class (default: the class priorities, so
        premium blocking is penalised hardest).
    resolution:
        Simplex grid granularity — shares are multiples of
        ``1/resolution``.  Every class gets a strictly positive share.

    Notes
    -----
    The per-class blocking is independent across classes given the
    shares, so the objective is separable but *not* convex in the
    discrete Poisson tail; exhaustive simplex enumeration (cheap at the
    paper's 3 classes) is exact on the grid.  Ties prefer more bandwidth
    for more important classes (lexicographic by shares, descending).
    """
    n = len(config.class_specs)
    w = (
        np.asarray(weights, dtype=float)
        if weights is not None
        else config.class_priorities()
    )
    if len(w) != n:
        raise ValueError(f"expected {n} weights, got {len(w)}")
    if resolution < n:
        raise ValueError(f"resolution {resolution} too coarse for {n} classes")

    best: tuple[float, tuple[float, ...]] | None = None
    # Enumerate compositions of `resolution` into n positive parts.
    for parts in product(range(1, resolution - n + 2), repeat=n - 1):
        remainder = resolution - sum(parts)
        if remainder < 1:
            continue
        units = parts + (remainder,)
        shares = tuple(u / resolution for u in units)
        blocking = blocking_probabilities(
            shares, config.total_bandwidth, config.bandwidth_demand_mean
        )
        objective = float(w @ blocking)
        key = (objective, tuple(-s for s in shares))
        if best is None or key < best:
            best = key
            best_shares, best_blocking = shares, blocking
    assert best is not None  # resolution >= n guarantees one composition
    return BandwidthAllocation(
        shares=np.asarray(best_shares),
        blocking=best_blocking,
        weighted_blocking=best[0],
    )
