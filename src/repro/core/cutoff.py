"""Cut-off point optimisation (§3: "periodically the algorithm is executed
for different cutoff-points and obtains the optimal cutoff-point which
minimizes the overall access time").

Two engines behind one interface:

* analytical sweep — evaluate
  :func:`~repro.analysis.hybrid_delay.analyze_hybrid` for every candidate
  ``K`` (fast; used by Fig. 6's "optimal prioritized cost" curves);
* simulation sweep — run the DES per candidate (slow but
  assumption-free), with common random numbers across candidates.

The objective is either the overall expected delay or the total
prioritized cost ``Σ_j q_j·E[T_j]`` (the paper optimises both at
different points of §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Literal, Sequence

import numpy as np

from ..analysis.hybrid_delay import AnalysisMode, analyze_hybrid
from .config import HybridConfig

__all__ = ["CutoffSweep", "optimize_cutoff_analytical", "optimize_cutoff_simulated"]

Objective = Literal["delay", "cost"]


@dataclass(frozen=True)
class CutoffSweep:
    """Result of sweeping the cut-off point ``K``.

    Attributes
    ----------
    cutoffs:
        Candidate ``K`` values, ascending.
    objective_values:
        Objective (delay or cost) per candidate.
    best_cutoff:
        Candidate minimising the objective.
    objective:
        Which objective was optimised.
    """

    cutoffs: np.ndarray
    objective_values: np.ndarray
    best_cutoff: int
    objective: Objective

    @property
    def best_value(self) -> float:
        """Objective value at the optimum."""
        return float(self.objective_values[int(np.argmin(self.objective_values))])

    def as_rows(self) -> list[tuple[int, float]]:
        """(K, objective) pairs for tabulation."""
        return [(int(k), float(v)) for k, v in zip(self.cutoffs, self.objective_values)]


def _candidates(config: HybridConfig, candidates: Sequence[int] | None) -> np.ndarray:
    if candidates is None:
        step = max(1, config.num_items // 20)
        cand = np.arange(step, config.num_items, step, dtype=int)
    else:
        cand = np.asarray(sorted(set(int(c) for c in candidates)), dtype=int)
        if cand.size == 0:
            raise ValueError("candidate set is empty")
        if cand.min() < 0 or cand.max() > config.num_items:
            raise ValueError(
                f"candidates outside [0, {config.num_items}]: {cand.min()}..{cand.max()}"
            )
    return cand


def _sweep(
    config: HybridConfig,
    evaluate: Callable[[HybridConfig], tuple[float, float]],
    candidates: np.ndarray,
    objective: Objective,
) -> CutoffSweep:
    values = []
    for k in candidates:
        delay, cost = evaluate(config.with_cutoff(int(k)))
        values.append(delay if objective == "delay" else cost)
    values_arr = np.asarray(values, dtype=float)
    best = int(candidates[int(np.nanargmin(values_arr))])
    return CutoffSweep(
        cutoffs=candidates,
        objective_values=values_arr,
        best_cutoff=best,
        objective=objective,
    )


def optimize_cutoff_analytical(
    config: HybridConfig,
    objective: Objective = "delay",
    candidates: Sequence[int] | None = None,
    mode: AnalysisMode = "corrected",
) -> CutoffSweep:
    """Find the ``K`` minimising the analytical objective.

    Parameters
    ----------
    config:
        Base configuration (its own ``cutoff`` is ignored).
    objective:
        ``"delay"`` (overall expected access time) or ``"cost"``
        (total prioritized cost).
    candidates:
        Candidate ``K`` values (default: a 20-point grid over the catalog).
    mode:
        Analysis mode forwarded to :func:`analyze_hybrid`.
    """

    def evaluate(cfg: HybridConfig) -> tuple[float, float]:
        result = analyze_hybrid(cfg, mode=mode)
        return (result.overall_delay, result.total_prioritized_cost)

    return _sweep(config, evaluate, _candidates(config, candidates), objective)


def optimize_cutoff_simulated(
    config: HybridConfig,
    objective: Objective = "delay",
    candidates: Sequence[int] | None = None,
    horizon: float = 3_000.0,
    seed: int = 0,
    num_runs: int = 1,
    n_jobs: int = 1,
) -> CutoffSweep:
    """Find the ``K`` minimising the simulated objective.

    Uses the same seeds for every candidate (common random numbers), so
    candidate comparisons are paired and much lower-variance than
    independent sampling.  ``n_jobs`` parallelises each candidate's
    replications without changing any result.
    """
    from ..sim.runner import run_replications  # local import: sim depends on core

    def evaluate(cfg: HybridConfig) -> tuple[float, float]:
        result = run_replications(
            cfg, num_runs=num_runs, horizon=horizon, base_seed=seed, n_jobs=n_jobs
        )
        return (result.overall_delay()[0], result.total_cost()[0])

    return _sweep(config, evaluate, _candidates(config, candidates), objective)
