"""Fault-model configuration: lossy channels, client recovery, load shedding.

The paper's evaluation (§5) assumes an ideal wireless medium: every push
slot is decoded by every waiting client, every accepted uplink request
reaches the server, and the pull queue may grow without bound.
:class:`FaultConfig` describes the departures from that ideal world that
``repro.sim.faults`` injects:

* **Downlink loss** — a Gilbert–Elliott two-state (good/bad) bursty
  channel corrupts push broadcast slots and pull transmissions.  The
  model is parametrised by its *stationary* loss probability and the
  mean sojourn (in transmissions) of the bad state, from which the
  transition probabilities are derived in closed form.
* **Uplink loss** — each uplink request is independently corrupted with
  a fixed probability (random-access collisions), on top of the finite
  buffer of :class:`~repro.sim.uplink.UplinkChannel`.
* **Client recovery** — lost uplink requests retry with capped binary
  exponential backoff plus jitter; requests may carry a per-class
  deadline after which the client reneges (abandons).
* **Graceful degradation** — the pull queue is bounded and sheds entries
  under a class-aware policy instead of growing memory and delay without
  bound.

``FaultConfig()`` (all rates zero, no capacity, no deadlines) is inert:
the simulator takes exactly the seed code paths and reproduces the
paper's ideal-channel results bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

__all__ = ["FaultConfig", "SHEDDING_POLICIES"]

#: Class-aware policies for shedding pull-queue entries at capacity.
#:
#: * ``"drop-newest"`` — reject the incoming entry (class-blind tail drop).
#: * ``"drop-lowest-gamma"`` — evict the entry (incoming included) with the
#:   lowest importance factor γ under the configured pull scheduler.
#: * ``"drop-lowest-priority"`` — evict the entry with the lowest total
#:   client priority ``Q_i`` (ties toward fewer pending requests).
SHEDDING_POLICIES: tuple[str, ...] = (
    "drop-newest",
    "drop-lowest-gamma",
    "drop-lowest-priority",
)


@dataclass(frozen=True)
class FaultConfig:
    """Fault-injection and graceful-degradation knobs (all inert by default).

    Attributes
    ----------
    downlink_loss:
        Stationary probability that a downlink transmission (push slot or
        pull transfer) is corrupted.  ``0`` disables the channel model.
    downlink_mean_burst:
        Mean number of consecutive transmissions spent in the bad state
        once entered (``1`` = memoryless losses; larger = burstier).
    bad_state_loss, good_state_loss:
        Per-transmission loss probabilities inside the bad/good states.
        Must bracket ``downlink_loss`` so a valid stationary mix exists.
    uplink_loss:
        Probability each uplink request offer is corrupted in transit.
    max_retries:
        Retries a client attempts after a lost uplink offer before
        abandoning the request (terminal uplink loss).
    backoff_base:
        First retry delay (broadcast units); doubles per attempt.
    backoff_cap:
        Upper bound on any single backoff delay.
    backoff_jitter:
        Uniform multiplicative jitter half-range: each delay is scaled by
        ``1 + U(-jitter, +jitter)`` to desynchronise clients.
    class_deadlines:
        Optional per-class patience (rank order, most important first):
        a request unserved ``deadline`` units after its arrival reneges.
        ``math.inf`` entries mean that class never reneges.
    queue_capacity:
        Maximum number of *distinct item entries* in the pull queue;
        ``None`` keeps the paper's unbounded queue.
    shedding_policy:
        Which entry to sacrifice when the queue is at capacity; one of
        :data:`SHEDDING_POLICIES`.
    watchdog_interval:
        Period of the continuous conservation-watchdog checks while the
        simulation runs (a final check always happens at the horizon).
    """

    downlink_loss: float = 0.0
    downlink_mean_burst: float = 4.0
    bad_state_loss: float = 1.0
    good_state_loss: float = 0.0
    uplink_loss: float = 0.0
    max_retries: int = 5
    backoff_base: float = 1.0
    backoff_cap: float = 32.0
    backoff_jitter: float = 0.25
    class_deadlines: Optional[tuple[float, ...]] = None
    queue_capacity: Optional[int] = None
    shedding_policy: str = "drop-newest"
    watchdog_interval: float = 50.0

    def __post_init__(self) -> None:
        if not 0 <= self.downlink_loss < 1:
            raise ValueError(f"downlink_loss must be in [0, 1), got {self.downlink_loss}")
        if self.downlink_mean_burst < 1:
            raise ValueError(
                f"downlink_mean_burst must be >= 1, got {self.downlink_mean_burst}"
            )
        if not 0 <= self.good_state_loss <= self.bad_state_loss <= 1:
            raise ValueError(
                "need 0 <= good_state_loss <= bad_state_loss <= 1, got "
                f"{self.good_state_loss}, {self.bad_state_loss}"
            )
        if self.downlink_loss > 0:
            if self.bad_state_loss <= 0:
                raise ValueError("bad_state_loss must be > 0 when downlink_loss > 0")
            if not self.good_state_loss <= self.downlink_loss <= self.bad_state_loss:
                raise ValueError(
                    f"downlink_loss {self.downlink_loss} outside the per-state range "
                    f"[{self.good_state_loss}, {self.bad_state_loss}]"
                )
            if self.bad_occupancy >= 1:
                raise ValueError(
                    "downlink_loss so close to bad_state_loss that the bad state "
                    "would be absorbing; lower downlink_loss or raise bad_state_loss"
                )
        if not 0 <= self.uplink_loss < 1:
            raise ValueError(f"uplink_loss must be in [0, 1), got {self.uplink_loss}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not (math.isfinite(self.backoff_base) and self.backoff_base > 0):
            raise ValueError(
                f"backoff_base must be finite and > 0, got {self.backoff_base}"
            )
        if math.isnan(self.backoff_cap) or self.backoff_cap < self.backoff_base:
            raise ValueError(
                f"backoff_cap {self.backoff_cap} below backoff_base {self.backoff_base}"
            )
        if not 0 <= self.backoff_jitter < 1:
            raise ValueError(f"backoff_jitter must be in [0, 1), got {self.backoff_jitter}")
        if self.class_deadlines is not None:
            if not self.class_deadlines:
                raise ValueError("class_deadlines must be non-empty or None")
            for deadline in self.class_deadlines:
                if not (deadline > 0):
                    raise ValueError(f"deadlines must be > 0, got {deadline}")
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {self.queue_capacity}")
        if self.shedding_policy not in SHEDDING_POLICIES:
            raise ValueError(
                f"unknown shedding policy {self.shedding_policy!r}; "
                f"known: {list(SHEDDING_POLICIES)}"
            )
        if not (math.isfinite(self.watchdog_interval) and self.watchdog_interval > 0):
            raise ValueError(
                f"watchdog_interval must be finite and > 0, got "
                f"{self.watchdog_interval}; the periodic audit sleeps exactly "
                "this long between checks"
            )

    # -- derived Gilbert-Elliott parameters ----------------------------------
    @property
    def bad_occupancy(self) -> float:
        """Stationary probability π_B of the bad state.

        Solves ``π_B·bad_state_loss + (1-π_B)·good_state_loss = downlink_loss``.
        """
        if self.downlink_loss <= self.good_state_loss:
            return 0.0
        return (self.downlink_loss - self.good_state_loss) / (
            self.bad_state_loss - self.good_state_loss
        )

    @property
    def bad_to_good(self) -> float:
        """Per-transmission transition probability out of the bad state."""
        return 1.0 / self.downlink_mean_burst

    @property
    def good_to_bad(self) -> float:
        """Per-transmission transition probability into the bad state.

        Derived from the stationary balance ``π_B = p_gb / (p_gb + p_bg)``;
        clamped to 1 when the requested loss/burst pair over-constrains it.
        """
        pi_b = self.bad_occupancy
        if pi_b <= 0:
            return 0.0
        return min(1.0, pi_b * self.bad_to_good / (1.0 - pi_b))

    # -- activation flags -------------------------------------------------------
    @property
    def channel_faults(self) -> bool:
        """Whether any channel-corruption model is armed."""
        return self.downlink_loss > 0 or self.uplink_loss > 0

    @property
    def client_recovery(self) -> bool:
        """Whether the client-side front (retries or reneging) is needed."""
        return self.uplink_loss > 0 or self.class_deadlines is not None

    @property
    def active(self) -> bool:
        """Whether *any* fault or degradation feature is enabled.

        ``False`` guarantees the simulator takes the seed code paths and
        consumes no fault random streams — zero-fault runs reproduce the
        ideal-channel results exactly.
        """
        return (
            self.channel_faults
            or self.class_deadlines is not None
            or self.queue_capacity is not None
        )

    def deadline_for(self, class_rank: int) -> float:
        """Absolute patience of ``class_rank`` (``inf`` when reneging is off)."""
        if self.class_deadlines is None:
            return math.inf
        if class_rank < len(self.class_deadlines):
            return self.class_deadlines[class_rank]
        return self.class_deadlines[-1]
