"""``repro.core`` — the paper's contribution as a clean public API.

Importance-factor math (Eqs. 1 and 6), client service classification,
cut-off point optimisation, per-class bandwidth partitioning and the
configuration object tying the system together.
"""

from .api import analyze_hybrid, optimize_bandwidth, optimize_cutoff, simulate_hybrid
from .bandwidth import (
    BandwidthAllocation,
    blocking_probabilities,
    optimize_shares,
    poisson_tail,
)
from .classifier import ClassAssignment, classify_by_quantiles, classify_by_thresholds
from .config import ClassSpec, HybridConfig, ServiceRateConvention
from .cutoff import CutoffSweep, optimize_cutoff_analytical, optimize_cutoff_simulated
from .faults import SHEDDING_POLICIES, FaultConfig
from .overload import OverloadConfig, admission_limits
from .importance import (
    equivalence_weight,
    expected_importance,
    importance_factor,
    stretch,
)

__all__ = [
    "simulate_hybrid",
    "analyze_hybrid",
    "optimize_cutoff",
    "optimize_bandwidth",
    "BandwidthAllocation",
    "blocking_probabilities",
    "optimize_shares",
    "poisson_tail",
    "ClassAssignment",
    "classify_by_quantiles",
    "classify_by_thresholds",
    "ClassSpec",
    "HybridConfig",
    "ServiceRateConvention",
    "FaultConfig",
    "SHEDDING_POLICIES",
    "OverloadConfig",
    "admission_limits",
    "CutoffSweep",
    "optimize_cutoff_analytical",
    "optimize_cutoff_simulated",
    "equivalence_weight",
    "expected_importance",
    "importance_factor",
    "stretch",
]
