"""Service classification of clients (§3: "the server first classifies
the clients into different service classes").

The paper takes the classes as given; an operator deploying the system
must actually derive them from a raw importance score (spend, tenure,
contract tier...).  This module provides the two standard derivations:

* :func:`classify_by_thresholds` — fixed score boundaries;
* :func:`classify_by_quantiles` — population quantiles, which directly
  yields the paper's "few premium clients, many basic clients" shape.

Both return a :class:`ClassAssignment` that can build the
:class:`~repro.workload.clients.ClientPopulation` consumed everywhere
else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..workload.clients import ClientPopulation, ServiceClass

__all__ = ["ClassAssignment", "classify_by_thresholds", "classify_by_quantiles"]


@dataclass(frozen=True)
class ClassAssignment:
    """Result of classifying a scored client population.

    Attributes
    ----------
    classes:
        Derived service classes, most important first.
    labels:
        Per-client class rank (0 = most important), aligned with the
        input score vector.
    """

    classes: tuple[ServiceClass, ...]
    labels: np.ndarray

    def class_counts(self) -> np.ndarray:
        """Clients per class in rank order."""
        return np.bincount(self.labels, minlength=len(self.classes))

    def to_population(self) -> ClientPopulation:
        """Materialise a :class:`ClientPopulation` with these class sizes."""
        return ClientPopulation(
            classes=list(self.classes), class_counts=self.class_counts()
        )


def _build_classes(
    names: Sequence[str], priorities: Sequence[float]
) -> tuple[ServiceClass, ...]:
    if len(names) != len(priorities):
        raise ValueError(f"{len(names)} names vs {len(priorities)} priorities")
    if list(priorities) != sorted(priorities, reverse=True):
        raise ValueError("priorities must be non-increasing (most important first)")
    return tuple(
        ServiceClass(name=n, priority=float(q), rank=i)
        for i, (n, q) in enumerate(zip(names, priorities))
    )


def classify_by_thresholds(
    scores: np.ndarray | Sequence[float],
    thresholds: Sequence[float],
    names: Sequence[str] = ("A", "B", "C"),
    priorities: Sequence[float] = (3.0, 2.0, 1.0),
) -> ClassAssignment:
    """Assign clients to classes by fixed importance-score boundaries.

    A client with score >= ``thresholds[0]`` lands in the first (most
    important) class, >= ``thresholds[1]`` in the second, and so on; below
    every threshold lands in the last class.  ``len(thresholds)`` must be
    ``len(names) - 1`` and thresholds must be strictly decreasing.
    """
    s = np.asarray(scores, dtype=float)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("scores must be a non-empty 1-D vector")
    th = list(thresholds)
    if len(th) != len(names) - 1:
        raise ValueError(f"expected {len(names) - 1} thresholds, got {len(th)}")
    if th != sorted(th, reverse=True) or len(set(th)) != len(th):
        raise ValueError(f"thresholds must be strictly decreasing, got {th}")
    classes = _build_classes(names, priorities)
    labels = np.full(s.shape, len(classes) - 1, dtype=int)
    for rank, bound in enumerate(th):
        # First matching (highest) class wins: only relabel clients still
        # sitting in a lower class than `rank`.
        labels = np.where((s >= bound) & (labels > rank), rank, labels)
    return ClassAssignment(classes=classes, labels=labels)


def classify_by_quantiles(
    scores: np.ndarray | Sequence[float],
    fractions: Sequence[float] = (0.1, 0.3, 0.6),
    names: Sequence[str] = ("A", "B", "C"),
    priorities: Sequence[float] = (3.0, 2.0, 1.0),
) -> ClassAssignment:
    """Assign clients to classes by population quantiles of the score.

    ``fractions`` gives the target share of each class, most important
    first (default: 10 % premium / 30 % mid / 60 % basic — the paper's
    "fewest clients in the highest class" shape).  Shares must sum to 1.
    Ties at the boundary go to the more important class in score order.
    """
    s = np.asarray(scores, dtype=float)
    if s.ndim != 1 or s.size == 0:
        raise ValueError("scores must be a non-empty 1-D vector")
    frac = np.asarray(fractions, dtype=float)
    if len(frac) != len(names):
        raise ValueError(f"expected {len(names)} fractions, got {len(frac)}")
    if np.any(frac <= 0) or abs(frac.sum() - 1.0) > 1e-9:
        raise ValueError(f"fractions must be positive and sum to 1, got {frac}")
    classes = _build_classes(names, priorities)
    order = np.argsort(-s, kind="stable")  # best scores first
    counts = np.floor(frac * s.size).astype(int)
    counts[-1] += s.size - counts.sum()  # remainder to the basic class
    labels = np.empty(s.size, dtype=int)
    start = 0
    for rank, count in enumerate(counts):
        labels[order[start : start + count]] = rank
        start += count
    return ClassAssignment(classes=classes, labels=labels)
