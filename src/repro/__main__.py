"""``python -m repro`` — dispatch to the experiments CLI."""

import sys

from .cli import main

sys.exit(main())
