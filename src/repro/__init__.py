"""repro — hybrid push/pull broadcast scheduling with differentiated QoS.

A full reproduction of *"A New Service Classification Strategy in Hybrid
Scheduling to Support Differentiated QoS in Wireless Data Networks"*
(Saxena, Basu, Das, Pinotti — ICPP 2005), including:

* ``repro.des`` — a from-scratch discrete-event simulation engine;
* ``repro.workload`` — Zipf/Poisson synthetic workload model;
* ``repro.schedulers`` — push and pull scheduler zoo (paper + baselines);
* ``repro.sim`` — the hybrid broadcast server simulator;
* ``repro.analysis`` — queueing-theoretic models (birth-death chain,
  priority queues, hybrid access-time);
* ``repro.core`` — the paper's contribution as a clean public API;
* ``repro.experiments`` — harness regenerating every figure of the paper.

Quickstart
----------
>>> from repro import HybridConfig, simulate_hybrid
>>> cfg = HybridConfig(num_items=100, cutoff=40, alpha=0.75, theta=0.60)
>>> result = simulate_hybrid(cfg, seed=1, horizon=2_000)
>>> sorted(result.per_class_delay) == ["A", "B", "C"]
True
"""

from __future__ import annotations

__version__ = "1.0.0"

from .core.config import ClassSpec, HybridConfig
from .core.api import (
    analyze_hybrid,
    optimize_bandwidth,
    optimize_cutoff,
    simulate_hybrid,
)

__all__ = [
    "__version__",
    "HybridConfig",
    "ClassSpec",
    "simulate_hybrid",
    "analyze_hybrid",
    "optimize_cutoff",
    "optimize_bandwidth",
]
